//! 2-D convolutional capsule layer (DeepCaps' `ConvCaps2D`).
//!
//! With a single routing iteration, a conv-caps layer is exactly a
//! standard convolution over the flattened `types × dims` channel axis
//! followed by a per-capsule squash (this equivalence is how DeepCaps
//! implements its non-routing layers). The layer exposes two tap points:
//! the convolution output (**MAC outputs**) and, when the squash is
//! applied here, the squashed capsules (**activations**).

use redcane_nn::layers::Conv2d;
use redcane_nn::{Layer, Param};
use redcane_tensor::{Tensor, TensorRng};

use crate::inject::{Injector, OpKind, OpSite};
use crate::squash::{squash_caps, squash_caps_backward};

/// Weight-init gain for capsule convolutions feeding a squash.
///
/// The squash maps a capsule norm `n` to `n²/(1+n²) < min(n, 1)`, so a deep
/// stack of conv-caps layers with standard He init contracts capsule norms
/// doubly-exponentially toward zero (DeepCaps counteracts this with
/// BatchNorm, which a per-sample trainer cannot use). Scaling the init by
/// gain `g` gives the norm recursion a stable non-zero fixed point whenever
/// `g ≥ √2`; we use 2.0, which keeps activations O(1) through all 17
/// capsule layers.
pub(crate) const CAPS_CONV_GAIN: f32 = 2.0;

/// A convolutional capsule layer mapping `[C_in, D_in, H, W]` to
/// `[C_out, D_out, H', W']`.
#[derive(Debug, Clone)]
pub struct ConvCaps2d {
    conv: Conv2d,
    c_in: usize,
    d_in: usize,
    c_out: usize,
    d_out: usize,
    apply_squash: bool,
    layer_index: usize,
    name: String,
    /// Pre-squash capsule tensor `[C_out, D_out, P]` (only when squashing).
    s_cache: Option<Tensor>,
    out_hw: Option<(usize, usize)>,
}

impl ConvCaps2d {
    /// Creates a conv-caps layer.
    ///
    /// `apply_squash = false` produces pre-activation capsules, used for
    /// the residual "+" joins of DeepCaps cells where the squash happens
    /// after summation.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        layer_index: usize,
        name: impl Into<String>,
        c_in: usize,
        d_in: usize,
        c_out: usize,
        d_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        apply_squash: bool,
        rng: &mut TensorRng,
    ) -> Self {
        let mut conv = Conv2d::new(c_in * d_in, c_out * d_out, kernel, stride, padding, rng);
        let boosted = conv.weight().scale(CAPS_CONV_GAIN);
        let bias = conv.bias().clone();
        conv.set_weights(boosted, bias);
        ConvCaps2d {
            conv,
            c_in,
            d_in,
            c_out,
            d_out,
            apply_squash,
            layer_index,
            name: name.into(),
            s_cache: None,
            out_hw: None,
        }
    }

    /// The layer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's index in the model ordering.
    pub fn layer_index(&self) -> usize {
        self.layer_index
    }

    /// Input capsule geometry `(types, dim)`.
    pub fn in_caps(&self) -> (usize, usize) {
        (self.c_in, self.d_in)
    }

    /// Output capsule geometry `(types, dim)`.
    pub fn out_caps(&self) -> (usize, usize) {
        (self.c_out, self.d_out)
    }

    /// Whether this layer squashes its output capsules (false for the
    /// pre-activation layers feeding a residual join).
    pub fn applies_squash(&self) -> bool {
        self.apply_squash
    }

    /// The wrapped convolution (weights/bias access).
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// Mutable access to the wrapped convolution.
    pub fn conv_mut(&mut self) -> &mut Conv2d {
        &mut self.conv
    }

    /// Forward pass with injection taps.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is `[C_in, D_in, H, W]`.
    pub fn forward(&mut self, x: &Tensor, injector: &mut dyn Injector) -> Tensor {
        assert_eq!(x.ndim(), 4, "ConvCaps2d expects [C, D, H, W]");
        assert_eq!(x.shape()[0], self.c_in, "capsule types");
        assert_eq!(x.shape()[1], self.d_in, "capsule dims");
        let (h, w) = (x.shape()[2], x.shape()[3]);
        if injector.observes_inputs() {
            // The `[C·D, H, W]` channel fold is a pure metadata change, so
            // the conv reads `x`'s storage directly; materialize the
            // folded view only for the observing injector.
            let mut copy = Tensor::from_vec(x.data().to_vec(), &[self.c_in * self.d_in, h, w])
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                .expect("channel fold");
            injector.inject(
                &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacInput),
                &mut copy,
            );
        }
        let mut conv_out = self.conv.forward_chw(x.data(), h, w);
        injector.inject(
            &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacOutput),
            &mut conv_out,
        );
        let (h_out, w_out) = (conv_out.shape()[1], conv_out.shape()[2]);
        self.out_hw = Some((h_out, w_out));
        let p = h_out * w_out;
        let s = conv_out
            .into_reshaped(&[self.c_out, self.d_out, p])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("capsule unfold");
        if self.apply_squash {
            let mut v = squash_caps(&s);
            injector.inject(
                &OpSite::new(self.layer_index, self.name.clone(), OpKind::Activation),
                &mut v,
            );
            self.s_cache = Some(s);
            v.into_reshaped(&[self.c_out, self.d_out, h_out, w_out])
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                .expect("spatial unfold")
        } else {
            self.s_cache = None;
            s.into_reshaped(&[self.c_out, self.d_out, h_out, w_out])
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                .expect("spatial unfold")
        }
    }

    /// Backward pass; `d_out` matches the forward output shape. Returns the
    /// gradient with respect to the `[C_in, D_in, H, W]` input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, d_out: &Tensor) -> Tensor {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let (h_out, w_out) = self.out_hw.expect("ConvCaps2d::backward before forward");
        let p = h_out * w_out;
        let d_caps = d_out
            .reshape(&[self.c_out, self.d_out, p])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("gradient capsule fold");
        let d_conv = if self.apply_squash {
            let s = self
                .s_cache
                .take()
                // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
                .expect("squash cache (backward before forward?)");
            squash_caps_backward(&s, &d_caps)
        } else {
            d_caps
        };
        let d_conv = d_conv
            .into_reshaped(&[self.c_out * self.d_out, h_out, w_out])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("conv gradient shape");
        let dx = self.conv.backward(&d_conv);
        let (h, w) = (dx.shape()[1], dx.shape()[2]);
        dx.into_reshaped(&[self.c_in, self.d_in, h, w])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("input capsule unfold")
    }

    /// Trainable parameters (conv weight + bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.conv.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};
    use crate::squash::caps_lengths;

    #[test]
    fn forward_shapes_and_squash_bound() {
        let mut rng = TensorRng::from_seed(130);
        let mut layer = ConvCaps2d::new(0, "Caps2D1", 2, 4, 3, 4, 3, 2, 1, true, &mut rng);
        let x = rng.uniform(&[2, 4, 8, 8], -1.0, 1.0);
        let y = layer.forward(&x, &mut NoInjection);
        assert_eq!(y.shape(), &[3, 4, 4, 4]);
        let l = caps_lengths(&y.reshape(&[3, 4, 16]).unwrap());
        assert!(l.data().iter().all(|&v| v < 1.0));
    }

    #[test]
    fn taps_mac_and_activation() {
        let mut rng = TensorRng::from_seed(131);
        let mut layer = ConvCaps2d::new(4, "Caps2D5", 1, 4, 2, 4, 3, 1, 1, true, &mut rng);
        let x = rng.uniform(&[1, 4, 6, 6], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = layer.forward(&x, &mut rec);
        let kinds: Vec<OpKind> = rec.visits.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![OpKind::MacInput, OpKind::MacOutput, OpKind::Activation]
        );
        assert!(rec.visits.iter().all(|s| s.layer_index == 4));
    }

    #[test]
    fn no_squash_variant_skips_activation_tap() {
        let mut rng = TensorRng::from_seed(132);
        let mut layer = ConvCaps2d::new(0, "skip", 1, 4, 2, 4, 3, 1, 1, false, &mut rng);
        let x = rng.uniform(&[1, 4, 6, 6], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = layer.forward(&x, &mut rec);
        assert!(rec.visits.iter().all(|s| s.kind != OpKind::Activation));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(133);
        let mut layer = ConvCaps2d::new(0, "t", 1, 3, 2, 3, 3, 1, 1, true, &mut rng);
        let x = rng.uniform(&[1, 3, 5, 5], -1.0, 1.0);
        let coeffs = rng.uniform(&[2, 3, 5, 5], -1.0, 1.0);
        let loss = |l: &mut ConvCaps2d, x: &Tensor| {
            l.forward(x, &mut NoInjection).mul(&coeffs).unwrap().sum()
        };
        for p in layer.params_mut() {
            p.zero_grad();
        }
        let _ = layer.forward(&x, &mut NoInjection);
        let dx = layer.backward(&coeffs);
        let eps = 1e-2f32;
        for idx in [0usize, 19, 44, 74] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = dx.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn weight_gradients_flow() {
        let mut rng = TensorRng::from_seed(134);
        let mut layer = ConvCaps2d::new(0, "t", 1, 2, 1, 2, 3, 1, 0, true, &mut rng);
        let x = rng.uniform(&[1, 2, 5, 5], -1.0, 1.0);
        for p in layer.params_mut() {
            p.zero_grad();
        }
        let y = layer.forward(&x, &mut NoInjection);
        let _ = layer.backward(&Tensor::ones(y.shape()));
        let grads = layer.params_mut();
        assert!(grads[0].grad.sq_norm() > 0.0, "weight grad must be nonzero");
    }
}
