//! # redcane-fxp
//!
//! Fixed-point quantization substrate for the ReD-CaNe reproduction.
//!
//! CapsNet accelerators (e.g. CapsAcc, DATE 2019) compute in `b`-bit
//! fixed-point rather than floating point. The ReD-CaNe paper models this by
//! mapping floating-point tensors onto the integer grid of Eq. 1:
//!
//! ```text
//! Q(x) = (x - min(x)) / (max(x) - min(x)) * (2^b - 1)
//! ```
//!
//! and then characterizing approximate 8-bit components **in that integer
//! domain**. This crate provides:
//!
//! - [`QuantParams`]: the affine code ↔ value mapping of Eq. 1, with
//!   round-trip quantize/dequantize;
//! - [`Quantizer`]: tensor-level quantization producing `u8`/`u16` code
//!   vectors alongside the reconstruction parameters;
//! - [`RangeTracker`]: a running min/max observer used to calibrate
//!   quantization ranges from real layer inputs (the paper's "real input
//!   distribution" of Table IV).
//!
//! # Example
//!
//! ```
//! use redcane_fxp::QuantParams;
//!
//! # fn main() -> Result<(), redcane_fxp::FxpError> {
//! let q = QuantParams::from_range(-1.0, 1.0, 8)?;
//! let code = q.quantize(0.0);
//! assert!((q.dequantize(code) - 0.0).abs() < 0.005); // within half an LSB
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod error;
mod quant;
mod tracker;

pub use error::FxpError;
pub use quant::{QuantParams, QuantizedTensor, Quantizer};
pub use tracker::RangeTracker;
