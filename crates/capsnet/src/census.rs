//! Operation census: counting the arithmetic primitives (additions,
//! multiplications, divisions, exponentials, square roots) of one
//! inference pass, per layer.
//!
//! This is the raw material of the paper's Table I (operation counts of
//! DeepCaps) and, weighted by unit energies, of the energy breakdown of
//! Fig. 4.

use serde::{Deserialize, Serialize};

/// Counts of arithmetic primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCount {
    /// Additions/subtractions.
    pub add: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Exponentials (softmax).
    pub exp: u64,
    /// Square roots (squash / capsule lengths).
    pub sqrt: u64,
}

impl OpCount {
    /// Total primitive operations.
    pub fn total(&self) -> u64 {
        self.add + self.mul + self.div + self.exp + self.sqrt
    }
}

impl std::ops::Add for OpCount {
    type Output = OpCount;

    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            add: self.add + rhs.add,
            mul: self.mul + rhs.mul,
            div: self.div + rhs.div,
            exp: self.exp + rhs.exp,
            sqrt: self.sqrt + rhs.sqrt,
        }
    }
}

impl std::ops::AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpCount {
    fn sum<I: Iterator<Item = OpCount>>(iter: I) -> OpCount {
        iter.fold(OpCount::default(), |a, b| a + b)
    }
}

/// Per-layer operation counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerCensus {
    /// Layer display name.
    pub name: String,
    /// Counts for one inference pass through this layer.
    pub ops: OpCount,
}

/// Ops of a 2-D convolution producing `c_out × h_out × w_out` from
/// `c_in` channels with a `k×k` kernel (MACs + bias adds).
pub fn conv_ops(c_in: usize, c_out: usize, k: usize, h_out: usize, w_out: usize) -> OpCount {
    let positions = (c_out * h_out * w_out) as u64;
    let macs = positions * (c_in * k * k) as u64;
    OpCount {
        mul: macs,
        add: macs, // accumulations (incl. bias)
        ..Default::default()
    }
}

/// Ops of squashing `c × p` capsules of dimension `d`: squared norm
/// (`d` muls, `d-1` adds), `1 + n²` add, one division by `1+n²`… the
/// norm square root, and the final `d` scalings.
pub fn squash_ops(c: usize, d: usize, p: usize) -> OpCount {
    let caps = (c * p) as u64;
    OpCount {
        mul: caps * (2 * d as u64),
        add: caps * (d as u64),
        div: caps,
        sqrt: caps,
        ..Default::default()
    }
}

/// Ops of a softmax over `j` types at `i × p` sites.
pub fn softmax_ops(i: usize, j: usize, p: usize) -> OpCount {
    let lanes = (i * p) as u64;
    OpCount {
        exp: lanes * j as u64,
        add: lanes * (j as u64 - 1),
        div: lanes * j as u64,
        ..Default::default()
    }
}

/// Ops of computing the vote tensor of a fully-connected capsule layer:
/// `û_{j|i} = W_ij · u_i` over `i × j` pairs.
pub fn fc_votes_ops(i: usize, j: usize, d_out: usize, d_in: usize) -> OpCount {
    let macs = (i * j * d_out * d_in) as u64;
    OpCount {
        mul: macs,
        add: macs,
        ..Default::default()
    }
}

/// Ops of `iterations` rounds of routing-by-agreement over votes
/// `[i, j, d, p]` (softmax + weighted sum + squash each round, agreement
/// update between rounds).
pub fn routing_ops(i: usize, j: usize, d: usize, p: usize, iterations: usize) -> OpCount {
    let mut total = OpCount::default();
    let weighted_sum = OpCount {
        mul: (i * j * d * p) as u64,
        add: (i * j * d * p) as u64,
        ..Default::default()
    };
    let update = OpCount {
        mul: (i * j * d * p) as u64,
        add: (i * j * d * p) as u64,
        ..Default::default()
    };
    for r in 0..iterations {
        total += softmax_ops(i, j, p);
        total += weighted_sum;
        total += squash_ops(j, d, p);
        if r + 1 < iterations {
            total += update;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_ops_formula() {
        let ops = conv_ops(3, 8, 3, 10, 10);
        assert_eq!(ops.mul, 8 * 100 * 27);
        assert_eq!(ops.add, ops.mul);
        assert_eq!(ops.div, 0);
    }

    #[test]
    fn squash_has_div_and_sqrt_per_capsule() {
        let ops = squash_ops(4, 8, 25);
        assert_eq!(ops.div, 100);
        assert_eq!(ops.sqrt, 100);
        assert_eq!(ops.mul, 100 * 16);
    }

    #[test]
    fn softmax_exp_count() {
        let ops = softmax_ops(6, 10, 4);
        assert_eq!(ops.exp, 240);
        assert_eq!(ops.div, 240);
        assert_eq!(ops.add, 24 * 9);
    }

    #[test]
    fn routing_scales_with_iterations() {
        let one = routing_ops(16, 10, 8, 1, 1);
        let three = routing_ops(16, 10, 8, 1, 3);
        assert!(three.total() > 2 * one.total());
        assert!(three.exp == 3 * one.exp);
    }

    #[test]
    fn opcount_sums() {
        let a = OpCount {
            add: 1,
            mul: 2,
            div: 3,
            exp: 4,
            sqrt: 5,
        };
        let b = a + a;
        assert_eq!(b.total(), 30);
        let s: OpCount = [a, a, a].into_iter().sum();
        assert_eq!(s.mul, 6);
    }

    #[test]
    fn multiplication_dominates_conv_census() {
        // The premise of the paper's Table I/Fig. 4: conv layers make
        // mul+add dominate, with mul ≈ add >> div/exp/sqrt.
        let conv = conv_ops(128, 128, 3, 16, 16);
        let squash = squash_ops(32, 4, 256);
        let total = conv + squash;
        assert!(total.mul > 100 * total.div);
        assert!(total.mul > 100 * total.sqrt);
    }
}
