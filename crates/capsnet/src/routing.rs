//! Dynamic routing-by-agreement (Sabour et al., Procedure 1), shared by
//! the fully-connected `ClassCaps` and the convolutional `Caps3D` layers.
//!
//! The routing state is expressed over a **vote tensor** `[I, J, D, P]`:
//! input capsule `i` casts a `D`-dimensional vote for output capsule type
//! `j` at position `p`. Per iteration:
//!
//! 1. coupling `k = softmax_J(b)` — **Softmax tap** (group #3);
//! 2. `s_j = Σ_i k_ij · û_{j|i}` — **MAC-output tap** (group #1);
//! 3. `v_j = squash(s_j)` — **Activation tap** (group #2);
//! 4. `b_ij += û_{j|i} · v_j` — **LogitsUpdate tap** (group #4).
//!
//! The backward pass is **exact**: gradients flow through every routing
//! iteration — the coupling softmax, the agreement (logits) updates, the
//! weighted sums and the squashes — not just through the final iteration
//! with detached coefficients.

use redcane_tensor::Tensor;

use crate::inject::{Injector, OpKind, OpSite};
use crate::squash::{squash_caps, squash_caps_backward};

/// Per-iteration state recorded by the forward pass (post any injection
/// by the caller, i.e. exactly the values downstream computation saw).
#[derive(Debug, Clone)]
pub struct RoutingIterState {
    /// Coupling coefficients `[I, J, P]` of this iteration.
    pub k: Tensor,
    /// Pre-squash weighted sum `[J, D, P]` of this iteration.
    pub s: Tensor,
    /// Squashed output capsules `[J, D, P]` of this iteration.
    pub v: Tensor,
}

/// Everything the forward pass produces and the backward pass needs.
#[derive(Debug, Clone)]
pub struct RoutingCache {
    /// The votes actually used (post any injection by the caller).
    pub votes: Tensor,
    /// Per-iteration routing state, first iteration first.
    pub history: Vec<RoutingIterState>,
    /// Final output capsules `[J, D, P]`.
    pub v: Tensor,
}

impl RoutingCache {
    /// Final coupling coefficients `[I, J, P]`.
    pub fn k_last(&self) -> &Tensor {
        &self.history.last().expect("iterations >= 1").k
    }
}

/// Runs `iterations` rounds of routing-by-agreement over `votes`
/// (`[I, J, D, P]`), calling `injector` at every tagged operation.
///
/// # Panics
///
/// Panics unless `votes` is rank 4 and `iterations >= 1`.
pub fn dynamic_routing(
    votes: Tensor,
    iterations: usize,
    layer_index: usize,
    layer_name: &str,
    injector: &mut dyn Injector,
) -> RoutingCache {
    assert_eq!(votes.ndim(), 4, "votes must be [I, J, D, P]");
    assert!(iterations >= 1, "routing needs at least one iteration");
    let (i_caps, j_caps, d, p) = (
        votes.shape()[0],
        votes.shape()[1],
        votes.shape()[2],
        votes.shape()[3],
    );
    let mut b = Tensor::zeros(&[i_caps, j_caps, p]);
    let mut history: Vec<RoutingIterState> = Vec::with_capacity(iterations);
    let mut v = Tensor::zeros(&[j_caps, d, p]);
    let vd = votes.data();
    for r in 0..iterations {
        let iter = r as u8;
        // 1. Coupling coefficients.
        let mut k = b.softmax_axis(1).expect("rank-3 softmax over J");
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::Softmax, iter),
            &mut k,
        );
        // 2. Weighted vote sum s_j = sum_i k_ij * votes_ij.
        let kd = k.data();
        let mut s = Tensor::zeros(&[j_caps, d, p]);
        {
            let sd = s.data_mut();
            for i in 0..i_caps {
                for j in 0..j_caps {
                    for di in 0..d {
                        let vrow = ((i * j_caps + j) * d + di) * p;
                        let krow = (i * j_caps + j) * p;
                        let srow = (j * d + di) * p;
                        for pi in 0..p {
                            sd[srow + pi] += kd[krow + pi] * vd[vrow + pi];
                        }
                    }
                }
            }
        }
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::MacOutput, iter),
            &mut s,
        );
        // 3. Squash.
        v = squash_caps(&s);
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::Activation, iter),
            &mut v,
        );
        history.push(RoutingIterState { k, s, v: v.clone() });
        // 4. Agreement update (skipped after the last iteration).
        if r + 1 < iterations {
            let vd2 = v.data();
            {
                let bd = b.data_mut();
                for i in 0..i_caps {
                    for j in 0..j_caps {
                        for pi in 0..p {
                            let mut dot = 0.0f32;
                            for di in 0..d {
                                dot += vd[((i * j_caps + j) * d + di) * p + pi]
                                    * vd2[(j * d + di) * p + pi];
                            }
                            bd[(i * j_caps + j) * p + pi] += dot;
                        }
                    }
                }
            }
            injector.inject(
                &OpSite::routing(layer_index, layer_name, OpKind::LogitsUpdate, iter),
                &mut b,
            );
        }
    }
    RoutingCache { votes, history, v }
}

/// Exact backward pass through the whole routing procedure: given `dv`
/// on the routing output, returns `d_votes` (`[I, J, D, P]`).
///
/// Walks the recorded iterations in reverse, propagating through each
/// squash, weighted sum, coupling softmax and agreement update, so the
/// returned gradient is the true derivative of the routing output with
/// respect to the votes.
///
/// # Panics
///
/// Panics if `dv`'s shape differs from the cached output.
pub fn dynamic_routing_backward(cache: &RoutingCache, dv: &Tensor) -> Tensor {
    assert_eq!(dv.shape(), cache.v.shape(), "dv must match routing output");
    let (i_caps, j_caps, d, p) = (
        cache.votes.shape()[0],
        cache.votes.shape()[1],
        cache.votes.shape()[2],
        cache.votes.shape()[3],
    );
    let vd = cache.votes.data();
    let iters = cache.history.len();
    let mut dvotes = vec![0.0f32; i_caps * j_caps * d * p];
    // Gradient w.r.t. b_{r+1}, carried backwards across iterations.
    let mut db_next: Option<Tensor> = None;
    for r in (0..iters).rev() {
        let it = &cache.history[r];
        // Gradient reaching v_r: the caller's dv on the last iteration;
        // for earlier iterations, v_r only feeds the agreement update
        // b_{r+1}[i,j,p] += Σ_d votes[i,j,d,p] · v_r[j,d,p].
        let mut dv_r = if r + 1 == iters {
            dv.clone()
        } else {
            Tensor::zeros(&[j_caps, d, p])
        };
        if let Some(db) = &db_next {
            let dbd = db.data();
            let vrd = it.v.data();
            let dvd = dv_r.data_mut();
            for i in 0..i_caps {
                for j in 0..j_caps {
                    for di in 0..d {
                        let vrow = ((i * j_caps + j) * d + di) * p;
                        let brow = (i * j_caps + j) * p;
                        let orow = (j * d + di) * p;
                        for pi in 0..p {
                            dvd[orow + pi] += dbd[brow + pi] * vd[vrow + pi];
                            dvotes[vrow + pi] += dbd[brow + pi] * vrd[orow + pi];
                        }
                    }
                }
            }
        }
        // Through the squash: ds_r.
        let ds = squash_caps_backward(&it.s, &dv_r);
        let dsd = ds.data();
        // Through the weighted sum s_r = Σ_i k_r · votes: contributions to
        // both the votes and the coupling coefficients.
        let kd = it.k.data();
        // b_0 is the zero constant, so the softmax/logits gradient of the
        // first iteration would only be discarded — skip computing it.
        let need_db = r > 0;
        let mut dk = vec![0.0f32; if need_db { i_caps * j_caps * p } else { 0 }];
        for i in 0..i_caps {
            for j in 0..j_caps {
                for di in 0..d {
                    let vrow = ((i * j_caps + j) * d + di) * p;
                    let krow = (i * j_caps + j) * p;
                    let srow = (j * d + di) * p;
                    for pi in 0..p {
                        dvotes[vrow + pi] += kd[krow + pi] * dsd[srow + pi];
                        if need_db {
                            dk[krow + pi] += vd[vrow + pi] * dsd[srow + pi];
                        }
                    }
                }
            }
        }
        if !need_db {
            break;
        }
        // Through the coupling softmax over J:
        // db[i,j,p] = k[i,j,p] · (dk[i,j,p] − Σ_j' k[i,j',p] · dk[i,j',p]).
        let mut db_r = Tensor::zeros(&[i_caps, j_caps, p]);
        {
            let dbd = db_r.data_mut();
            for i in 0..i_caps {
                for pi in 0..p {
                    let mut weighted = 0.0f32;
                    for j in 0..j_caps {
                        let off = (i * j_caps + j) * p + pi;
                        weighted += kd[off] * dk[off];
                    }
                    for j in 0..j_caps {
                        let off = (i * j_caps + j) * p + pi;
                        dbd[off] = kd[off] * (dk[off] - weighted);
                    }
                }
            }
        }
        // Identity path of the additive update b_{r+1} = b_r + agreement.
        if let Some(db) = &db_next {
            let dbd = db_r.data_mut();
            for (o, g) in dbd.iter_mut().zip(db.data()) {
                *o += g;
            }
        }
        db_next = Some(db_r);
    }
    Tensor::from_vec(dvotes, cache.votes.shape()).expect("sized")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};
    use redcane_tensor::TensorRng;

    #[test]
    fn output_shape_and_length_bounds() {
        let mut rng = TensorRng::from_seed(120);
        let votes = rng.uniform(&[6, 3, 4, 2], -1.0, 1.0);
        let cache = dynamic_routing(votes, 3, 7, "TestCaps", &mut NoInjection);
        assert_eq!(cache.v.shape(), &[3, 4, 2]);
        let lengths = crate::squash::caps_lengths(&cache.v);
        assert!(lengths.data().iter().all(|&l| (0.0..1.0).contains(&l)));
    }

    #[test]
    fn coupling_coefficients_are_probabilities_over_j() {
        let mut rng = TensorRng::from_seed(121);
        let votes = rng.uniform(&[5, 4, 3, 2], -1.0, 1.0);
        let cache = dynamic_routing(votes, 3, 0, "TestCaps", &mut NoInjection);
        let sums = cache.k_last().sum_axis(1).unwrap();
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-4, "k must sum to 1 over J: {s}");
        }
    }

    #[test]
    fn one_iteration_is_uniform_coupling() {
        let mut rng = TensorRng::from_seed(122);
        let votes = rng.uniform(&[4, 2, 3, 1], -1.0, 1.0);
        let cache = dynamic_routing(votes, 1, 0, "TestCaps", &mut NoInjection);
        for &k in cache.k_last().data() {
            assert!((k - 0.5).abs() < 1e-5, "uniform over 2 types: {k}");
        }
    }

    #[test]
    fn routing_sharpens_agreement() {
        // Construct votes where inputs agree strongly with output type 0
        // and are random for type 1: routing must shift coupling toward 0.
        let mut rng = TensorRng::from_seed(123);
        let (i_caps, j_caps, d, p) = (8, 2, 4, 1);
        let shared = rng.uniform(&[d], 0.5, 1.0);
        let mut votes = Tensor::zeros(&[i_caps, j_caps, d, p]);
        for i in 0..i_caps {
            for di in 0..d {
                votes
                    .set(
                        &[i, 0, di, 0],
                        shared.data()[di] + rng.next_uniform(-0.05, 0.05),
                    )
                    .unwrap();
                votes
                    .set(&[i, 1, di, 0], rng.next_uniform(-1.0, 1.0))
                    .unwrap();
            }
        }
        let cache = dynamic_routing(votes, 3, 0, "TestCaps", &mut NoInjection);
        let k_to_0: f32 = (0..i_caps)
            .map(|i| cache.k_last().get(&[i, 0, 0]).unwrap())
            .sum::<f32>()
            / i_caps as f32;
        assert!(
            k_to_0 > 0.55,
            "agreed type should attract coupling: {k_to_0}"
        );
    }

    #[test]
    fn taps_fire_in_expected_pattern() {
        let mut rng = TensorRng::from_seed(124);
        let votes = rng.uniform(&[3, 2, 2, 1], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = dynamic_routing(votes, 3, 5, "Caps3D", &mut rec);
        let softmax = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::Softmax)
            .count();
        let mac = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::MacOutput)
            .count();
        let act = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::Activation)
            .count();
        let upd = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::LogitsUpdate)
            .count();
        assert_eq!(softmax, 3);
        assert_eq!(mac, 3);
        assert_eq!(act, 3);
        assert_eq!(upd, 2, "updates happen between iterations");
        assert!(rec.visits.iter().all(|s| s.layer_index == 5));
        assert!(rec.visits.iter().all(|s| s.routing_iter.is_some()));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(125);
        let votes = rng.uniform(&[4, 3, 3, 2], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 3, 2], -1.0, 1.0);
        // The backward pass is exact, so the analytic gradient must match
        // central differences of the FULL routing loss — coupling
        // coefficient dependence on the votes included.
        let base = dynamic_routing(votes.clone(), 3, 0, "T", &mut NoInjection);
        let dvotes = dynamic_routing_backward(&base, &coeffs);
        let loss = |votes: &Tensor| -> f32 {
            dynamic_routing(votes.clone(), 3, 0, "T", &mut NoInjection)
                .v
                .mul(&coeffs)
                .unwrap()
                .sum()
        };
        let eps = 1e-2f32;
        for idx in 0..votes.len() {
            let mut vp = votes.clone();
            vp.data_mut()[idx] += eps;
            let mut vm = votes.clone();
            vm.data_mut()[idx] -= eps;
            let num = (loss(&vp) - loss(&vm)) / (2.0 * eps);
            let ana = dvotes.data()[idx];
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + num.abs()),
                "dvotes[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_iterations() {
        let votes = Tensor::zeros(&[2, 2, 2, 1]);
        let _ = dynamic_routing(votes, 0, 0, "T", &mut NoInjection);
    }
}
