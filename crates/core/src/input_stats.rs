//! Input-distribution studies (Fig. 11 and Table IV's "Real ΔX" column).
//!
//! The `NM`/`NA` of an approximate component depend on its operand
//! distribution. This module samples the values *entering* the network's
//! convolutions (via the observation-only `MacInput` taps) together with
//! the layer weights, quantizes both to 8-bit codes (Eq. 1) and packages
//! them as an empirical [`InputDistribution`] for component
//! characterization.

use redcane_axmul::error_stats::InputDistribution;
use redcane_capsnet::inject::{OpKind, RecordingInjector};
use redcane_capsnet::CapsModel;
use redcane_datasets::Dataset;
use redcane_fxp::QuantParams;
use redcane_tensor::stats::Histogram;
use serde::{Deserialize, Serialize};

/// Sampled conv-input statistics of a trained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputProfile {
    /// Model display name.
    pub model_name: String,
    /// Quantized (8-bit) codes of sampled conv inputs, all layers pooled.
    pub activation_codes: Vec<u8>,
    /// Quantized (8-bit) codes of the model's weights.
    pub weight_codes: Vec<u8>,
    /// Per-layer quantized input histograms `(layer, histogram)` over the
    /// 0..=255 code domain (Fig. 11's per-layer curves).
    pub layer_histograms: Vec<(String, Histogram)>,
}

impl InputProfile {
    /// Collects the profile by running recorded inferences over up to
    /// `max_samples` dataset images and sampling at most
    /// `values_per_site` values per operation site.
    pub fn collect<M: CapsModel>(
        model: &mut M,
        data: &Dataset,
        max_samples: usize,
        values_per_site: usize,
    ) -> Self {
        let mut rec = RecordingInjector::with_values(values_per_site);
        for sample in data.samples.iter().take(max_samples) {
            let _ = model.forward(&sample.image, &mut rec);
        }
        // Pool all MacInput observations and quantize with a common range.
        let all_values = rec.values_where(|s| s.kind == OpKind::MacInput);
        let (lo, hi) = min_max(&all_values);
        let params = QuantParams::from_range(lo.min(0.0), hi.max(lo.min(0.0) + 1e-3), 8)
            // lint: allow(panic) — the range was clamped finite immediately above
            .expect("observed range is finite");
        let activation_codes: Vec<u8> = all_values
            .iter()
            .map(|&v| params.quantize(v) as u8)
            .collect();
        // Weights, quantized per-model range.
        let weights: Vec<f32> = {
            let mut w = Vec::new();
            for p in model.params_mut() {
                w.extend_from_slice(p.value.data());
            }
            w
        };
        let (wlo, whi) = min_max(&weights);
        // lint: allow(panic) — the range was clamped finite immediately above
        let wparams = QuantParams::from_range(wlo, whi.max(wlo + 1e-3), 8).expect("finite weights");
        let weight_codes: Vec<u8> = weights.iter().map(|&v| wparams.quantize(v) as u8).collect();
        // Per-layer histograms over the code domain.
        let mut layer_histograms = Vec::new();
        let mut layer_names: Vec<String> = Vec::new();
        for site in rec.distinct_sites() {
            if site.kind == OpKind::MacInput && !layer_names.contains(&site.layer_name) {
                layer_names.push(site.layer_name.clone());
            }
        }
        for name in layer_names {
            let values = rec.values_where(|s| s.kind == OpKind::MacInput && s.layer_name == name);
            let codes: Vec<f32> = values.iter().map(|&v| params.quantize(v) as f32).collect();
            layer_histograms.push((name, Histogram::of_values(&codes, 64, 0.0, 256.0)));
        }
        InputProfile {
            model_name: model.name(),
            activation_codes,
            weight_codes,
            layer_histograms,
        }
    }

    /// The pooled histogram of quantized conv inputs (Fig. 11 left).
    pub fn pooled_histogram(&self, bins: usize) -> Histogram {
        let codes: Vec<f32> = self.activation_codes.iter().map(|&c| c as f32).collect();
        Histogram::of_values(&codes, bins, 0.0, 256.0)
    }

    /// Packages the profile as an empirical operand distribution for
    /// component characterization (Table IV "Real ΔX").
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty.
    pub fn to_input_distribution(&self) -> InputDistribution {
        assert!(
            !self.activation_codes.is_empty() && !self.weight_codes.is_empty(),
            "profile holds no samples"
        );
        InputDistribution::Empirical {
            activations: self.activation_codes.clone(),
            weights: self.weight_codes.clone(),
        }
    }
}

fn min_max(values: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{CapsNet, CapsNetConfig};
    use redcane_datasets::{generate, Benchmark, GenerateConfig};
    use redcane_tensor::TensorRng;

    fn profile() -> InputProfile {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 1,
                test: 8,
                seed: 31,
            },
        );
        let mut rng = TensorRng::from_seed(240);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        InputProfile::collect(&mut model, &pair.test, 8, 500)
    }

    #[test]
    fn collects_codes_and_histograms() {
        let p = profile();
        assert!(!p.activation_codes.is_empty());
        assert!(!p.weight_codes.is_empty());
        // CapsNet has three conv-like layers tapping MacInput.
        assert_eq!(p.layer_histograms.len(), 3);
        let pooled = p.pooled_histogram(32);
        assert_eq!(pooled.total() as usize, p.activation_codes.len());
    }

    #[test]
    fn empirical_distribution_is_usable() {
        use redcane_axmul::error_stats::profile_multiplier;
        use redcane_axmul::mult::TruncatedMultiplier;
        let p = profile();
        let dist = p.to_input_distribution();
        let prof = profile_multiplier(&TruncatedMultiplier::new(6), &dist, 5000, 1);
        assert!(prof.std > 0.0);
        // Real (non-uniform) inputs give different noise parameters than
        // the modeled uniform distribution — the Table IV observation.
        let uniform = profile_multiplier(
            &TruncatedMultiplier::new(6),
            &InputDistribution::Uniform,
            5000,
            1,
        );
        assert_ne!(prof.noise_params().nm, uniform.noise_params().nm);
    }
}
