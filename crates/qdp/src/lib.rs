//! # redcane-qdp
//!
//! The quantized approximate datapath: runs the `redcane_axmul`
//! multiplier models **inside** the trained network's 8-bit integer
//! MACs, instead of beside it as injected Gaussian noise.
//!
//! The ReD-CaNe methodology *predicts* how a CapsNet degrades on
//! approximate hardware from per-component noise models
//! (`redcane::noise`). This crate measures the ground truth the
//! prediction stands in for:
//!
//! 1. **Calibrate** — sweep clean inputs through the trained float
//!    network with [`CalibrationObserver`] [`RangeTracker`]s riding the
//!    existing injection tap points, fixing every requantization range
//!    from the real input distribution ([`calibrate_capsnet`]).
//! 2. **Quantize** — lower the trained weights and activations onto
//!    8-bit codes ([`QTensor`], Eq. 1 of the paper) and the MACs onto
//!    integer kernels ([`kernels::qgemm_nn`]) whose every multiply is a
//!    [`MulLut`] lookup — a 64 KiB table of any
//!    [`Multiplier8`](redcane_axmul::Multiplier8)'s full truth table.
//! 3. **Run** — [`QCapsNet`] executes end-to-end inference on that
//!    datapath ([`QConv2d`], [`QVotes`], [`quantized_routing`],
//!    [`QDense`] for dense models), so swapping the LUT swaps the
//!    arithmetic of the whole network.
//!
//! With the exact multiplier the datapath reproduces the float
//! network's predictions to within quantization tolerance; with an
//! approximate component it measures the *actual* accuracy drop that
//! `redcane-bench`'s `qdp` binary then pairs with the noise-model
//! prediction — the paper's validation loop, closed.
//!
//! [`RangeTracker`]: redcane_fxp::RangeTracker

pub mod calib;
pub mod kernels;
pub mod lut;
pub mod qmodel;
pub mod qtensor;

pub use calib::CalibrationObserver;
pub use lut::MulLut;
pub use qmodel::{
    calibrate_capsnet, evaluate_quantized, quantized_routing, CapsNetRanges, QCapsNet, QConv2d,
    QDense, QVotes,
};
pub use qtensor::QTensor;
