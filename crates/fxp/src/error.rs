use std::error::Error;
use std::fmt;

/// Errors produced when constructing or applying quantization parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum FxpError {
    /// The requested word length is unsupported (must be 1..=16 bits here,
    /// since the approximate component library is 8-bit with 16-bit
    /// products).
    UnsupportedWordLength {
        /// Requested bit width.
        bits: u8,
    },
    /// The quantization range is degenerate (`max <= min`) or non-finite.
    InvalidRange {
        /// Lower edge supplied.
        min: f32,
        /// Upper edge supplied.
        max: f32,
    },
}

impl fmt::Display for FxpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FxpError::UnsupportedWordLength { bits } => {
                write!(f, "unsupported word length {bits} (expected 1..=16 bits)")
            }
            FxpError::InvalidRange { min, max } => {
                write!(f, "invalid quantization range [{min}, {max}]")
            }
        }
    }
}

impl Error for FxpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_values() {
        let e = FxpError::InvalidRange { min: 2.0, max: 1.0 };
        assert!(e.to_string().contains('2'));
        let e = FxpError::UnsupportedWordLength { bits: 33 };
        assert!(e.to_string().contains("33"));
    }
}
