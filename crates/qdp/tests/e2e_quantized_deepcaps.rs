//! End-to-end sanity for the paper's second architecture: a trained
//! DeepCaps — all 17 capsule layers, Caps3D routing included — lowered
//! through the architecture-generic pipeline and scored through the
//! [`QuantMeasured`] backend under the **exact**-multiplier uniform
//! assignment must reproduce the float network's predictions. This is
//! the acceptance bar for the generic lowering being a faithful 8-bit
//! execution of the same network rather than a different model.

use redcane::datapath::AccuracyBackend;
use redcane_artifacts::{fingerprint, ArtifactKey, ArtifactPayload, ArtifactStore};
use redcane_axmul::MultiplierLibrary;
use redcane_capsnet::{evaluate_clean, train, CapsModel, DeepCaps, DeepCapsConfig, TrainConfig};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{calibrate_ranges, DatapathAssignment, QuantMeasured, QuantRanges};
use redcane_tensor::TensorRng;

#[test]
fn quantized_deepcaps_matches_float_within_tolerance() {
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 300,
            test: 50,
            seed: 43,
        },
    );
    let mut rng = TensorRng::from_seed(4300);
    let mut model = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);

    // Trained weights and calibrated ranges come from the
    // trained-artifact store: first run trains and persists, later runs
    // restore bit-identical weights with zero training epochs.
    let store = ArtifactStore::for_tests();
    let key = ArtifactKey::new(
        "deepcaps",
        "mnist-like",
        43,
        6,
        fingerprint(
            "e2e_quantized_deepcaps-v1;train=300;test=50;rng=4300;batch=16;lr=2e-3;tseed=9;calib=24",
        ),
    );
    let (payload, _prov) = store.load_or_train(&key, &mut model, |m| {
        let report = train(
            m,
            &pair.train,
            &TrainConfig {
                epochs: 6,
                batch_size: 16,
                lr: 2e-3,
                seed: 9,
                verbose: false,
            },
        );
        let ranges = calibrate_ranges(m, pair.train.samples.iter().take(24).map(|s| &s.image))
            .expect("calibration succeeds on trained activations");
        ArtifactPayload {
            epoch_losses: report.epoch_losses,
            train_accuracy: report.train_accuracy,
            ranges: ranges.to_entries(),
            ..ArtifactPayload::default()
        }
    });

    let eval = pair.test.take(40);
    let float_acc = evaluate_clean(&model, &eval);
    assert!(
        float_acc > 0.2,
        "float DeepCaps must train above 10% chance, got {float_acc}"
    );

    // The ranges were calibrated on clean training inputs; lower every
    // layer through the generic pipeline, score the test subset through
    // the measured backend with the exact multiplier at every site.
    let library = MultiplierLibrary::evo_approx_like();
    let ranges = QuantRanges::from_entries(&payload.ranges);
    let backend = QuantMeasured::from_ranges(&model, &ranges, &library)
        .expect("lowering succeeds on stored ranges");
    let exact = DatapathAssignment::uniform("mul8u_1JFF");
    let quant_acc = backend.evaluate(&model, &eval, &exact).unwrap();

    // On this seeded run the 8-bit exact datapath reproduces the float
    // predictions bit for bit through all 17 quantized layers: same
    // label on every sample, so the same accuracy.
    for sample in &eval.samples {
        assert_eq!(
            backend
                .qmodel()
                .predict(&sample.image, &exact, backend.luts())
                .unwrap(),
            model.predict(&sample.image),
            "quantized-exact DeepCaps prediction diverges from float"
        );
    }
    assert_eq!(quant_acc, float_acc);

    // Seeded determinism: recalibrating live must reproduce the stored
    // ranges' backend exactly — whether this run trained or restored.
    let backend2 = QuantMeasured::calibrated(
        &mut model,
        pair.train.samples.iter().take(24).map(|s| &s.image),
        &library,
    )
    .expect("calibration is deterministic");
    assert_eq!(quant_acc, backend2.evaluate(&model, &eval, &exact).unwrap());
}
