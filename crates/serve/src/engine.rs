//! The serving engine: prepared-model templates, the scoped worker
//! pool, and the client-facing [`Submitter`].
//!
//! [`Engine::new`] resolves every served (model × assignment) pair
//! **once** into a [`PreparedModel`] template against one shared
//! [`LutCache`]. Workers clone templates instead of re-resolving —
//! each worker owns its model data (cache-friendly, no sharing in the
//! hot loop) while the 64 KiB multiplier tables stay behind shared
//! `Arc`s, and crucially the LUT-cache hit counters see the same
//! traffic no matter how many workers run. Re-resolving per worker
//! would make the profile document worker-count-dependent.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

use redcane_qdp::{BackendError, DatapathAssignment, LutCache, PreparedModel, QModel};
use redcane_tensor::Tensor;
use redcane_trace as trace;

use crate::queue::{RequestQueue, Response};

/// Knobs for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches. Zero falls back to 1.
    pub workers: usize,
    /// Batch-size ceiling per cut.
    pub max_batch: usize,
    /// Adaptive deadline: `Some(d)` cuts a partial batch once its
    /// oldest request has waited `d`; `None` selects fill-only
    /// batching (deterministic composition — see the queue docs).
    pub max_wait: Option<Duration>,
}

/// One (model × assignment) pair the engine serves, resolved into an
/// executable template at construction.
struct ServedModel {
    label: String,
    template: PreparedModel,
}

/// Per-model work statistics, aggregated across workers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Batches executed for this model.
    pub batches: u64,
    /// Requests served for this model.
    pub items: u64,
    /// Largest batch executed for this model.
    pub max_batch: u64,
}

/// What a serving run did, per served model (indexed like the specs
/// passed to [`Engine::new`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Per-model batch/item counts.
    pub per_model: Vec<ModelStats>,
}

impl ServeStats {
    /// Total batches across models.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.per_model.iter().map(|m| m.batches).sum()
    }

    /// Total requests served across models.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.per_model.iter().map(|m| m.items).sum()
    }

    /// Largest batch executed by any model.
    #[must_use]
    pub fn max_batch(&self) -> u64 {
        self.per_model
            .iter()
            .map(|m| m.max_batch)
            .max()
            .unwrap_or(0)
    }
}

/// The client handle passed to the drive closure of
/// [`Engine::serve`]: submits requests into the queue.
pub struct Submitter<'a> {
    queue: &'a RequestQueue,
    models: usize,
}

impl Submitter<'_> {
    /// Served-model count (valid indices are `0..models()`).
    #[must_use]
    pub fn models(&self) -> usize {
        self.models
    }

    /// Submits one request and returns the receiver its [`Response`]
    /// will arrive on.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    #[must_use]
    pub fn submit(&self, model: usize, input: Tensor) -> Receiver<Response> {
        let (tx, rx) = channel();
        let _ = self.submit_with(model, input, tx);
        rx
    }

    /// Submits one request replying on a caller-supplied channel
    /// (lets a client fan many requests into one receiver). Returns
    /// the request's sequence number and the queue depth right after
    /// the push — the open-loop bench's queue-depth sample.
    ///
    /// # Panics
    ///
    /// Panics when `model` is out of range.
    #[must_use]
    pub fn submit_with(
        &self,
        model: usize,
        input: Tensor,
        reply: Sender<Response>,
    ) -> (u64, usize) {
        assert!(model < self.models, "model index out of range");
        self.queue.enqueue(model, input, reply)
    }
}

/// The serving engine.
pub struct Engine {
    models: Vec<ServedModel>,
}

impl Engine {
    /// Resolves each `(label, model, assignment)` spec against `luts`
    /// once, building the worker templates.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when an assignment names a component missing
    /// from the multiplier library behind `luts`, or leaves a
    /// multiply site uncovered.
    pub fn new(
        specs: Vec<(String, QModel, DatapathAssignment)>,
        luts: &LutCache,
    ) -> Result<Self, BackendError> {
        let models = specs
            .into_iter()
            .map(|(label, model, assignment)| {
                PreparedModel::new(model, &assignment, luts)
                    .map(|template| ServedModel { label, template })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Engine { models })
    }

    /// Served-model labels, in spec order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.label.as_str()).collect()
    }

    /// Served-model count.
    #[must_use]
    pub fn models(&self) -> usize {
        self.models.len()
    }

    /// Single-request reference prediction on served model `index`,
    /// outside any queue or batch — the determinism oracle batched
    /// responses are compared against.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn predict_one(&self, index: usize, input: &Tensor) -> usize {
        self.models[index].template.predict_batch(&[input])[0]
    }

    /// Runs a serving session: spawns the worker pool, hands the
    /// drive closure a [`Submitter`], closes the queue when the
    /// closure returns, joins the workers once the queue drains, and
    /// returns the closure's result plus per-model work statistics.
    ///
    /// Responses are bit-identical to [`predict_one`](Self::predict_one)
    /// for every request, regardless of `config` — batching and
    /// worker count only change scheduling, never arithmetic.
    ///
    /// In fill-only mode (`max_wait: None`) partial tail batches are
    /// flushed only when the queue closes, i.e. *after* the drive
    /// closure returns — a closure that blocks on its last responses
    /// would deadlock. Return the response receivers instead and
    /// drain them after `serve` returns: by then the workers have
    /// joined and every response is already in its channel.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (poisoning the shared stats
    /// lock) or a submitted request names an out-of-range model.
    pub fn serve<R>(
        &self,
        config: &ServeConfig,
        drive: impl FnOnce(&Submitter<'_>) -> R,
    ) -> (R, ServeStats) {
        let workers = config.workers.max(1);
        let queue = RequestQueue::new(self.models.len(), config.max_batch, config.max_wait);
        let stats = Mutex::new(ServeStats {
            per_model: vec![ModelStats::default(); self.models.len()],
        });
        let result = std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Deep-copies the quantized model data; LUT Arcs
                    // are shared handles (no cache traffic).
                    let owned: Vec<PreparedModel> =
                        self.models.iter().map(|m| m.template.clone()).collect();
                    while let Some((model, batch)) = queue.next_batch() {
                        let _span = trace::span("serve_batch");
                        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
                        let predictions = owned[model].predict_batch(&inputs);
                        {
                            // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
                            let mut stats = stats.lock().expect("stats poisoned");
                            let m = &mut stats.per_model[model];
                            m.batches += 1;
                            m.items += batch.len() as u64;
                            m.max_batch = m.max_batch.max(batch.len() as u64);
                        }
                        for (request, prediction) in batch.into_iter().zip(predictions) {
                            // A client that dropped its receiver just
                            // loses the response; the engine keeps
                            // draining.
                            let _ = request.reply.send(Response {
                                seq: request.seq,
                                model: request.model,
                                prediction,
                                latency: request.enqueued.elapsed(),
                            });
                        }
                    }
                    // Push buffered counts out before the scope
                    // unblocks — the TLS destructor would race a
                    // snapshot taken right after `serve` returns.
                    trace::flush();
                });
            }
            let submitter = Submitter {
                queue: &queue,
                models: self.models.len(),
            };
            let result = drive(&submitter);
            queue.close();
            result
        });
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        (result, stats.into_inner().expect("stats poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_axmul::mult::TruncatedMultiplier;
    use redcane_capsnet::{CapsNet, CapsNetConfig};
    use redcane_qdp::MulLut;
    use redcane_tensor::TensorRng;

    /// A tiny calibrated `CapsNet` plus an exact/degraded two-entry
    /// library — enough to serve two distinct assignments.
    fn setup() -> (QModel, LutCache) {
        let mut rng = TensorRng::from_seed(611);
        let cfg = CapsNetConfig::small(1, 16);
        let mut model = CapsNet::new(&cfg, &mut rng);
        let images: Vec<Tensor> = (0..3)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        let mut luts = LutCache::new();
        luts.insert("exact", MulLut::exact());
        luts.insert("trunc4", MulLut::tabulate(&TruncatedMultiplier::new(4)));
        (q, luts)
    }

    fn images(rng: &mut TensorRng, n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect()
    }

    #[test]
    fn serve_matches_single_request_predictions_under_load() {
        let (q, luts) = setup();
        let engine = Engine::new(
            vec![
                (
                    "exact".to_string(),
                    q.clone(),
                    DatapathAssignment::uniform("exact"),
                ),
                (
                    "trunc4".to_string(),
                    q,
                    DatapathAssignment::uniform("trunc4"),
                ),
            ],
            &luts,
        )
        .unwrap();
        assert_eq!(engine.labels(), vec!["exact", "trunc4"]);
        let mut rng = TensorRng::from_seed(612);
        let inputs = images(&mut rng, 10);
        let config = ServeConfig {
            workers: 3,
            max_batch: 4,
            max_wait: None,
        };
        let (receivers, stats) = engine.serve(&config, |submitter| {
            inputs
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    let model = i % submitter.models();
                    (i, model, submitter.submit(model, x.clone()))
                })
                .collect::<Vec<(usize, usize, Receiver<Response>)>>()
        });
        // Workers have joined: every response is already buffered.
        let responses: Vec<(usize, usize, Response)> = receivers
            .into_iter()
            .map(|(i, model, rx)| (i, model, rx.recv().expect("response")))
            .collect();
        assert_eq!(responses.len(), 10);
        for (i, model, response) in &responses {
            assert_eq!(response.model, *model);
            assert_eq!(
                response.prediction,
                engine.predict_one(*model, &inputs[*i]),
                "request {i} on model {model} must match single-request predict"
            );
        }
        assert_eq!(stats.items(), 10);
        assert_eq!(stats.per_model.len(), 2);
        assert_eq!(stats.per_model[0].items, 5);
        assert_eq!(stats.per_model[1].items, 5);
        // Fill-only with max_batch 4 and 5 items per model: one full
        // batch of 4 plus a flushed tail of 1, each model.
        assert_eq!(stats.per_model[0].batches, 2);
        assert_eq!(stats.max_batch(), 4);
    }

    #[test]
    fn work_stats_are_scheduling_invariant_across_worker_counts() {
        let (q, luts) = setup();
        let engine = Engine::new(
            vec![("exact".to_string(), q, DatapathAssignment::uniform("exact"))],
            &luts,
        )
        .unwrap();
        let mut rng = TensorRng::from_seed(613);
        let inputs = images(&mut rng, 7);
        let run = |workers: usize| {
            let config = ServeConfig {
                workers,
                max_batch: 3,
                max_wait: None,
            };
            let (rxs, stats) = engine.serve(&config, |submitter| {
                inputs
                    .iter()
                    .map(|x| submitter.submit(0, x.clone()))
                    .collect::<Vec<_>>()
            });
            for rx in rxs {
                rx.recv().expect("response");
            }
            stats
        };
        let stats1 = run(1);
        let stats4 = run(4);
        assert_eq!(stats1, stats4, "fill-only batch cuts ignore worker count");
        // 7 requests at max_batch 3: batches 3/3/1.
        assert_eq!(stats1.batches(), 3);
        assert_eq!(stats1.items(), 7);
        assert_eq!(stats1.max_batch(), 3);
    }

    #[test]
    fn unknown_component_is_rejected_at_engine_construction() {
        let (q, luts) = setup();
        let err = Engine::new(
            vec![(
                "ghost".to_string(),
                q,
                DatapathAssignment::uniform("mul8u_ghost"),
            )],
            &luts,
        )
        .err()
        .expect("resolution must fail");
        assert!(matches!(err, BackendError::UnknownComponent { .. }));
    }
}
