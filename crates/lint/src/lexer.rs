//! A minimal Rust lexer: just enough to strip comments, string/char
//! literals and doc text from a source file while keeping line numbers,
//! so the rule engine never matches inside prose or literals.
//!
//! This is deliberately **not** a parser. The workspace bans proc-macro
//! dependencies (offline-shims policy), and the invariant rules only
//! need token streams plus brace structure: identifiers, single-char
//! punctuation, and the `// lint: allow(...)` escape markers found in
//! line comments.

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number.
    pub line: usize,
    /// What the token is.
    pub kind: TokKind,
}

/// Token payload: identifiers/keywords keep their text, everything else
/// degrades to single punctuation characters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal head.
    Ident(String),
    /// One punctuation character (`{`, `.`, `!`, …).
    Punct(char),
}

impl TokKind {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s.as_str()),
            TokKind::Punct(_) => None,
        }
    }
}

/// An in-source `// lint: allow(<rule>) — <reason>` escape marker.
///
/// A marker suppresses findings of `rule` on its own line and on the
/// line directly below it, so it can ride at the end of the offending
/// line or on its own line just above. The reason text after the
/// closing parenthesis (any of `—`/`–`/`-`/`:` may introduce it) is
/// mandatory; the rule engine reports reasonless markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line the marker comment sits on.
    pub line: usize,
    /// Rule name inside `allow(...)` (e.g. `panic`, `determinism`).
    pub rule: String,
    /// Justification text after the marker; may be empty (reported).
    pub reason: String,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments/literals stripped).
    pub tokens: Vec<Token>,
    /// Every `lint: allow` marker found in line comments.
    pub markers: Vec<Marker>,
}

/// Lexes `src`, stripping comments and literals.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                if let Some(m) = parse_marker(&text, line) {
                    out.markers.push(m);
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
            }
            '\'' => {
                i = skip_char_or_lifetime(&b, i, &mut line);
            }
            'r' | 'b' if is_literal_prefix(&b, i) => {
                i = skip_prefixed_literal(&b, i, &mut line);
            }
            _ if c == '_' || c.is_alphanumeric() => {
                let start = i;
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(b[start..i].iter().collect()),
                });
            }
            _ => {
                if !c.is_whitespace() {
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Punct(c),
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// Does position `i` start a raw/byte string literal prefix
/// (`r"`, `r#"`, `b"`, `br"`, `br#"`)?
fn is_literal_prefix(b: &[char], i: usize) -> bool {
    // Must not be the tail of a longer identifier.
    if i > 0 && (b[i - 1] == '_' || b[i - 1].is_alphanumeric()) {
        return false;
    }
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    b[i] == 'b' && b.get(j) == Some(&'"')
}

/// Skips a literal starting with `r`/`b` prefixes at `i`; returns the
/// index one past its closing quote.
fn skip_prefixed_literal(b: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if b.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if !raw {
        return skip_string(b, i, line);
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a `"…"` string with escapes starting at the opening quote.
fn skip_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes and
/// skips accordingly.
fn skip_char_or_lifetime(b: &[char], i: usize, _line: &mut usize) -> usize {
    if b.get(i + 1) == Some(&'\\') {
        // Escaped char literal: '\x41', '\n', '\'' …
        let mut j = i + 2;
        while j < b.len() && b[j] != '\'' {
            j += 1;
        }
        return j + 1;
    }
    if b.get(i + 2) == Some(&'\'') {
        return i + 3; // plain 'x'
    }
    i + 1 // lifetime: consume the quote, the ident lexes normally
}

/// Parses a `lint: allow(<rule>)` marker out of one line comment.
fn parse_marker(comment: &str, line: usize) -> Option<Marker> {
    let at = comment.find("lint: allow(")?;
    let rest = &comment[at + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let mut reason = rest[close + 1..].trim_start();
    // Strip the introducing separator (em/en dash, hyphen or colon).
    for sep in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r;
            break;
        }
    }
    Some(Marker {
        line,
        rule,
        reason: reason.trim().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\n/* HashMap */ let y = 1;";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ c */ fn f() { let s = r#\"un\"safe\"#; }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "let", "s"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { ';' }";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"char".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"x\ny\";\nunsafe {}";
        let lexed = lex(src);
        let tok = lexed
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("unsafe"))
            .unwrap();
        assert_eq!(tok.line, 3);
    }

    #[test]
    fn markers_parse_rule_and_reason() {
        let src = "foo(); // lint: allow(panic) — the table is never empty\nbar();";
        let lexed = lex(src);
        assert_eq!(lexed.markers.len(), 1);
        let m = &lexed.markers[0];
        assert_eq!(m.line, 1);
        assert_eq!(m.rule, "panic");
        assert_eq!(m.reason, "the table is never empty");
    }

    #[test]
    fn marker_without_reason_has_empty_reason() {
        let src = "// lint: allow(clock)\nfoo();";
        let lexed = lex(src);
        assert_eq!(lexed.markers[0].reason, "");
    }

    #[test]
    fn byte_strings_are_literals() {
        let ids = idents("let m = b\"RCW1\"; let n = br#\"x\"#;");
        assert_eq!(ids, vec!["let", "m", "let", "n"]);
    }
}
