//! # redcane-datasets
//!
//! Seeded synthetic image datasets standing in for the four benchmarks the
//! ReD-CaNe paper evaluates on: MNIST, Fashion-MNIST, SVHN and CIFAR-10.
//!
//! The real datasets are not available in this environment; the resilience
//! methodology, however, measures the **relative accuracy drop under
//! injected noise** of a trained network — not absolute dataset difficulty.
//! These generators therefore aim to preserve what matters:
//!
//! - 10 visually distinct classes per benchmark with intra-class variation
//!   (affine jitter, thickness, per-sample noise), so networks must learn
//!   real decision boundaries and degrade smoothly under noise;
//! - the modality split of the originals: grayscale glyphs
//!   ([`Benchmark::MnistLike`]), grayscale garment silhouettes
//!   ([`Benchmark::FashionLike`]), colored digits on cluttered backgrounds
//!   ([`Benchmark::SvhnLike`]) and colored shapes/textures
//!   ([`Benchmark::Cifar10Like`]);
//! - the difficulty ordering (CIFAR-like hardest, MNIST-like easiest),
//!   which drives the per-benchmark differences in the paper's Fig. 12.
//!
//! Everything is deterministic given the seed.
//!
//! # Example
//!
//! ```
//! use redcane_datasets::{generate, Benchmark, GenerateConfig};
//!
//! let pair = generate(Benchmark::MnistLike, &GenerateConfig {
//!     train: 64,
//!     test: 16,
//!     seed: 7,
//! });
//! assert_eq!(pair.train.len(), 64);
//! assert_eq!(pair.test.len(), 16);
//! assert_eq!(pair.train.num_classes, 10);
//! ```
#![forbid(unsafe_code)]

mod canvas;
mod cifar;
mod dataset;
mod digits;
mod fashion;
mod svhn;

pub use canvas::Canvas;
pub use dataset::{Dataset, DatasetPair, Sample};

use redcane_tensor::TensorRng;

/// The four benchmark dataset families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Grayscale digit glyphs (MNIST stand-in).
    MnistLike,
    /// Grayscale garment silhouettes (Fashion-MNIST stand-in).
    FashionLike,
    /// Colored digits on cluttered backgrounds (SVHN stand-in).
    SvhnLike,
    /// Colored shapes and textures (CIFAR-10 stand-in).
    Cifar10Like,
}

impl Benchmark {
    /// Canonical short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::MnistLike => "mnist-like",
            Benchmark::FashionLike => "fashion-mnist-like",
            Benchmark::SvhnLike => "svhn-like",
            Benchmark::Cifar10Like => "cifar10-like",
        }
    }

    /// Image geometry `(channels, height, width)` for this benchmark.
    pub fn geometry(&self) -> (usize, usize, usize) {
        match self {
            Benchmark::MnistLike | Benchmark::FashionLike => (1, 16, 16),
            Benchmark::SvhnLike | Benchmark::Cifar10Like => (3, 20, 20),
        }
    }

    /// All four benchmarks in the paper's presentation order.
    pub fn all() -> [Benchmark; 4] {
        [
            Benchmark::Cifar10Like,
            Benchmark::SvhnLike,
            Benchmark::MnistLike,
            Benchmark::FashionLike,
        ]
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerateConfig {
    /// Number of training samples.
    pub train: usize,
    /// Number of test samples.
    pub test: usize,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            train: 2000,
            test: 400,
            seed: 1,
        }
    }
}

/// Generates a train/test pair for `benchmark`.
///
/// Class labels are balanced round-robin; samples are rendered with
/// per-sample jitter and noise so no two are identical.
pub fn generate(benchmark: Benchmark, cfg: &GenerateConfig) -> DatasetPair {
    let mut rng = TensorRng::from_seed(cfg.seed ^ benchmark_salt(benchmark));
    let train = generate_split(benchmark, cfg.train, &mut rng, "train");
    let test = generate_split(benchmark, cfg.test, &mut rng, "test");
    DatasetPair { train, test }
}

fn benchmark_salt(benchmark: Benchmark) -> u64 {
    match benchmark {
        Benchmark::MnistLike => 0x6d6e_6973,
        Benchmark::FashionLike => 0x6661_7368,
        Benchmark::SvhnLike => 0x7376_686e,
        Benchmark::Cifar10Like => 0x6369_6661,
    }
}

fn generate_split(benchmark: Benchmark, n: usize, rng: &mut TensorRng, split: &str) -> Dataset {
    let (c, h, w) = benchmark.geometry();
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 10;
        let image = match benchmark {
            Benchmark::MnistLike => digits::render(label, h, w, rng),
            Benchmark::FashionLike => fashion::render(label, h, w, rng),
            Benchmark::SvhnLike => svhn::render(label, h, w, rng),
            Benchmark::Cifar10Like => cifar::render(label, h, w, rng),
        };
        debug_assert_eq!(image.shape(), &[c, h, w]);
        samples.push(Sample { image, label });
    }
    // Shuffle so minibatches are class-mixed.
    let perm = rng.permutation(n);
    let samples: Vec<Sample> = perm.into_iter().map(|i| samples[i].clone()).collect();
    Dataset {
        name: format!("{}-{split}", benchmark.name()),
        channels: c,
        height: h,
        width: w,
        num_classes: 10,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_valid_data() {
        for b in Benchmark::all() {
            let pair = generate(
                b,
                &GenerateConfig {
                    train: 20,
                    test: 10,
                    seed: 3,
                },
            );
            let (c, h, w) = b.geometry();
            assert_eq!(pair.train.len(), 20);
            assert_eq!(pair.test.len(), 10);
            for s in pair.train.iter().chain(pair.test.iter()) {
                assert_eq!(s.image.shape(), &[c, h, w]);
                assert!(s.image.all_finite());
                assert!(s.label < 10);
                // Pixels normalized to [0, 1].
                assert!(s.image.min_value() >= 0.0 && s.image.max_value() <= 1.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenerateConfig {
            train: 12,
            test: 4,
            seed: 42,
        };
        let a = generate(Benchmark::Cifar10Like, &cfg);
        let b = generate(Benchmark::Cifar10Like, &cfg);
        assert_eq!(a.train.samples[0].image, b.train.samples[0].image);
        assert_eq!(a.test.samples[3].label, b.test.samples[3].label);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 10,
                test: 1,
                seed: 1,
            },
        );
        let b = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 10,
                test: 1,
                seed: 2,
            },
        );
        assert_ne!(a.train.samples[0].image, b.train.samples[0].image);
    }

    #[test]
    fn labels_are_balanced() {
        let pair = generate(
            Benchmark::FashionLike,
            &GenerateConfig {
                train: 100,
                test: 0,
                seed: 5,
            },
        );
        let mut counts = [0usize; 10];
        for s in pair.train.iter() {
            counts[s.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn same_class_samples_vary() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 40,
                test: 0,
                seed: 6,
            },
        );
        let zeros: Vec<_> = pair.train.iter().filter(|s| s.label == 0).collect();
        assert!(zeros.len() >= 2);
        assert_ne!(zeros[0].image, zeros[1].image, "per-sample jitter expected");
    }

    #[test]
    fn benchmark_names_are_stable() {
        assert_eq!(Benchmark::MnistLike.to_string(), "mnist-like");
        assert_eq!(Benchmark::Cifar10Like.name(), "cifar10-like");
    }
}
