//! Fully-connected capsule layer with dynamic routing (the `DigitCaps` of
//! CapsNet / `ClassCaps` of DeepCaps).

use redcane_nn::Param;
use redcane_tensor::{Tensor, TensorRng};

use crate::inject::{Injector, OpKind, OpSite};
use crate::routing::{dynamic_routing, dynamic_routing_backward, RoutingCache};

/// Maps `I` input capsules of dimension `D_in` to `J` class capsules of
/// dimension `D_out` through per-pair transformation matrices and
/// routing-by-agreement.
///
/// The transformation weight is `[I, J, D_out, D_in]`; vote
/// `û_{j|i} = W_ij · u_i` (a matrix–vector MAC per capsule pair).
#[derive(Debug, Clone)]
pub struct ClassCaps {
    weight: Param,
    i_caps: usize,
    j_caps: usize,
    d_in: usize,
    d_out: usize,
    iterations: usize,
    layer_index: usize,
    name: String,
    cache: Option<(Tensor, RoutingCache)>,
}

impl ClassCaps {
    /// Creates the layer with Xavier-style vote-matrix initialization.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        layer_index: usize,
        name: impl Into<String>,
        i_caps: usize,
        j_caps: usize,
        d_in: usize,
        d_out: usize,
        iterations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let a = (6.0 / (d_in + d_out) as f32).sqrt();
        let weight = rng.uniform(&[i_caps, j_caps, d_out, d_in], -a, a);
        ClassCaps {
            weight: Param::new(weight),
            i_caps,
            j_caps,
            d_in,
            d_out,
            iterations,
            layer_index,
            name: name.into(),
            cache: None,
        }
    }

    /// The layer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(input capsules, class capsules, d_in, d_out)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.i_caps, self.j_caps, self.d_in, self.d_out)
    }

    /// Immutable weight access.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Replaces the weight (model loading).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_weight(&mut self, weight: Tensor) {
        assert_eq!(weight.shape(), self.weight.value.shape());
        self.weight.value = weight;
    }

    /// Forward pass: `u` is `[I, D_in]`; returns class capsules
    /// `[J, D_out]`.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward(&mut self, u: &Tensor, injector: &mut dyn Injector) -> Tensor {
        assert_eq!(u.shape(), [self.i_caps, self.d_in], "ClassCaps input");
        if injector.observes_inputs() {
            let mut copy = u.clone();
            injector.inject(
                &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacInput),
                &mut copy,
            );
        }
        // Votes û_{j|i} = W_ij u_i  ->  [I, J, D_out, P=1]
        let wd = self.weight.value.data();
        let ud = u.data();
        let mut votes = vec![0.0f32; self.i_caps * self.j_caps * self.d_out];
        for i in 0..self.i_caps {
            for j in 0..self.j_caps {
                for do_ in 0..self.d_out {
                    let wrow = ((i * self.j_caps + j) * self.d_out + do_) * self.d_in;
                    let mut acc = 0.0f32;
                    for di in 0..self.d_in {
                        acc += wd[wrow + di] * ud[i * self.d_in + di];
                    }
                    votes[(i * self.j_caps + j) * self.d_out + do_] = acc;
                }
            }
        }
        let mut votes =
            Tensor::from_vec(votes, &[self.i_caps, self.j_caps, self.d_out, 1]).expect("sized");
        injector.inject(
            &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacOutput),
            &mut votes,
        );
        let cache = dynamic_routing(
            votes,
            self.iterations,
            self.layer_index,
            &self.name,
            injector,
        );
        let v = cache
            .v
            .reshape(&[self.j_caps, self.d_out])
            .expect("drop P=1");
        self.cache = Some((u.clone(), cache));
        v
    }

    /// Backward pass: `dv` is `[J, D_out]`; returns `du` (`[I, D_in]`) and
    /// accumulates the weight gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dv: &Tensor) -> Tensor {
        let (u, cache) = self
            .cache
            .take()
            .expect("ClassCaps::backward before forward");
        let dv3 = dv
            .reshape(&[self.j_caps, self.d_out, 1])
            .expect("restore P=1");
        let dvotes = dynamic_routing_backward(&cache, &dv3);
        let dvd = dvotes.data();
        let wd = self.weight.value.data();
        let ud = u.data();
        let mut dw = vec![0.0f32; wd.len()];
        let mut du = vec![0.0f32; ud.len()];
        for i in 0..self.i_caps {
            for j in 0..self.j_caps {
                for do_ in 0..self.d_out {
                    let g = dvd[(i * self.j_caps + j) * self.d_out + do_];
                    if g == 0.0 {
                        continue;
                    }
                    let wrow = ((i * self.j_caps + j) * self.d_out + do_) * self.d_in;
                    for di in 0..self.d_in {
                        dw[wrow + di] += g * ud[i * self.d_in + di];
                        du[i * self.d_in + di] += g * wd[wrow + di];
                    }
                }
            }
        }
        self.weight
            .accumulate(&Tensor::from_vec(dw, self.weight.value.shape()).expect("sized"));
        Tensor::from_vec(du, &[self.i_caps, self.d_in]).expect("sized")
    }

    /// Trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};

    #[test]
    fn forward_shape_and_bounded_lengths() {
        let mut rng = TensorRng::from_seed(140);
        let mut layer = ClassCaps::new(2, "ClassCaps", 12, 10, 4, 8, 3, &mut rng);
        let u = rng.uniform(&[12, 4], -1.0, 1.0);
        let v = layer.forward(&u, &mut NoInjection);
        assert_eq!(v.shape(), &[10, 8]);
        for j in 0..10 {
            let n: f32 = (0..8)
                .map(|d| v.get(&[j, d]).unwrap().powi(2))
                .sum::<f32>()
                .sqrt();
            assert!(n < 1.0);
        }
    }

    #[test]
    fn taps_cover_all_four_groups() {
        let mut rng = TensorRng::from_seed(141);
        let mut layer = ClassCaps::new(7, "ClassCaps", 6, 4, 3, 4, 3, &mut rng);
        let u = rng.uniform(&[6, 3], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = layer.forward(&u, &mut rec);
        for kind in OpKind::injectable() {
            assert!(
                rec.visits.iter().any(|s| s.kind == kind),
                "missing tap {kind}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences_on_input() {
        // The routing backward is exact, so the analytic input gradient
        // must match central differences of the full routed loss
        // coordinate-wise.
        let mut rng = TensorRng::from_seed(142);
        let mut layer = ClassCaps::new(0, "CC", 5, 3, 4, 4, 3, &mut rng);
        let u = rng.uniform(&[5, 4], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 4], -1.0, 1.0);

        layer.params_mut()[0].zero_grad();
        let _ = layer.forward(&u, &mut NoInjection);
        let du = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        assert!(wgrad.sq_norm() > 0.0);

        let loss = |layer: &mut ClassCaps, u: &Tensor| -> f32 {
            layer
                .forward(u, &mut NoInjection)
                .mul(&coeffs)
                .unwrap()
                .sum()
        };
        let eps = 5e-3f32;
        for idx in 0..u.len() {
            let mut up = u.clone();
            up.data_mut()[idx] += eps;
            let mut um = u.clone();
            um.data_mut()[idx] -= eps;
            let num = (loss(&mut layer, &up) - loss(&mut layer, &um)) / (2.0 * eps);
            let ana = du.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "du[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(143);
        let mut layer = ClassCaps::new(0, "CC", 4, 3, 3, 3, 1, &mut rng);
        // With a single routing iteration the coefficients are constants
        // (uniform), so the detached gradient is exact.
        let u = rng.uniform(&[4, 3], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 3], -1.0, 1.0);
        layer.params_mut()[0].zero_grad();
        let _ = layer.forward(&u, &mut NoInjection);
        let _ = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 17, 52, 89, 107] {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp = layer
                .forward(&u, &mut NoInjection)
                .mul(&coeffs)
                .unwrap()
                .sum();
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm = layer
                .forward(&u, &mut NoInjection)
                .mul(&coeffs)
                .unwrap()
                .sum();
            layer.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = wgrad.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dW[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = TensorRng::from_seed(144);
        let mut layer = ClassCaps::new(0, "CC", 2, 2, 2, 2, 1, &mut rng);
        let _ = layer.backward(&Tensor::zeros(&[2, 2]));
    }
}
