//! Workspace lint driver: `cargo run -p redcane-bench --bin lint`.
//!
//! Runs `redcane-lint` over every `crates/**/src/**.rs` file with the
//! rules configured in the workspace-root `lint-allow.toml`, prints
//! findings as `file:line: rule — message`, and exits nonzero on any
//! finding. CI runs this as the "Workspace lint" step before the
//! build matrix.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let start = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let Some(root) = redcane_lint::find_root(&start) else {
        eprintln!(
            "lint: no lint-allow.toml found walking up from {} — run from the workspace",
            start.display()
        );
        return ExitCode::FAILURE;
    };
    match redcane_lint::run(&root) {
        Ok(0) => {
            println!("redcane-lint: workspace clean (rules R1–R5)");
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::FAILURE
        }
    }
}
