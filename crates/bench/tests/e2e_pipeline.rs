//! Workspace-level integration test: the tiny end-to-end ReD-CaNe
//! pipeline, run deterministically from a fixed seed through the same
//! code path as the `pipeline` binary.

use redcane::report::json;
use redcane::Group;
use redcane_bench::{outcome_to_json, outcome_to_json_stable, run_pipeline, PipelineConfig};
use redcane_datasets::Benchmark;

fn tiny_config() -> PipelineConfig {
    PipelineConfig {
        benchmark: Benchmark::MnistLike,
        train: 120,
        test: 40,
        seed: 77,
        epochs: 3,
        batch_size: 16,
        lr: 2e-3,
        nm_values: vec![0.5, 0.05, 0.005],
        max_test_samples: Some(25),
        threads: 4,
        characterization_samples: 2000,
        calib_samples: 16,
        artifacts: None,
    }
}

#[test]
fn pipeline_runs_end_to_end_and_is_deterministic() {
    let cfg = tiny_config();
    let outcome = run_pipeline(&cfg);

    // The model trained above chance (10 classes).
    assert!(
        outcome.test_accuracy > 0.2,
        "test accuracy {}",
        outcome.test_accuracy
    );

    // Step 1 found all four operation groups of Table III.
    assert_eq!(outcome.report.inventory.sites.len(), 4);
    for group in Group::all() {
        assert!(
            !outcome.report.inventory.group_layers(group).is_empty(),
            "group {group} has no layers"
        );
    }

    // Step 2 swept every group over the requested grid.
    assert_eq!(outcome.report.group_sweep.curves.len(), 4);
    for curve in &outcome.report.group_sweep.curves {
        assert_eq!(curve.points.len(), cfg.nm_values.len());
    }

    // Steps 4/5 covered exactly the non-resilient groups.
    assert_eq!(
        outcome.report.layer_sweeps.len(),
        outcome.report.group_marking.non_resilient().len()
    );

    // Step 6 assigned a component everywhere and validated it.
    assert!(!outcome.report.design.assignments.is_empty());
    assert!(outcome.report.design.baseline_accuracy > 0.0);

    // Same seed, same everything (including across thread counts).
    let mut replay_cfg = cfg.clone();
    replay_cfg.threads = 1;
    let replay = run_pipeline(&replay_cfg);
    assert_eq!(outcome.report, replay.report);
    assert_eq!(outcome.test_accuracy, replay.test_accuracy);
}

/// `REDCANE_THREADS=1` and `REDCANE_THREADS=4` must produce the same
/// pipeline JSON bit for bit. The test drives the same knob through
/// `par::set_threads` (the runtime override the env var feeds), which —
/// unlike mutating the process environment — is race-free under the
/// multi-threaded test harness.
#[test]
fn pipeline_json_is_bitwise_identical_across_worker_counts() {
    let cfg = PipelineConfig {
        train: 60,
        test: 20,
        epochs: 1,
        characterization_samples: 500,
        max_test_samples: Some(10),
        nm_values: vec![0.5, 0.005],
        ..tiny_config()
    };
    redcane_tensor::par::set_threads(1);
    let one = outcome_to_json_stable(&run_pipeline(&cfg)).dump();
    redcane_tensor::par::set_threads(4);
    let four = outcome_to_json_stable(&run_pipeline(&cfg)).dump();
    redcane_tensor::par::set_threads(0);
    assert_eq!(one, four, "worker count must not perturb a single bit");
}

#[test]
fn pipeline_json_line_round_trips_and_carries_the_paper_quantities() {
    let outcome = run_pipeline(&tiny_config());
    let line = outcome_to_json(&outcome).dump();
    assert!(!line.contains('\n'));
    let parsed = json::parse(&line).expect("pipeline emits valid JSON");

    // Accuracy drop per group…
    let groups = parsed.get("groups").unwrap().as_arr().unwrap();
    assert_eq!(groups.len(), 4);
    let slugs: Vec<&str> = groups
        .iter()
        .map(|g| g.get("group").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        slugs,
        ["mac_outputs", "activations", "softmax", "logits_update"]
    );
    for g in groups {
        let drops = g.get("drop_pp").unwrap().as_arr().unwrap();
        assert_eq!(drops.len(), 3);
        assert!(drops.iter().all(|d| d.as_f64().is_some()));
    }

    // …and selected components.
    let components = parsed.get("components").unwrap().as_arr().unwrap();
    assert_eq!(components.len(), outcome.report.design.assignments.len());
    for c in components {
        assert!(c
            .get("component")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("mul8u_"));
        assert!(c.get("power_uw").unwrap().as_f64().unwrap() > 0.0);
    }

    // The marking in the JSON round-trips into the in-memory marking.
    let marking = redcane::report::marking_from_json(parsed.get("marking").unwrap())
        .expect("marking decodes");
    assert_eq!(marking, outcome.report.group_marking);
}
