//! The layer contract shared by all trainable building blocks.

use redcane_tensor::Tensor;

use crate::param::Param;

/// A differentiable building block operating on one sample at a time.
///
/// The protocol is the classic cached-forward / chained-backward pair:
///
/// 1. `forward(x)` computes the output **and stores whatever the backward
///    pass needs** (inputs, pre-activations, unrolled matrices).
/// 2. `backward(grad_out)` consumes the cache, **accumulates** parameter
///    gradients into [`Param::grad`], and returns the gradient with respect
///    to the layer input.
///
/// Calling `backward` before `forward` is a logic error; implementations
/// panic with a clear message.
pub trait Layer {
    /// Computes the layer output for one sample and caches intermediates.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Propagates `grad_out` back through the cached forward pass,
    /// accumulating parameter gradients; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Layer::forward`].
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to the layer's trainable parameters (empty for
    /// parameter-free layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}
