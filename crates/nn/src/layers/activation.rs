//! Parameter-free activation layers.

use redcane_tensor::Tensor;

use crate::layer::Layer;

/// ReLU activation (`max(x, 0)`), caching the input sign mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        x.relu()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let mask = self.mask.take().expect("Relu::backward before forward");
        assert_eq!(mask.len(), grad_out.len(), "Relu grad size");
        let data: Vec<f32> = grad_out
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(data, grad_out.shape()).expect("same shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps() {
        let mut relu = Relu::new();
        let y = relu.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let _ = relu.forward(&Tensor::from_slice(&[-1.0, 0.5, 2.0]));
        let dx = relu.backward(&Tensor::from_slice(&[10.0, 10.0, 10.0]));
        assert_eq!(dx.data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient choice at 0: we use 0.
        let mut relu = Relu::new();
        let _ = relu.forward(&Tensor::from_slice(&[0.0]));
        let dx = relu.backward(&Tensor::from_slice(&[5.0]));
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        let _ = relu.backward(&Tensor::zeros(&[1]));
    }

    #[test]
    fn has_no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
    }
}
