//! The `serve` bench mode: open-loop serving load against
//! `redcane-serve`'s dynamic batcher, for both of the paper's
//! architectures under several datapath assignments.
//!
//! Each architecture is trained (or restored — the trained-artifact
//! key is shared with the `qdp`/`faults` benches, so CI's cached qdp
//! artifacts warm this bench without retraining), lowered once, and
//! served under up to three assignments:
//!
//! - **exact** — the exact multiplier at every site (baseline);
//! - **cheapest** — the lowest-power library component other than the
//!   exact one, uniformly;
//! - **step6** — the ReD-CaNe methodology's winning heterogeneous
//!   per-layer design, re-derived exactly as the `qdp` bench does
//!   (same seeds, same distribution), then served.
//!
//! A seeded open-loop client load drives the engine: the request
//! stream (per-request model, eval-pool sample and arrival offset) is
//! a pure function of the seed and the architecture identity, fanned
//! out over concurrent client threads that sleep until each request's
//! arrival time. Responses report per-request latency; the bench
//! aggregates p50/p99/max latency, throughput, batch statistics and
//! queue depth per (arch × assignment).
//!
//! **Stable vs volatile fields.** Batching and worker count never
//! change arithmetic, so request counts, correctness, accuracy and
//! the per-assignment prediction checksum are byte-identical at every
//! `REDCANE_THREADS` setting and batcher timing; latency, throughput,
//! batch composition and queue depth are measurements of this
//! particular run. [`serve_to_json_lines_stable`] strips the volatile
//! fields ([`VOLATILE_ROW_KEYS`]) so CI can `cmp` the rest.

use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use redcane::datapath::DatapathAssignment;
use redcane::faults::mix64;
use redcane::report::json::Value;
use redcane::{MethodologyConfig, RedCaNe, SelectionConfig, SweepConfig};
use redcane_artifacts::{load_or_train, ArtifactStore, Provenance};
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::{CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig};
use redcane_datasets::{generate, Benchmark, Dataset, DatasetPair, GenerateConfig};
use redcane_qdp::{QModel, QuantMeasured, QuantRanges};
use redcane_serve::{Engine, Response, ServeConfig};
use redcane_tensor::{par, TensorRng};
use redcane_trace as trace;

use crate::qdp::{operand_distribution, QdpArch, TrainKnobs};

/// The exact multiplier: the baseline assignment, and what "cheapest"
/// is defined against.
const EXACT_COMPONENT: &str = "mul8u_1JFF";

/// Configuration of a `serve` bench run; the request stream and every
/// stable output field are fully determined by these fields.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Which benchmark family to synthesize.
    pub benchmark: Benchmark,
    /// Master seed (dataset, init, training, request stream).
    pub seed: u64,
    /// Architectures to serve, in output order.
    pub archs: Vec<QdpArch>,
    /// Training samples to generate.
    pub train: usize,
    /// Test samples to generate.
    pub test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Clean training inputs swept through the float network to
    /// calibrate the quantization ranges.
    pub calib_samples: usize,
    /// Samples per component characterization (step6 selection).
    pub characterization_samples: usize,
    /// Size of the eval pool requests draw their inputs (and ground
    /// truth labels) from.
    pub eval_samples: usize,
    /// Requests per architecture's serving session.
    pub requests: usize,
    /// Concurrent client threads feeding the queue.
    pub clients: usize,
    /// Worker threads executing batches (`None` = the
    /// `redcane_tensor::par` thread count).
    pub workers: Option<usize>,
    /// Batch-size ceiling per cut.
    pub max_batch: usize,
    /// Adaptive batching deadline in microseconds; `None` selects
    /// fill-only batching (deterministic batch composition — what the
    /// CI counter comparison relies on).
    pub max_wait_us: Option<u64>,
    /// Mean open-loop arrival rate, requests per second (arrival gaps
    /// are seeded uniform draws with this mean).
    pub arrival_rate_rps: f64,
    /// Also serve the Step-6 heterogeneous design (runs the full
    /// methodology per architecture — the expensive assignment).
    pub step6: bool,
    /// Trained-artifact store directory (shared with the `qdp` and
    /// `faults` benches); `None` disables the store.
    pub artifacts: Option<PathBuf>,
}

impl ServeBenchConfig {
    /// The full seeded run: both architectures under all three
    /// assignments, models trained well above chance. Training knobs
    /// match `QdpConfig::smoke()`, so the artifact key is shared.
    pub fn smoke() -> Self {
        ServeBenchConfig {
            benchmark: Benchmark::MnistLike,
            seed: 1,
            archs: vec![QdpArch::CapsNet, QdpArch::DeepCaps],
            train: 600,
            test: 150,
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            calib_samples: 64,
            characterization_samples: 4000,
            eval_samples: 40,
            requests: 96,
            clients: 4,
            workers: None,
            max_batch: 8,
            max_wait_us: None,
            arrival_rate_rps: 2000.0,
            step6: true,
            artifacts: None,
        }
    }

    /// CI-sized: scaled-down training matching `QdpConfig::quick()` —
    /// so CI's qdp-trained artifacts warm this bench — exact and
    /// cheapest assignments only (the methodology run is the one
    /// expensive, already-qdp-covered stage).
    pub fn quick() -> Self {
        ServeBenchConfig {
            train: 200,
            test: 60,
            epochs: 3,
            calib_samples: 32,
            characterization_samples: 2000,
            eval_samples: 30,
            requests: 48,
            clients: 2,
            max_batch: 4,
            step6: false,
            ..ServeBenchConfig::smoke()
        }
    }
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig::smoke()
    }
}

/// Latency summary over one assignment's responses, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst latency.
    pub max_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
}

impl LatencySummary {
    /// Nearest-rank percentiles over the (unsorted) latencies.
    fn over(latencies: &[Duration]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |q: f64| ms[((ms.len() - 1) as f64 * q).round() as usize];
        LatencySummary {
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            max_ms: *ms.last().expect("non-empty"),
            mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
        }
    }
}

/// One served (architecture × assignment)'s results.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentServed {
    /// Assignment label: `exact`, `cheapest` or `step6`.
    pub label: String,
    /// The component served uniformly, or `heterogeneous` for the
    /// Step-6 per-layer design.
    pub component: String,
    /// Requests routed to this assignment by the seeded stream.
    pub requests: usize,
    /// Responses matching the eval pool's ground-truth label.
    pub correct: usize,
    /// FNV-1a over `(request index, prediction)` in stream order —
    /// the bit-for-bit determinism witness CI compares across thread
    /// counts.
    pub prediction_checksum: u64,
    /// Latency summary (volatile).
    pub latency: LatencySummary,
    /// Requests per second over the serving session (volatile).
    pub throughput_rps: f64,
    /// Batches the workers executed for this assignment (volatile
    /// under adaptive batching).
    pub batches: u64,
    /// Mean batch size (volatile under adaptive batching).
    pub mean_batch: f64,
    /// Largest batch executed (volatile under adaptive batching).
    pub max_batch_observed: u64,
}

impl AssignmentServed {
    /// Fraction of this assignment's responses that were correct.
    pub fn accuracy(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.correct as f64 / self.requests as f64
        }
    }
}

/// One architecture's serving session.
#[derive(Debug, Clone)]
pub struct ServeArchOutcome {
    /// The architecture served.
    pub arch: QdpArch,
    /// Model display name.
    pub model_name: String,
    /// Per-assignment results, in assignment order.
    pub assignments: Vec<AssignmentServed>,
    /// Worker threads the session ran with.
    pub workers: usize,
    /// Mean queue depth sampled at every enqueue.
    pub queue_depth_mean: f64,
    /// Peak queue depth sampled at any enqueue.
    pub queue_depth_max: usize,
    /// Serving-session wall-clock seconds (submit through drain).
    pub serve_s: f64,
    /// Trained this run or restored from the artifact store. Not part
    /// of the JSON schema: cold and warm runs must emit byte-identical
    /// stable fields.
    pub provenance: Provenance,
}

/// The result of one full `serve` bench run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The configuration that produced it.
    pub config: ServeBenchConfig,
    /// One session per configured architecture, in `config.archs`
    /// order.
    pub archs: Vec<ServeArchOutcome>,
    /// Serving seconds summed over sessions — the `--budget-s`
    /// tripwire metric (training/restore time excluded, so cold and
    /// warm CI runs trip identically).
    pub serve_s: f64,
    /// Total wall-clock seconds including training/restore.
    pub total_s: f64,
}

/// One request of the seeded open-loop stream.
struct RequestSpec {
    /// Served-model index.
    model: usize,
    /// Eval-pool sample index (input and ground truth).
    sample: usize,
    /// Open-loop arrival offset from session start, microseconds.
    arrival_us: u64,
}

/// The seeded stream: model routing, eval-pool sample and arrival
/// offset per request — a pure function of `(seed, arch, request)`,
/// never of timing, so the stable fields survive any scheduling.
fn request_stream(
    cfg: &ServeBenchConfig,
    arch: QdpArch,
    models: usize,
    pool: usize,
) -> Vec<RequestSpec> {
    let mean_gap_us = (1e6 / cfg.arrival_rate_rps.max(1e-3)) as u64;
    let mut arrival_us = 0u64;
    (0..cfg.requests as u64)
        .map(|r| {
            let tag = arch.seed_tag();
            arrival_us += mix64(cfg.seed ^ 0x5e12_4a11, tag, r) % (2 * mean_gap_us + 1);
            RequestSpec {
                model: (mix64(cfg.seed ^ 0x5e12_0001, tag, r) % models as u64) as usize,
                sample: (mix64(cfg.seed ^ 0x5e12_0002, tag, r) % pool as u64) as usize,
                arrival_us,
            }
        })
        .collect()
}

/// FNV-1a fold of one `(request, prediction)` pair.
fn fnv_fold(hash: u64, request: u64, prediction: u64) -> u64 {
    let mut h = hash;
    for b in request
        .to_le_bytes()
        .into_iter()
        .chain(prediction.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs dataset generation → training (or restore) → engine
/// construction → one open-loop serving session per architecture.
/// Every stable field derives only from the seed and the architecture
/// identity — never from worker count, client interleaving or batcher
/// timing.
///
/// # Panics
///
/// Panics on empty train/test/eval/request/client/arch settings or a
/// zero `max_batch`.
pub fn run_serve(cfg: &ServeBenchConfig) -> ServeOutcome {
    assert!(cfg.train > 0, "serve needs training samples");
    assert!(
        cfg.test > 0 && cfg.eval_samples > 0,
        "serve needs an eval pool"
    );
    assert!(cfg.requests > 0, "serve needs requests");
    assert!(cfg.clients > 0, "serve needs client threads");
    assert!(cfg.max_batch > 0, "serve needs a batch ceiling");
    assert!(
        !cfg.archs.is_empty(),
        "serve needs at least one architecture"
    );
    let t0 = Instant::now();

    let pair = generate(
        cfg.benchmark,
        &GenerateConfig {
            train: cfg.train,
            test: cfg.test,
            seed: cfg.seed,
        },
    );
    let library = MultiplierLibrary::evo_approx_like();
    let luts = LutCache::tabulate_all(&library);
    let (channels, height, _) = cfg.benchmark.geometry();
    let store = cfg.artifacts.as_ref().map(ArtifactStore::new);

    let archs: Vec<ServeArchOutcome> = cfg
        .archs
        .iter()
        .map(|&arch| {
            // Same per-arch init seed as the qdp/faults benches: the
            // shared artifact key must describe the same trained model.
            let mut rng = TensorRng::from_seed(
                cfg.seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(7 + arch.seed_tag()),
            );
            match arch {
                QdpArch::CapsNet => {
                    let model = CapsNet::new(&CapsNetConfig::small(channels, height), &mut rng);
                    serve_arch(cfg, arch, model, &pair, &library, &luts, store.as_ref())
                }
                QdpArch::DeepCaps => {
                    let model = DeepCaps::new(&DeepCapsConfig::small(channels, height), &mut rng);
                    serve_arch(cfg, arch, model, &pair, &library, &luts, store.as_ref())
                }
            }
        })
        .collect();

    ServeOutcome {
        config: cfg.clone(),
        serve_s: archs.iter().map(|a| a.serve_s).sum(),
        archs,
        total_s: t0.elapsed().as_secs_f64(),
    }
}

/// The assignments one architecture serves: `(label, component,
/// assignment)` — exact, cheapest, and (optionally) the Step-6 design.
#[allow(clippy::too_many_arguments)]
fn build_assignments<M: CapsModel + Clone + Send + Sync + 'static>(
    cfg: &ServeBenchConfig,
    arch: QdpArch,
    model: &M,
    eval: &Dataset,
    qmodel: &QModel,
    activation_codes: Vec<u8>,
    library: &MultiplierLibrary,
    luts: &LutCache,
) -> Vec<(String, String, DatapathAssignment)> {
    let cheapest = library
        .iter()
        .filter(|e| e.name() != EXACT_COMPONENT)
        .min_by(|a, b| {
            a.cost()
                .power_uw
                .partial_cmp(&b.cost().power_uw)
                .expect("finite power")
        })
        .expect("library has more than one component")
        .name()
        .to_string();
    let mut out = vec![
        (
            "exact".to_string(),
            EXACT_COMPONENT.to_string(),
            DatapathAssignment::uniform(EXACT_COMPONENT),
        ),
        (
            "cheapest".to_string(),
            cheapest.clone(),
            DatapathAssignment::uniform(&cheapest),
        ),
    ];
    if cfg.step6 {
        // Re-derive the qdp bench's Step-6 design: same seeds, same
        // empirical operand distribution, same measured re-score — the
        // serving engine then runs what the methodology selected.
        let _s = trace::span("methodology");
        let dist = operand_distribution(activation_codes, qmodel);
        let measured = QuantMeasured::new(qmodel.clone(), luts.clone());
        let methodology = RedCaNe::with_library(
            MethodologyConfig {
                sweep: SweepConfig {
                    nm_values: vec![0.5, 0.05, 0.005],
                    na: 0.0,
                    seed: cfg.seed ^ 0x6e01 ^ (arch.seed_tag() << 16),
                    max_test_samples: None,
                    threads: par::num_threads(),
                },
                selection: SelectionConfig {
                    characterization_samples: cfg.characterization_samples,
                    seed: cfg.seed ^ 0xc0de,
                    ..Default::default()
                },
                input_distribution: Some(dist),
            },
            library.clone(),
        );
        let design = methodology.run_with_measured(model, eval, &measured).design;
        out.push((
            "step6".to_string(),
            "heterogeneous".to_string(),
            DatapathAssignment::from_design(&design),
        ));
    }
    out
}

/// Trains (or restores), lowers once, builds the engine, and runs one
/// architecture's open-loop serving session.
fn serve_arch<M: CapsModel + Clone + Send + Sync + 'static>(
    cfg: &ServeBenchConfig,
    arch: QdpArch,
    mut model: M,
    pair: &DatasetPair,
    library: &MultiplierLibrary,
    luts: &LutCache,
    store: Option<&ArtifactStore>,
) -> ServeArchOutcome {
    let _arch_span = trace::span(arch.label());
    let knobs = TrainKnobs {
        benchmark: cfg.benchmark,
        seed: cfg.seed,
        train: cfg.train,
        test: cfg.test,
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        calib_samples: cfg.calib_samples,
        characterization_samples: cfg.characterization_samples,
        library,
    };
    let key = knobs.key(arch);
    let (payload, provenance) = {
        let _s = trace::span("train");
        load_or_train(store, &key, &mut model, |m| knobs.produce(m, pair))
    };

    let eval = pair.test.take(cfg.eval_samples);
    let ranges = QuantRanges::from_entries(&payload.ranges);
    let qmodel = QModel::lower(&model, &ranges).expect("every site calibrated");
    let assignments = build_assignments(
        cfg,
        arch,
        &model,
        &eval,
        &qmodel,
        payload.activation_codes.clone(),
        library,
        luts,
    );
    let specs = assignments
        .iter()
        .map(|(label, _, assignment)| (label.clone(), qmodel.clone(), assignment.clone()))
        .collect();
    let engine = Engine::new(specs, luts).expect("library components resolve");
    let workers = cfg.workers.unwrap_or_else(par::num_threads).max(1);
    eprintln!(
        "[serve] {} {} — serving {} assignment(s) × {} request(s), {} client(s), {} worker(s)",
        provenance.label(),
        model.name(),
        engine.models(),
        cfg.requests,
        cfg.clients,
        workers
    );

    let stream = request_stream(cfg, arch, engine.models(), eval.len());
    let serve_config = ServeConfig {
        workers,
        max_batch: cfg.max_batch,
        max_wait: cfg.max_wait_us.map(Duration::from_micros),
    };
    // Per-request reply channels, collected with their stream index so
    // the drain below reassociates responses with what was asked —
    // independently of the (timing-dependent) enqueue order.
    let replies: Mutex<Vec<(usize, Receiver<Response>)>> = Mutex::new(Vec::new());
    let depths: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let t_serve = Instant::now();
    let ((), stats) = engine.serve(&serve_config, |submitter| {
        let _session_span = trace::span("serve_session");
        let start = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..cfg.clients {
                let (replies, depths, stream, eval) = (&replies, &depths, &stream, &eval);
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut seen_depths = Vec::new();
                    for (r, spec) in stream
                        .iter()
                        .enumerate()
                        .filter(|(r, _)| r % cfg.clients == client)
                    {
                        // Open loop: submit at the request's arrival
                        // time no matter how the queue is doing.
                        let due = Duration::from_micros(spec.arrival_us);
                        if let Some(wait) = due.checked_sub(start.elapsed()) {
                            if !wait.is_zero() {
                                std::thread::sleep(wait);
                            }
                        }
                        let (tx, rx) = channel();
                        let (_seq, depth) = submitter.submit_with(
                            spec.model,
                            eval.samples[spec.sample].image.clone(),
                            tx,
                        );
                        mine.push((r, rx));
                        seen_depths.push(depth);
                    }
                    replies.lock().expect("replies poisoned").extend(mine);
                    depths.lock().expect("depths poisoned").extend(seen_depths);
                    // Clients count ServeRequests; push the buffered
                    // counts out before the scope unblocks.
                    trace::flush();
                });
            }
        });
    });
    // Workers have joined: every response is buffered in its channel.
    let mut responses: Vec<(usize, Response)> = replies
        .into_inner()
        .expect("replies poisoned")
        .into_iter()
        .map(|(r, rx)| (r, rx.recv().expect("response for every request")))
        .collect();
    let serve_s = t_serve.elapsed().as_secs_f64();
    responses.sort_by_key(|(r, _)| *r);

    let mut per_model: Vec<(usize, usize, u64, Vec<Duration>)> =
        vec![(0, 0, 0xcbf2_9ce4_8422_2325u64, Vec::new()); engine.models()];
    for (r, response) in &responses {
        let spec = &stream[*r];
        assert_eq!(response.model, spec.model, "response routed to wrong model");
        let slot = &mut per_model[spec.model];
        slot.0 += 1;
        if response.prediction == eval.samples[spec.sample].label {
            slot.1 += 1;
        }
        slot.2 = fnv_fold(slot.2, *r as u64, response.prediction as u64);
        slot.3.push(response.latency);
    }

    let served: Vec<AssignmentServed> = assignments
        .iter()
        .enumerate()
        .map(|(m, (label, component, _))| {
            let (requests, correct, checksum, latencies) = &per_model[m];
            let model_stats = &stats.per_model[m];
            AssignmentServed {
                label: label.clone(),
                component: component.clone(),
                requests: *requests,
                correct: *correct,
                prediction_checksum: *checksum,
                latency: LatencySummary::over(latencies),
                throughput_rps: *requests as f64 / serve_s.max(1e-9),
                batches: model_stats.batches,
                mean_batch: if model_stats.batches == 0 {
                    0.0
                } else {
                    model_stats.items as f64 / model_stats.batches as f64
                },
                max_batch_observed: model_stats.max_batch,
            }
        })
        .collect();
    for row in &served {
        eprintln!(
            "[serve] {} {:<8} {} req  acc {:.3}  p50 {:.3} ms  p99 {:.3} ms  {:.0} rps  mean batch {:.2}",
            arch.label(),
            row.label,
            row.requests,
            row.accuracy(),
            row.latency.p50_ms,
            row.latency.p99_ms,
            row.throughput_rps,
            row.mean_batch
        );
    }

    let depths = depths.into_inner().expect("depths poisoned");
    ServeArchOutcome {
        arch,
        model_name: model.name(),
        assignments: served,
        workers,
        queue_depth_mean: if depths.is_empty() {
            0.0
        } else {
            depths.iter().sum::<usize>() as f64 / depths.len() as f64
        },
        queue_depth_max: depths.iter().copied().max().unwrap_or(0),
        serve_s,
        provenance,
    }
}

/// Per-row fields that legitimately differ between otherwise-identical
/// runs (latency, throughput, batch composition, queue depth, worker
/// count, wall clock). [`serve_to_json_lines_stable`] strips exactly
/// these.
pub const VOLATILE_ROW_KEYS: [&str; 12] = [
    "workers",
    "p50_ms",
    "p99_ms",
    "max_ms",
    "mean_ms",
    "throughput_rps",
    "batches",
    "mean_batch",
    "max_batch_observed",
    "queue_depth_mean",
    "queue_depth_max",
    "serve_s",
];

/// Serializes one (architecture × assignment) as a self-contained JSON
/// line.
pub fn serve_row_to_json(
    cfg: &ServeBenchConfig,
    arch: &ServeArchOutcome,
    row: &AssignmentServed,
) -> Value {
    Value::Obj(vec![
        ("bench".into(), Value::from("serve")),
        ("schema_version".into(), Value::from(1usize)),
        ("row".into(), Value::from("assignment")),
        ("benchmark".into(), Value::from(cfg.benchmark.name())),
        // String: u64 seeds above 2^53 would round through a JSON number.
        ("seed".into(), Value::from(cfg.seed.to_string())),
        ("arch".into(), Value::from(arch.arch.label())),
        ("model".into(), Value::from(arch.model_name.clone())),
        ("assignment".into(), Value::from(row.label.clone())),
        ("component".into(), Value::from(row.component.clone())),
        ("max_batch".into(), Value::from(cfg.max_batch)),
        ("adaptive".into(), Value::Bool(cfg.max_wait_us.is_some())),
        ("arrival_rate_rps".into(), Value::from(cfg.arrival_rate_rps)),
        ("clients".into(), Value::from(cfg.clients)),
        ("requests".into(), Value::from(row.requests)),
        ("correct".into(), Value::from(row.correct)),
        ("accuracy".into(), Value::from(row.accuracy())),
        (
            "prediction_checksum".into(),
            Value::from(row.prediction_checksum.to_string()),
        ),
        ("workers".into(), Value::from(arch.workers)),
        ("p50_ms".into(), Value::from(row.latency.p50_ms)),
        ("p99_ms".into(), Value::from(row.latency.p99_ms)),
        ("max_ms".into(), Value::from(row.latency.max_ms)),
        ("mean_ms".into(), Value::from(row.latency.mean_ms)),
        ("throughput_rps".into(), Value::from(row.throughput_rps)),
        ("batches".into(), Value::from(row.batches as usize)),
        ("mean_batch".into(), Value::from(row.mean_batch)),
        (
            "max_batch_observed".into(),
            Value::from(row.max_batch_observed as usize),
        ),
        (
            "queue_depth_mean".into(),
            Value::from(arch.queue_depth_mean),
        ),
        ("queue_depth_max".into(), Value::from(arch.queue_depth_max)),
        ("serve_s".into(), Value::from(arch.serve_s)),
    ])
}

/// All rows of an outcome as JSON lines: architectures in config
/// order, assignments in engine order within each.
pub fn serve_to_json_lines(outcome: &ServeOutcome) -> Vec<Value> {
    outcome
        .archs
        .iter()
        .flat_map(|arch| {
            arch.assignments
                .iter()
                .map(|row| serve_row_to_json(&outcome.config, arch, row))
        })
        .collect()
}

/// The byte-comparable subset: every row with the
/// [`VOLATILE_ROW_KEYS`] stripped — identical at every
/// `REDCANE_THREADS` setting, worker count and batcher timing.
pub fn serve_to_json_lines_stable(outcome: &ServeOutcome) -> Vec<Value> {
    serve_to_json_lines(outcome)
        .iter()
        .map(|line| line.without_keys(&VOLATILE_ROW_KEYS))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::report::json;

    /// Serializes tests that mutate the process-wide thread override.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tiny(archs: Vec<QdpArch>) -> ServeBenchConfig {
        ServeBenchConfig {
            archs,
            train: 60,
            test: 24,
            epochs: 1,
            calib_samples: 8,
            characterization_samples: 500,
            eval_samples: 12,
            requests: 14,
            clients: 2,
            workers: Some(2),
            max_batch: 3,
            // Effectively back-to-back arrivals: gaps of 0–2 µs.
            arrival_rate_rps: 1e6,
            step6: false,
            ..ServeBenchConfig::smoke()
        }
    }

    #[test]
    fn serve_emits_one_row_per_arch_and_assignment() {
        let outcome = run_serve(&tiny(vec![QdpArch::CapsNet, QdpArch::DeepCaps]));
        assert_eq!(outcome.archs.len(), 2);
        let lines = serve_to_json_lines(&outcome);
        assert_eq!(lines.len(), 4, "2 archs × (exact, cheapest)");
        for line in &lines {
            let dumped = line.dump();
            assert!(!dumped.contains('\n'), "one line per row");
            let parsed = json::parse(&dumped).unwrap();
            for key in [
                "bench",
                "schema_version",
                "arch",
                "assignment",
                "component",
                "requests",
                "correct",
                "accuracy",
                "prediction_checksum",
                "p50_ms",
                "p99_ms",
                "max_ms",
                "throughput_rps",
                "mean_batch",
                "queue_depth_max",
            ] {
                assert!(parsed.get(key).is_some(), "missing key {key}");
            }
            assert_eq!(parsed.get("bench").unwrap().as_str().unwrap(), "serve");
            assert_eq!(parsed.get("schema_version").unwrap().as_f64().unwrap(), 1.0);
            let accuracy = parsed.get("accuracy").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&accuracy));
        }
        for arch in &outcome.archs {
            // Every request was answered and attributed.
            let total: usize = arch.assignments.iter().map(|a| a.requests).sum();
            assert_eq!(total, outcome.config.requests);
            assert_eq!(arch.assignments[0].label, "exact");
            assert_eq!(arch.assignments[0].component, EXACT_COMPONENT);
            assert_eq!(arch.assignments[1].label, "cheapest");
            assert_ne!(arch.assignments[1].component, EXACT_COMPONENT);
            assert!(arch.serve_s > 0.0);
        }
    }

    #[test]
    fn step6_adds_the_heterogeneous_design_row() {
        let cfg = ServeBenchConfig {
            step6: true,
            ..tiny(vec![QdpArch::CapsNet])
        };
        let outcome = run_serve(&cfg);
        let rows = &outcome.archs[0].assignments;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].label, "step6");
        assert_eq!(rows[2].component, "heterogeneous");
        let lines = serve_to_json_lines(&outcome);
        assert_eq!(lines.len(), 3);
    }

    /// The acceptance bar for the CI `cmp`: the stable lines are
    /// byte-identical at every thread count (which also changes the
    /// default worker count) — only the volatile keys may move.
    #[test]
    fn stable_lines_are_byte_identical_across_thread_counts() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let cfg = ServeBenchConfig {
            workers: None,
            ..tiny(vec![QdpArch::CapsNet])
        };
        let dump = |threads: usize| {
            par::set_threads(threads);
            let lines: Vec<String> = serve_to_json_lines_stable(&run_serve(&cfg))
                .iter()
                .map(|v| v.dump())
                .collect();
            par::set_threads(0);
            lines.join("\n")
        };
        let serial = dump(1);
        let parallel = dump(3);
        assert_eq!(serial, parallel, "thread count leaked into stable fields");
        for key in VOLATILE_ROW_KEYS {
            assert!(
                !serial.contains(&format!("\"{key}\"")),
                "{key} not stripped"
            );
        }
    }

    /// The artifact-store acceptance bar: a cold (train) run and a
    /// warm (restore) run emit byte-identical stable lines, and both
    /// match a storeless run.
    #[test]
    fn cold_and_warm_runs_give_identical_stable_json() {
        let dir =
            std::env::temp_dir().join(format!("redcane-bench-serve-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeBenchConfig {
            artifacts: Some(dir.clone()),
            ..tiny(vec![QdpArch::CapsNet])
        };
        let dump = |cfg: &ServeBenchConfig| {
            let outcome = run_serve(cfg);
            let lines: Vec<String> = serve_to_json_lines_stable(&outcome)
                .iter()
                .map(|v| v.dump())
                .collect();
            (outcome.archs[0].provenance, lines.join("\n"))
        };
        let (cold_prov, cold) = dump(&cfg);
        assert_eq!(cold_prov, Provenance::Trained);
        let (warm_prov, warm) = dump(&cfg);
        assert_eq!(warm_prov, Provenance::Restored);
        let (uncached_prov, uncached) = dump(&ServeBenchConfig {
            artifacts: None,
            ..cfg.clone()
        });
        assert_eq!(uncached_prov, Provenance::Trained);
        assert_eq!(cold, warm, "restore changed the stable output");
        assert_eq!(cold, uncached, "the store changed the stable output");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
