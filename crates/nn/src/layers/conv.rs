//! Trainable 2-D convolution (im2col forward, col2im backward).

use redcane_tensor::ops::Conv2dSpec;
use redcane_tensor::{Tensor, TensorRng};

use crate::init::{conv_fans, he_normal};
use crate::layer::Layer;
use crate::param::Param;

/// A 2-D convolution layer over `[C_in, H, W]` samples.
///
/// Weight layout is `[C_out, C_in, k, k]`, bias `[C_out]`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    cols: Tensor,
    input_shape: [usize; 3],
    out_hw: [usize; 2],
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics on impossible geometry (`kernel == 0` or `stride == 0`).
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let spec = Conv2dSpec::new(kernel, stride, padding).expect("valid conv geometry");
        let (fan_in, _) = conv_fans(c_out, c_in, kernel);
        let weight = he_normal(&[c_out, c_in, kernel, kernel], fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[c_out])),
            spec,
            c_in,
            c_out,
            cache: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Immutable view of the weights (for analysis/serialization).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Replaces the weights (e.g. when loading a trained model).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn set_weights(&mut self, weight: Tensor, bias: Tensor) {
        assert_eq!(weight.shape(), self.weight.value.shape(), "weight shape");
        assert_eq!(bias.shape(), self.bias.value.shape(), "bias shape");
        self.weight.value = weight;
        self.bias.value = bias;
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 3, "Conv2d expects [C,H,W]");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let cols = x.im2col(self.spec).expect("valid conv input");
        let h_out = self.spec.output_size(h).expect("valid geometry");
        let w_out = self.spec.output_size(w).expect("valid geometry");
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        let w_mat = self
            .weight
            .value
            .reshape(&[self.c_out, k2])
            .expect("weight reshape");
        let mut out = w_mat.matmul(&cols).expect("conv matmul");
        // Add bias per output channel.
        let n = h_out * w_out;
        for co in 0..self.c_out {
            let b = self.bias.value.data()[co];
            if b != 0.0 {
                for v in &mut out.data_mut()[co * n..(co + 1) * n] {
                    *v += b;
                }
            }
        }
        self.cache = Some(Cache {
            cols,
            input_shape: [x.shape()[0], h, w],
            out_hw: [h_out, w_out],
        });
        out.into_reshaped(&[self.c_out, h_out, w_out])
            .expect("conv output reshape")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("Conv2d::backward before forward");
        let [h_out, w_out] = cache.out_hw;
        let n = h_out * w_out;
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        let dy = grad_out
            .reshape(&[self.c_out, n])
            .expect("grad_out shape must match forward output");
        // dW = dY · colsᵀ
        let dw = dy.matmul_nt(&cache.cols).expect("dW");
        self.weight.accumulate(
            &dw.into_reshaped(self.weight.value.shape())
                .expect("dW shape"),
        );
        // db = row sums of dY
        let db = dy.sum_axis(1).expect("db");
        self.bias.accumulate(&db);
        // dX = col2im(Wᵀ · dY)
        let w_mat = self
            .weight
            .value
            .reshape(&[self.c_out, k2])
            .expect("weight reshape");
        let dcols = w_mat.matmul_tn(&dy).expect("dcols");
        let [c, h, w] = cache.input_shape;
        dcols.col2im(c, h, w, self.spec).expect("col2im")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check of the full layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::from_seed(50);
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = rng.uniform(&[2, 5, 5], -1.0, 1.0);
        // Loss = sum of outputs weighted by fixed random coefficients.
        let coeffs = rng.uniform(&[3, 5, 5], -1.0, 1.0);
        let loss = |layer: &mut Conv2d, x: &Tensor| -> f32 {
            layer.forward(x).mul(&coeffs).unwrap().sum()
        };

        // Analytic gradients.
        layer.zero_grad();
        let _ = layer.forward(&x);
        let dx = layer.backward(&coeffs);

        let eps = 1e-2f32;
        // Input gradient.
        for idx in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = dx.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dX[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Weight gradient.
        layer.zero_grad();
        let _ = layer.forward(&x);
        let _ = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        for idx in [0usize, 5, 17, 53] {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = wgrad.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dW[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Bias gradient.
        layer.zero_grad();
        let _ = layer.forward(&x);
        let _ = layer.backward(&coeffs);
        let bgrad = layer.params_mut()[1].grad.clone();
        for idx in 0..3 {
            let orig = layer.bias.value.data()[idx];
            layer.bias.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = bgrad.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "db[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn output_shape_follows_geometry() {
        let mut rng = TensorRng::from_seed(51);
        let mut layer = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let y = layer.forward(&Tensor::zeros(&[3, 16, 16]));
        assert_eq!(y.shape(), &[8, 8, 8]);
    }

    #[test]
    fn gradient_accumulates_over_samples() {
        let mut rng = TensorRng::from_seed(52);
        let mut layer = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        let x = rng.uniform(&[1, 4, 4], -1.0, 1.0);
        let g = Tensor::ones(&[1, 2, 2]);
        layer.zero_grad();
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        let once = layer.params_mut()[0].grad.clone();
        let _ = layer.forward(&x);
        let _ = layer.backward(&g);
        let twice = layer.params_mut()[0].grad.clone();
        for (a, b) in once.data().iter().zip(twice.data()) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = TensorRng::from_seed(53);
        let mut layer = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        let _ = layer.backward(&Tensor::zeros(&[1, 2, 2]));
    }

    #[test]
    fn set_weights_replaces_and_validates() {
        let mut rng = TensorRng::from_seed(54);
        let mut layer = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let b = Tensor::from_slice(&[1.0, -1.0]);
        layer.set_weights(w, b);
        let y = layer.forward(&Tensor::ones(&[1, 3, 3]));
        assert_eq!(y.data(), &[10.0, 8.0]);
    }

    #[test]
    fn param_count_is_correct() {
        let mut rng = TensorRng::from_seed(55);
        let mut layer = Conv2d::new(4, 8, 3, 1, 1, &mut rng);
        assert_eq!(layer.param_count(), 8 * 4 * 9 + 8);
    }
}
