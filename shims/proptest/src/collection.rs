//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec_lengths");
        let exact = vec(0u8..10, 5usize);
        assert_eq!(exact.sample(&mut rng).len(), 5);
        let ranged = vec(0u8..10, 1usize..4);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
