// Fixture: error returns, justified markers, and test modules all
// pass R3.
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn contract(v: Option<u32>) -> u32 {
    // lint: allow(panic) — documented API contract: callers pass Some
    v.expect("documented: callers pass Some")
}

pub fn same_line(v: Option<u32>) -> u32 {
    v.unwrap() // lint: allow(panic) — guarded by the caller's is_some check
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
