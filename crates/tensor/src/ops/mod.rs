//! Tensor operations, grouped by kind.
//!
//! All operations are implemented as inherent methods on
//! [`Tensor`](crate::Tensor); the submodules exist to keep the
//! implementation navigable:
//!
//! - [`gemm`] — the blocked micro-kernels every matrix product lowers to
//! - [`matmul`] — 2-D and batched matrix products
//! - [`conv`] — im2col and 2-D convolution (the MAC workhorse of CapsNets)
//! - [`reduce`] — axis reductions (sum/mean/max) and axis softmax
//! - [`activation`] — ReLU, sigmoid, and the capsule `squash` nonlinearity
//! - [`manip`] — pad, slice, concat, transpose/permute

pub mod activation;
pub mod conv;
pub mod gemm;
pub mod manip;
pub mod matmul;
pub mod reduce;

pub use conv::{conv_output_size, Conv2dSpec};
