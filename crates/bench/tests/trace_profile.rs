//! Property test for the profile's headline guarantee: the stable
//! counter document (`--profile-counters`) is **byte-identical** across
//! worker-thread counts, for both of the paper's architectures. The
//! volatile sections (`meta`, `store`, `train_counters`, `timings`) are
//! redacted through the same `Value::without_keys` mechanism the
//! pipeline's `--no-timings` uses; everything that remains must not
//! move by a single byte when the thread count changes.

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;
use redcane_bench::profile::{profile_to_json, stable_counters};
use redcane_bench::qdp::{run_qdp, QdpArch, QdpConfig};
use redcane_tensor::par;
use redcane_trace as trace;

/// Memoized stable-counter dumps keyed by `(arch index, threads)`. The
/// proptest's sample space is tiny (2 archs × 3 thread counts), so the
/// cache bounds the number of real `run_qdp` calls at six while the
/// cases still exercise every combination; the lock also serializes
/// the process-global thread override and trace planes.
static DUMPS: Mutex<BTreeMap<(usize, usize), String>> = Mutex::new(BTreeMap::new());

const ARCHS: [QdpArch; 2] = [QdpArch::CapsNet, QdpArch::DeepCaps];

/// A deliberately small sweep — one component, one epoch — so the six
/// distinct `(arch, threads)` runs stay cheap.
fn tiny(arch: QdpArch) -> QdpConfig {
    QdpConfig {
        archs: vec![arch],
        train: 40,
        test: 16,
        epochs: 1,
        calib_samples: 6,
        eval_samples: 8,
        characterization_samples: 200,
        components: Some(vec!["mul8u_1JFF".to_string()]),
        heterogeneous: false,
        ..QdpConfig::smoke()
    }
}

/// The `--profile-counters` document a profiled run at `threads`
/// workers would write, as its exact byte string.
fn stable_dump(arch_idx: usize, threads: usize) -> String {
    let mut cache = DUMPS.lock().unwrap();
    if let Some(hit) = cache.get(&(arch_idx, threads)) {
        return hit.clone();
    }
    par::set_threads(threads);
    trace::reset();
    trace::set_enabled(true);
    let outcome = run_qdp(&tiny(ARCHS[arch_idx]));
    let snap = trace::snapshot();
    trace::set_enabled(false);
    par::set_threads(0);
    assert_eq!(outcome.archs.len(), 1);
    let doc = stable_counters(&profile_to_json("qdp", Vec::new(), snap));
    let dump = format!("{}\n", doc.dump());
    cache.insert((arch_idx, threads), dump.clone());
    dump
}

proptest! {
    /// Any worker count produces the serial run's counter bytes, for
    /// either architecture — the CI `cmp` gate, as a property.
    #[test]
    fn stable_counters_are_byte_identical_across_thread_counts(
        arch_idx in 0usize..2,
        threads in 2usize..5,
    ) {
        let serial = stable_dump(arch_idx, 1);
        let parallel = stable_dump(arch_idx, threads);
        prop_assert_eq!(&serial, &parallel, "arch {} at {} threads", arch_idx, threads);
        // Sanity: the document actually carries work, not just zeros.
        prop_assert!(serial.contains("\"qgemm_macs\":"));
        prop_assert!(!serial.contains("\"timings\""));
    }
}
