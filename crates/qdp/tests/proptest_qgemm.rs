//! Property-based tests pinning the blocked quantized GEMM to its
//! naive reference oracle — bit-identical across shapes (degenerate
//! dims and tile-straddling sizes included) and across multiplier
//! models, exactly as PR 2 pinned the float kernels.

use proptest::prelude::*;
use redcane_axmul::mult::{DrumMultiplier, MitchellLogMultiplier};
use redcane_qdp::kernels::{self, qgemm_nn};
use redcane_qdp::MulLut;

/// Dimensions straddling the register tile (`MR = 4`, `NR = 8`) and
/// the tall-`k` dispatch threshold, degenerate 1s included.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..64).prop_map(|v| match v {
        0 => 1,
        1 => 33,
        2 => 300,
        other => 2 + (other % 16),
    })
}

/// Deterministic code fill (SplitMix-style; no float RNG needed).
fn codes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0xd1b5);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

proptest! {
    /// The blocked kernel must equal the triple loop bit for bit, for
    /// the exact multiplier and for approximate models whose product
    /// table is wildly nonlinear.
    #[test]
    fn blocked_qgemm_matches_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..500) {
        let luts = [
            MulLut::exact(),
            MulLut::tabulate(&MitchellLogMultiplier::new()),
            MulLut::tabulate(&DrumMultiplier::new(3)),
        ];
        let a = codes(seed, m * k);
        let b = codes(seed ^ 0xabcd, k * n);
        for lut in &luts {
            let mut fast = vec![0u32; m * n];
            let mut naive = vec![0u32; m * n];
            qgemm_nn(&a, &b, &mut fast, m, k, n, lut);
            kernels::reference::qgemm_nn(&a, &b, &mut naive, m, k, n, lut);
            prop_assert_eq!(&fast, &naive, "{}x{}x{} [{}]", m, k, n, lut.description());
        }
    }

    /// Accumulation into pre-filled output behaves identically in both
    /// kernels (the blocked path must not clobber prior contents).
    #[test]
    fn blocked_qgemm_accumulates_like_reference(m in dim(), k in dim(), n in dim(), seed in 0u64..200) {
        let lut = MulLut::exact();
        let a = codes(seed, m * k);
        let b = codes(seed ^ 0x77, k * n);
        let prior: Vec<u32> = codes(seed ^ 0x1234, m * n).into_iter().map(u32::from).collect();
        let mut fast = prior.clone();
        let mut naive = prior;
        qgemm_nn(&a, &b, &mut fast, m, k, n, &lut);
        kernels::reference::qgemm_nn(&a, &b, &mut naive, m, k, n, &lut);
        prop_assert_eq!(&fast, &naive);
    }
}
