//! Matrix products: 2-D matmul, transposed variants, and batched matmul.
//!
//! The 2-D kernel uses the cache-friendly `i-k-j` loop order with the inner
//! loop over contiguous rows of the right operand, which is plenty fast for
//! the model sizes this reproduction trains (im2col turns convolutions into
//! these products).

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// 2-D matrix product: `self (m×k) · rhs (k×n) -> (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::MatmulMismatch`] unless the inner dims agree.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// # fn main() -> Result<(), redcane_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self, "matmul")?;
        let (k2, n) = mat_dims(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the left operand transposed:
    /// `selfᵀ (k×m)ᵀ · rhs (k×n) -> (m×n)` where `self` is stored as `k×m`.
    ///
    /// Used by backprop (`dW = Xᵀ·dY` patterns) without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self, "matmul_tn")?;
        let (k2, n) = mat_dims(rhs, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        // out[i][j] = sum_p a[p][i] * b[p][j]
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the right operand transposed:
    /// `self (m×k) · rhsᵀ (n×k)ᵀ -> (m×n)`.
    ///
    /// Used by backprop (`dX = dY·Wᵀ` patterns) without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self, "matmul_nt")?;
        let (n, k2) = mat_dims(rhs, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `self (m×k) · v (k) -> (m)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `self` is rank 2, `v` is rank 1 and the
    /// lengths agree.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self, "matvec")?;
        if v.ndim() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: v.ndim(),
                op: "matvec",
            });
        }
        if v.len() != k {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: v.shape().to_vec(),
            });
        }
        let a = self.data();
        let x = v.data();
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }
}

/// Raw `m×k · k×n` product accumulated into `out` (assumed zeroed).
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

fn mat_dims(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.get(&[i, p]).unwrap() * b.get(&[p, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = TensorRng::from_seed(1);
        let a = rng.uniform(&[7, 5], -1.0, 1.0);
        let b = rng.uniform(&[5, 9], -1.0, 1.0);
        assert_close(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::from_seed(2);
        let a = rng.uniform(&[4, 4], -1.0, 1.0);
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        assert_close(&a.matmul(&eye).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = TensorRng::from_seed(3);
        let a = rng.uniform(&[6, 4], -1.0, 1.0); // stored k x m with k=6, m=4
        let b = rng.uniform(&[6, 5], -1.0, 1.0);
        let at = a.transpose2d().unwrap();
        assert_close(&a.matmul_tn(&b).unwrap(), &at.matmul(&b).unwrap(), 1e-5);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = TensorRng::from_seed(4);
        let a = rng.uniform(&[3, 6], -1.0, 1.0);
        let b = rng.uniform(&[5, 6], -1.0, 1.0); // stored n x k
        let bt = b.transpose2d().unwrap();
        assert_close(&a.matmul_nt(&b).unwrap(), &a.matmul(&bt).unwrap(), 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = TensorRng::from_seed(5);
        let a = rng.uniform(&[4, 7], -1.0, 1.0);
        let v = rng.uniform(&[7], -1.0, 1.0);
        let as_mat = v.reshape(&[7, 1]).unwrap();
        let expect = a.matmul(&as_mat).unwrap().into_reshaped(&[4]).unwrap();
        assert_close(&a.matvec(&v).unwrap(), &expect, 1e-5);
    }

    #[test]
    fn matvec_rejects_mismatch() {
        let a = Tensor::zeros(&[4, 7]);
        assert!(a.matvec(&Tensor::zeros(&[6])).is_err());
        assert!(a.matvec(&Tensor::zeros(&[7, 1])).is_err());
    }
}
