//! # redcane-qdp
//!
//! The quantized approximate datapath: runs the `redcane_axmul`
//! multiplier models **inside** a trained network's 8-bit integer
//! MACs, instead of beside it as injected Gaussian noise.
//!
//! The ReD-CaNe methodology *predicts* how a capsule network degrades
//! on approximate hardware from per-component noise models
//! (`redcane::noise`). This crate measures the ground truth the
//! prediction stands in for, through an **architecture-generic
//! lowering pipeline**:
//!
//! 1. **Calibrate** — sweep clean inputs through any trained float
//!    [`CapsModel`](redcane_capsnet::CapsModel) with a
//!    [`CalibrationObserver`] riding the existing injection tap
//!    points; [`QuantRanges`] maps every observed `(layer, op kind)`
//!    site to its fixed requantization range ([`calibrate_ranges`]).
//! 2. **Lower** — every float layer lowers itself to its quantized
//!    counterpart through [`LowerToQuant`] (`Dense`→`QDense`,
//!    `Conv2d`→`QConv2d`, `ConvCaps2d`→`QConvCaps2d`,
//!    `ConvCaps3d`→`QConvCaps3d`, `ClassCaps`→`QClassCaps`);
//!    [`QModel::lower`] assembles them into a dataflow program for the
//!    whole network whose steps remember their **site** keys. Weights
//!    and activations become 8-bit codes ([`QTensor`], Eq. 1 of the
//!    paper) and the MACs integer kernels ([`kernels::qgemm_nn`])
//!    whose every multiply is a [`MulLut`] lookup — a 64 KiB table of
//!    any [`Multiplier8`](redcane_axmul::Multiplier8)'s full truth
//!    table.
//! 3. **Run** — [`QModel`] executes end-to-end inference (per sample,
//!    or batch-fused into wide GEMMs via [`QModel::forward_batch`])
//!    under a [`DatapathAssignment`]: a *heterogeneous* map from site
//!    keys to multiplier components, resolved against a [`LutCache`]
//!    holding one shared table per distinct component. Both of the
//!    paper's architectures (CapsNet and the 17-layer DeepCaps, Caps3D
//!    routing included) run the same executor, from the uniform exact
//!    baseline to the methodology's full Step-6 per-layer design.
//!
//! [`QuantMeasured`] packages all of that behind `redcane`'s
//! [`AccuracyBackend`](redcane::datapath::AccuracyBackend) trait, so
//! the *measured* accuracy of any assignment is interchangeable with
//! the noise-*predicted* accuracy of the same assignment — the paper's
//! validation loop, closed over both networks and over heterogeneous
//! designs.
#![forbid(unsafe_code)]

pub mod backend;
pub mod calib;
pub mod faults;
pub mod kernels;
pub mod lower;
pub mod qlayers;
pub mod qmodel;
pub mod qtensor;

pub use backend::{FaultMeasured, QuantMeasured};
pub use calib::CalibrationObserver;
pub use faults::{faulted_site_lut, AccFault, MacView};
pub use lower::{calibrate_ranges, LowerError, LowerToQuant, QuantRanges};
pub use qlayers::{
    quantized_routing, quantized_routing_view, QClassCaps, QConv2d, QConvCaps2d, QConvCaps3d,
    QDense, QVotes,
};
pub use qmodel::{evaluate_quantized, PreparedModel, QModel, QStep};
pub use qtensor::{fault_codes, QTensor};
// The LUT machinery lives beside the multiplier models in
// `redcane-axmul`; re-exported here because the quantized kernels are
// its main consumer.
pub use redcane_axmul::{LutCache, MulLut};
// The assignment/backend vocabulary used throughout the execution API.
pub use redcane::datapath::{AccuracyBackend, BackendError, DatapathAssignment};
