//! # redcane
//!
//! **ReD-CaNe**: Resilience analysis and Design of Capsule Networks under
//! approximations — a Rust reproduction of Marchisio et al., DATE 2020.
//!
//! The crate implements the paper's noise-injection error model
//! (Sec. III) and its six-step methodology (Sec. IV, Fig. 7):
//!
//! 1. **Group extraction** ([`groups`]): classify every tagged operation
//!    of a CapsNet inference into the four groups of Table III
//!    (MAC outputs, activations, softmax, logits update).
//! 2. **Group-wise resilience analysis** ([`analysis`]): sweep the noise
//!    magnitude `NM` per group and record the accuracy drop (Figs. 9, 12).
//! 3. **Mark resilient groups**: groups whose critical `NM` (largest noise
//!    with negligible drop) exceeds a threshold.
//! 4. **Layer-wise analysis** of the non-resilient groups (Fig. 10).
//! 5. **Mark resilient layers** within those groups.
//! 6. **Component selection** ([`selection`]): pick, per operation, the
//!    cheapest approximate multiplier from a library whose measured noise
//!    fits the tolerable `NM`, and validate the resulting approximate
//!    CapsNet end to end.
//!
//! The [`datapath`] module makes the selected heterogeneous design an
//! executable object: [`DatapathAssignment`] maps `(layer, op kind,
//! in-routing)` sites to components, and the [`AccuracyBackend`] trait
//! scores it interchangeably on the noise forecast
//! ([`NoisePredicted`]) or — via `redcane-qdp`'s `QuantMeasured` — on
//! the real 8-bit integer datapath
//! ([`RedCaNe::run_with_measured`](methodology::RedCaNe::run_with_measured)).
//!
//! # Example
//!
//! ```no_run
//! use redcane::prelude::*;
//! use redcane_capsnet::{CapsNet, CapsNetConfig, train, TrainConfig};
//! use redcane_datasets::{generate, Benchmark, GenerateConfig};
//! use redcane_tensor::TensorRng;
//!
//! let pair = generate(Benchmark::MnistLike, &GenerateConfig::default());
//! let mut rng = TensorRng::from_seed(1);
//! let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
//! train(&mut model, &pair.train, &TrainConfig::default());
//! let report = RedCaNe::new(MethodologyConfig::default())
//!     .run(&model, &pair.test);
//! println!("{}", report.summary());
//! ```

pub mod analysis;
pub mod datapath;
pub mod faults;
pub mod groups;
pub mod input_stats;
pub mod methodology;
pub mod noise;
pub mod report;
pub mod selection;

pub use analysis::{GroupSweep, LayerSweep, SweepConfig};
pub use datapath::{AccuracyBackend, BackendError, DatapathAssignment, NoisePredicted, SiteKey};
pub use faults::{FaultModel, FaultPlan, FaultTarget, SiteFault};
pub use groups::{extract_groups, Group, GroupInventory};
pub use methodology::{MethodologyConfig, RedCaNe, RedCaNeReport};
pub use noise::{GaussianNoiseInjector, NoiseModel, NoiseTarget, PerSiteNoiseInjector};
pub use selection::{ApproxDesign, Assignment, SelectionConfig};

/// Convenient glob import of the main entry points.
pub mod prelude {
    pub use crate::analysis::{GroupSweep, LayerSweep, SweepConfig};
    pub use crate::datapath::{AccuracyBackend, DatapathAssignment, NoisePredicted};
    pub use crate::groups::{extract_groups, Group};
    pub use crate::methodology::{MethodologyConfig, RedCaNe, RedCaNeReport};
    pub use crate::noise::{GaussianNoiseInjector, NoiseModel, NoiseTarget};
    pub use crate::selection::{ApproxDesign, SelectionConfig};
}
