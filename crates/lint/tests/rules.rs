//! Fixture-driven self-tests: every rule has at least one failing and
//! one passing snippet, plus a meta-test running the linter over the
//! live workspace.

use std::path::{Path, PathBuf};

use redcane_lint::{lint_source, Config, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// The fixture config mirrors the real lint-allow.toml's shape with
/// fixture-sized contents.
fn cfg() -> Config {
    Config::parse(
        r#"
[determinism]
modules = ["qdp::calib", "qdp::lower", "capsnet::inject", "core::report"]

[clocks]
modules = ["trace", "serve::queue", "bench"]

[panics]
exempt_crates = ["bench"]

[traced]
rules = ["tensor::ops::gemm = gemm_*"]
exempt = ["tensor::ops::gemm::gemm_raw"]
delegates = ["gemm_nt"]

[unsafe]
files = ["crates/core/src/report/json.rs"]
"#,
    )
    .expect("fixture config parses")
}

fn run(name: &str, module: &str) -> Vec<Finding> {
    lint_source(
        &format!("crates/lint/tests/fixtures/{name}"),
        module,
        &fixture(name),
        &cfg(),
    )
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn r1_flags_hash_containers_in_stable_modules() {
    let findings = run("r1_bad.rs", "qdp::calib");
    assert!(
        findings
            .iter()
            .filter(|f| f.rule == "R1(determinism)")
            .count()
            >= 2,
        "want HashMap + HashSet findings, got {findings:?}"
    );
}

#[test]
fn r1_passes_ordered_containers_and_marked_sites() {
    let findings = run("r1_good.rs", "qdp::calib");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r1_ignores_modules_off_the_stable_list() {
    // The same bad snippet is fine outside the configured modules.
    let findings = run("r1_bad.rs", "tensor::ops");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r2_flags_clocks_outside_the_allowlist() {
    let findings = run("r2_bad.rs", "qdp::lower");
    assert!(
        findings.iter().filter(|f| f.rule == "R2(clock)").count() >= 2,
        "want Instant + SystemTime findings, got {findings:?}"
    );
}

#[test]
fn r2_passes_allowlisted_timing_modules() {
    let findings = run("r2_good.rs", "serve::queue");
    assert!(findings.is_empty(), "{findings:?}");
    // Submodules of an allowlisted root inherit the permission.
    let findings = run("r2_good.rs", "bench::bin::serve");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r3_flags_unwrap_expect_panic_and_reasonless_markers() {
    let findings = run("r3_bad.rs", "capsnet::model");
    let r3: Vec<_> = findings.iter().filter(|f| f.rule == "R3(panic)").collect();
    // unwrap + expect + panic! + (reasonless marker, reasonless unwrap).
    assert!(r3.len() >= 5, "{findings:?}");
    assert!(
        r3.iter().any(|f| f.message.contains("no reason")),
        "reasonless marker must be reported: {findings:?}"
    );
}

#[test]
fn r3_passes_errors_markers_and_test_modules() {
    let findings = run("r3_good.rs", "capsnet::model");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r3_exempts_bench_crates() {
    let findings = run("r3_bad.rs", "bench::bin::perf");
    // Only the reasonless marker remains a finding in exempt crates —
    // markers must carry reasons everywhere.
    assert_eq!(
        rules_of(&findings),
        vec!["R3(panic)"],
        "bench is panic-exempt but reasonless markers still report: {findings:?}"
    );
}

#[test]
fn r4_flags_unhooked_entry_points() {
    let findings = run("r4_bad.rs", "tensor::ops::gemm");
    assert_eq!(rules_of(&findings), vec!["R4(trace)"], "{findings:?}");
    assert!(findings[0].message.contains("gemm_nt"));
}

#[test]
fn r4_passes_hooked_delegating_and_exempt_fns() {
    let findings = run("r4_good.rs", "tensor::ops::gemm");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r4_ignores_unregistered_modules() {
    let findings = run("r4_bad.rs", "tensor::ops::window");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r5_flags_unregistered_unsafe() {
    let findings = run("r5_bad.rs", "qdp::kernels");
    assert_eq!(rules_of(&findings), vec!["R5(unsafe)"], "{findings:?}");
}

#[test]
fn r5_passes_safe_code_and_registered_files() {
    let findings = run("r5_good.rs", "qdp::kernels");
    assert!(findings.is_empty(), "{findings:?}");
    // The same unsafe snippet is fine in the registered file.
    let findings = lint_source(
        "crates/core/src/report/json.rs",
        "core::report::json",
        &fixture("r5_bad.rs"),
        &cfg(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

/// The real gate: the live workspace must be clean under the real
/// checked-in lint-allow.toml.
#[test]
fn live_workspace_has_zero_findings() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let cfg = redcane_lint::load_config(&root).expect("lint-allow.toml loads");
    let findings = redcane_lint::lint_workspace(&root, &cfg).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "workspace lint found {} finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The acceptance criterion on the allowlist itself: at most one
/// registered unsafe file.
#[test]
fn unsafe_allowlist_stays_at_most_one_entry() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let cfg = redcane_lint::load_config(&root).expect("lint-allow.toml loads");
    assert!(
        cfg.unsafe_files.len() <= 1,
        "unsafe budget grew: {:?}",
        cfg.unsafe_files
    );
}
