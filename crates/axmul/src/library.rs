//! The 35-component approximate multiplier library (EvoApprox8B stand-in).
//!
//! Fifteen entries are named after the components the paper's Table IV
//! reports (`mul8u_1JFF` … `mul8u_QKX`) and carry **that table's
//! power/area numbers as calibration metadata**; each is mapped onto a
//! behavioral model whose measured noise magnitude tracks the table's
//! order of magnitude. The remaining twenty are parametric members of the
//! same families, costed with the structural model of [`crate::power`],
//! filling out the power/error Pareto front the selection step (Step 6 of
//! the methodology) searches over.
//!
//! Name-by-name error *signs* are not guaranteed to match the paper (the
//! evolved EvoApprox netlists have idiosyncratic biases); magnitudes and
//! the power-vs-error trade-off ordering are what the methodology consumes.

use std::sync::Arc;

use crate::adder::{Adder16, ExactAdder, LowerOrAdder};
use crate::error_stats::{profile_multiplier, InputDistribution, NoiseParams};
use crate::mult::{
    BrokenArrayMultiplier, CompressorMultiplier, DrumMultiplier, ExactMultiplier,
    KulkarniMultiplier, MitchellLogMultiplier, Multiplier8, PerforatedMultiplier,
    TruncatedMultiplier,
};
use crate::power::{structure_with_drops, CostEstimate, EXACT_BASELINE, EXACT_STRUCTURE};

/// How a component's power/area figures were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// Taken from the paper's Table IV (45 nm Synopsys synthesis) as
    /// calibration metadata for the same-named component.
    PaperTable4,
    /// Estimated with the structural gate-count proxy.
    Structural,
}

/// One library component: a behavioral model plus cost metadata.
#[derive(Debug, Clone)]
pub struct ComponentEntry {
    name: String,
    model: Arc<dyn Multiplier8>,
    cost: CostEstimate,
    source: CostSource,
}

impl ComponentEntry {
    /// Creates an entry.
    pub fn new(
        name: impl Into<String>,
        model: Arc<dyn Multiplier8>,
        cost: CostEstimate,
        source: CostSource,
    ) -> Self {
        ComponentEntry {
            name: name.into(),
            model,
            cost,
            source,
        }
    }

    /// The component's library name (e.g. `mul8u_NGR`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The behavioral model.
    pub fn model(&self) -> &dyn Multiplier8 {
        self.model.as_ref()
    }

    /// A shareable handle to the behavioral model.
    pub fn model_arc(&self) -> Arc<dyn Multiplier8> {
        Arc::clone(&self.model)
    }

    /// Power/area figures.
    pub fn cost(&self) -> CostEstimate {
        self.cost
    }

    /// Where the cost figures come from.
    pub fn source(&self) -> CostSource {
        self.source
    }

    /// Measures the paper's `NM`/`NA` for this component over `dist`.
    pub fn characterize(&self, dist: &InputDistribution, samples: usize, seed: u64) -> NoiseParams {
        profile_multiplier(self.model(), dist, samples, seed).noise_params()
    }
}

/// The multiplier library searched by the component-selection step.
///
/// # Example
///
/// ```
/// use redcane_axmul::library::MultiplierLibrary;
///
/// let lib = MultiplierLibrary::evo_approx_like();
/// assert_eq!(lib.len(), 35);
/// assert!(lib.find("mul8u_1JFF").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MultiplierLibrary {
    entries: Vec<ComponentEntry>,
}

impl MultiplierLibrary {
    /// Builds the standard 35-component library described in the module
    /// docs.
    pub fn evo_approx_like() -> Self {
        let mut entries: Vec<ComponentEntry> = Vec::with_capacity(35);

        // --- Table IV-named components (paper power/area as metadata). ---
        let named: [(&str, Arc<dyn Multiplier8>, f64, f64); 15] = [
            ("mul8u_1JFF", Arc::new(ExactMultiplier), 391.0, 710.0),
            (
                "mul8u_14VP",
                Arc::new(TruncatedMultiplier::new(3)),
                364.0,
                654.0,
            ),
            (
                "mul8u_GS2",
                Arc::new(TruncatedMultiplier::new(6)),
                356.0,
                633.0,
            ),
            (
                "mul8u_CK5",
                Arc::new(TruncatedMultiplier::new(4)),
                345.0,
                604.0,
            ),
            (
                "mul8u_7C1",
                Arc::new(TruncatedMultiplier::new(7)),
                329.0,
                607.0,
            ),
            (
                "mul8u_96D",
                Arc::new(TruncatedMultiplier::new(8)),
                309.0,
                605.0,
            ),
            (
                "mul8u_2HH",
                Arc::new(BrokenArrayMultiplier::new(5, 2)),
                302.0,
                542.0,
            ),
            (
                "mul8u_NGR",
                Arc::new(BrokenArrayMultiplier::new(6, 0)),
                276.0,
                512.0,
            ),
            (
                "mul8u_19DB",
                Arc::new(CompressorMultiplier::new(8)),
                206.0,
                396.0,
            ),
            (
                "mul8u_DM1",
                Arc::new(KulkarniMultiplier::new(3)),
                195.0,
                402.0,
            ),
            (
                "mul8u_12N4",
                Arc::new(PerforatedMultiplier::new(1, 2)),
                142.0,
                390.0,
            ),
            (
                "mul8u_1AGV",
                Arc::new(CompressorMultiplier::new(10)),
                95.0,
                228.0,
            ),
            (
                "mul8u_YX7",
                Arc::new(TruncatedMultiplier::new(11)),
                61.0,
                221.0,
            ),
            ("mul8u_JV3", Arc::new(DrumMultiplier::new(3)), 34.0, 111.0),
            ("mul8u_QKX", Arc::new(DrumMultiplier::new(2)), 29.0, 112.0),
        ];
        for (name, model, power_uw, area_um2) in named {
            entries.push(ComponentEntry::new(
                name,
                model,
                CostEstimate { power_uw, area_um2 },
                CostSource::PaperTable4,
            ));
        }

        // --- Parametric family members with structural costs. ---
        for cut in [1u8, 2, 5, 9, 10] {
            entries.push(ComponentEntry::new(
                format!("mul8u_trc{cut}"),
                Arc::new(TruncatedMultiplier::new(cut)) as Arc<dyn Multiplier8>,
                structure_with_drops(|_, col| col < cut as usize).cost(),
                CostSource::Structural,
            ));
        }
        for (vb, hb) in [(4u8, 0u8), (7, 2), (8, 2), (9, 4)] {
            entries.push(ComponentEntry::new(
                format!("mul8u_bam{vb}_{hb}"),
                Arc::new(BrokenArrayMultiplier::new(vb, hb)) as Arc<dyn Multiplier8>,
                structure_with_drops(|row, col| {
                    col < vb as usize || (row < hb as usize && col < (vb + hb) as usize)
                })
                .cost(),
                CostSource::Structural,
            ));
        }
        for levels in [1u8, 2, 4] {
            entries.push(ComponentEntry::new(
                format!("mul8u_kul{levels}"),
                Arc::new(KulkarniMultiplier::new(levels)) as Arc<dyn Multiplier8>,
                kulkarni_cost(levels),
                CostSource::Structural,
            ));
        }
        entries.push(ComponentEntry::new(
            "mul8u_log0",
            Arc::new(MitchellLogMultiplier::new()) as Arc<dyn Multiplier8>,
            mitchell_cost(0),
            CostSource::Structural,
        ));
        entries.push(ComponentEntry::new(
            "mul8u_log4",
            Arc::new(MitchellLogMultiplier::with_truncation(4)) as Arc<dyn Multiplier8>,
            mitchell_cost(4),
            CostSource::Structural,
        ));
        for k in [4u8, 5, 6] {
            entries.push(ComponentEntry::new(
                format!("mul8u_drum{k}"),
                Arc::new(DrumMultiplier::new(k)) as Arc<dyn Multiplier8>,
                drum_cost(k),
                CostSource::Structural,
            ));
        }
        for (start, count) in [(0u8, 1u8), (2, 2)] {
            entries.push(ComponentEntry::new(
                format!("mul8u_perf{start}_{count}"),
                Arc::new(PerforatedMultiplier::new(start, count)) as Arc<dyn Multiplier8>,
                structure_with_drops(|row, _| {
                    row >= start as usize && row < (start + count) as usize
                })
                .cost(),
                CostSource::Structural,
            ));
        }
        entries.push(ComponentEntry::new(
            "mul8u_cmp12",
            Arc::new(CompressorMultiplier::new(12)) as Arc<dyn Multiplier8>,
            compressor_cost(12),
            CostSource::Structural,
        ));

        MultiplierLibrary { entries }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the library has no components.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all components.
    pub fn iter(&self) -> impl Iterator<Item = &ComponentEntry> {
        self.entries.iter()
    }

    /// Looks a component up by exact name.
    pub fn find(&self, name: &str) -> Option<&ComponentEntry> {
        self.entries.iter().find(|e| e.name() == name)
    }

    /// The accurate baseline component (`mul8u_1JFF`).
    ///
    /// # Panics
    ///
    /// Panics if the library was constructed without the exact component.
    pub fn exact(&self) -> &ComponentEntry {
        self.find("mul8u_1JFF")
            // lint: allow(panic) — documented API contract ("# Panics"): every constructor seeds the exact component
            .expect("library always contains the exact component")
    }

    /// Components sorted by ascending power.
    pub fn sorted_by_power(&self) -> Vec<&ComponentEntry> {
        let mut v: Vec<&ComponentEntry> = self.entries.iter().collect();
        v.sort_by(|a, b| a.cost().power_uw.total_cmp(&b.cost().power_uw));
        v
    }

    /// Characterizes every component over `dist`, returning
    /// `(entry, noise-params)` pairs (the raw material for Table IV and the
    /// Step-6 component selection).
    pub fn characterize_all(
        &self,
        dist: &InputDistribution,
        samples: usize,
        seed: u64,
    ) -> Vec<(&ComponentEntry, NoiseParams)> {
        self.entries
            .iter()
            .map(|e| (e, e.characterize(dist, samples, seed)))
            .collect()
    }
}

impl Default for MultiplierLibrary {
    fn default() -> Self {
        Self::evo_approx_like()
    }
}

/// The paper's `5LT`-like approximate accumulator adder (LOA with 5
/// approximate low bits).
pub fn adder_5lt_like() -> LowerOrAdder {
    LowerOrAdder::new(5)
}

/// The exact accumulator adder.
pub fn adder_exact() -> ExactAdder {
    ExactAdder
}

/// Energy of one approximate addition relative to an exact one, for the
/// `5LT`-like adder. A 16-bit LOA with 5 OR'd bits removes ~5/16 of the
/// carry chain; we round to the classic ~35 % saving reported for LOA-class
/// adders.
pub fn adder_5lt_energy_ratio() -> f64 {
    0.65
}

/// Dispatch helper so callers can obtain either adder behind the trait.
pub fn adder_by_name(name: &str) -> Option<Box<dyn Adder16>> {
    match name {
        "add16u_EXA" => Some(Box::new(ExactAdder)),
        "add16u_5LT" => Some(Box::new(adder_5lt_like())),
        _ => None,
    }
}

// --- Structural cost models for families the drop-counting proxy cannot
// --- express directly. Fractions are documented engineering estimates; the
// --- methodology only needs relative ordering.

fn kulkarni_cost(levels: u8) -> CostEstimate {
    // Each approximate 2x2 block saves ~3 of its ~8 gate equivalents; with
    // `levels` low chunks approximate, levels^2 of the 16 blocks change.
    let saving = 0.375 * (levels as f64).powi(2) / 16.0;
    CostEstimate {
        power_uw: EXACT_BASELINE.power_uw * (1.0 - saving),
        area_um2: EXACT_BASELINE.area_um2 * (1.0 - saving),
    }
}

fn mitchell_cost(mantissa_trunc: u8) -> CostEstimate {
    // Log multipliers replace the array with two LODs, an adder and a
    // shifter: ~16 % of the exact multiplier's power; truncation shaves a
    // further ~1 % per bit.
    let base = 0.16 - 0.01 * mantissa_trunc as f64;
    CostEstimate {
        power_uw: EXACT_BASELINE.power_uw * base,
        area_um2: EXACT_BASELINE.area_um2 * (base + 0.04),
    }
}

fn drum_cost(k: u8) -> CostEstimate {
    // DRUM computes a k x k core product plus LODs/shifters (~6 % overhead).
    let frac = (k as f64 / 8.0).powi(2) + 0.06;
    CostEstimate {
        power_uw: EXACT_BASELINE.power_uw * frac,
        area_um2: EXACT_BASELINE.area_um2 * frac,
    }
}

fn compressor_cost(approx_cols: u8) -> CostEstimate {
    // OR-reducing a column removes most of its compressor tree; reuse the
    // drop-count proxy at ~70 % effectiveness for those columns.
    let full = EXACT_STRUCTURE.complexity();
    let exact_part = structure_with_drops(|_, col| col < approx_cols as usize).complexity();
    let approx_part = 0.3 * (full - exact_part);
    let ratio = (exact_part + approx_part) / full;
    CostEstimate {
        power_uw: EXACT_BASELINE.power_uw * ratio,
        area_um2: EXACT_BASELINE.area_um2 * ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_35_components_with_unique_names() {
        let lib = MultiplierLibrary::evo_approx_like();
        assert_eq!(lib.len(), 35);
        let mut names: Vec<&str> = lib.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 35, "duplicate component names");
    }

    #[test]
    fn all_table4_names_present() {
        let lib = MultiplierLibrary::evo_approx_like();
        for name in [
            "mul8u_1JFF",
            "mul8u_14VP",
            "mul8u_GS2",
            "mul8u_CK5",
            "mul8u_7C1",
            "mul8u_96D",
            "mul8u_2HH",
            "mul8u_NGR",
            "mul8u_19DB",
            "mul8u_DM1",
            "mul8u_12N4",
            "mul8u_1AGV",
            "mul8u_YX7",
            "mul8u_JV3",
            "mul8u_QKX",
        ] {
            let e = lib.find(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(e.source(), CostSource::PaperTable4);
        }
    }

    #[test]
    fn exact_component_is_error_free_and_most_expensive_named() {
        let lib = MultiplierLibrary::evo_approx_like();
        let exact = lib.exact();
        assert_eq!(exact.model().multiply(255, 255), 65025);
        for e in lib.iter() {
            if e.source() == CostSource::PaperTable4 {
                assert!(e.cost().power_uw <= exact.cost().power_uw);
            }
        }
    }

    #[test]
    fn named_costs_match_paper_table4() {
        let lib = MultiplierLibrary::evo_approx_like();
        assert_eq!(lib.find("mul8u_NGR").unwrap().cost().power_uw, 276.0);
        assert_eq!(lib.find("mul8u_DM1").unwrap().cost().power_uw, 195.0);
        assert_eq!(lib.find("mul8u_QKX").unwrap().cost().area_um2, 112.0);
        let ngr_saving = lib.find("mul8u_NGR").unwrap().cost().power_saving();
        assert!(
            (ngr_saving - 0.294).abs() < 0.01,
            "NGR ~ -29%: {ngr_saving}"
        );
    }

    #[test]
    fn sorted_by_power_is_ascending() {
        let lib = MultiplierLibrary::evo_approx_like();
        let sorted = lib.sorted_by_power();
        for pair in sorted.windows(2) {
            assert!(pair[0].cost().power_uw <= pair[1].cost().power_uw);
        }
    }

    #[test]
    fn cheaper_named_components_are_noisier_on_average() {
        // The library's power/error Pareto shape: among named components,
        // the cheap tail (QKX/JV3/YX7) must be an order of magnitude
        // noisier than the expensive head (14VP/CK5).
        let lib = MultiplierLibrary::evo_approx_like();
        let nm = |name: &str| {
            lib.find(name)
                .unwrap()
                .characterize(&InputDistribution::Uniform, 20_000, 1)
                .nm
        };
        let head = (nm("mul8u_14VP") + nm("mul8u_CK5")) / 2.0;
        let tail = (nm("mul8u_JV3") + nm("mul8u_QKX") + nm("mul8u_YX7")) / 3.0;
        assert!(tail > 10.0 * head, "head {head}, tail {tail}");
    }

    #[test]
    fn ngr_like_nm_is_sub_percent() {
        // Table IV: NGR has NM ~ 0.0008-0.0009. Our stand-in must stay in
        // the sub-percent regime.
        let lib = MultiplierLibrary::evo_approx_like();
        let np =
            lib.find("mul8u_NGR")
                .unwrap()
                .characterize(&InputDistribution::Uniform, 30_000, 2);
        assert!(np.nm > 0.0 && np.nm < 0.01, "NGR nm {}", np.nm);
    }

    #[test]
    fn characterize_all_covers_library() {
        let lib = MultiplierLibrary::evo_approx_like();
        let rows = lib.characterize_all(&InputDistribution::Uniform, 2_000, 3);
        assert_eq!(rows.len(), 35);
        // Exact entry has zero noise.
        let exact_row = rows.iter().find(|(e, _)| e.name() == "mul8u_1JFF").unwrap();
        assert_eq!(exact_row.1.nm, 0.0);
    }

    #[test]
    fn adders_are_available_by_name() {
        assert!(adder_by_name("add16u_EXA").is_some());
        assert!(adder_by_name("add16u_5LT").is_some());
        assert!(adder_by_name("nope").is_none());
        assert!(adder_5lt_energy_ratio() < 1.0);
    }

    #[test]
    fn structural_family_costs_are_monotone() {
        let lib = MultiplierLibrary::evo_approx_like();
        let p = |n: &str| lib.find(n).unwrap().cost().power_uw;
        assert!(p("mul8u_trc1") > p("mul8u_trc5"));
        assert!(p("mul8u_trc5") > p("mul8u_trc10"));
        assert!(p("mul8u_drum6") > p("mul8u_drum4"));
        assert!(p("mul8u_kul1") > p("mul8u_kul4"));
    }
}
