//! # redcane-capsnet
//!
//! Capsule Networks with **noise-injection tap points**: the CapsNet of
//! Sabour et al. (NIPS 2017) and the DeepCaps of Rajasegaran et al.
//! (CVPR 2019), implemented with hand-written forward/backward passes on
//! top of [`redcane_nn`] and [`redcane_tensor`].
//!
//! The crate's defining feature is the [`inject::Injector`] hook: every
//! operation the ReD-CaNe paper's Table III classifies — MAC outputs,
//! activations (ReLU/squash), the routing softmax and the routing logits
//! update — calls the injector with an [`inject::OpSite`] naming the layer,
//! the operation kind and (inside dynamic routing) the iteration. The
//! accurate network uses [`inject::NoInjection`]; the ReD-CaNe methodology
//! plugs in Gaussian noise models; instrumentation plugs in recorders.
//!
//! # Example
//!
//! ```
//! use redcane_capsnet::{CapsNet, CapsNetConfig, CapsModel, inject::NoInjection};
//! use redcane_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::from_seed(0);
//! let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
//! let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
//! let lengths = model.forward(&x, &mut NoInjection);
//! assert_eq!(lengths.shape(), &[10]);
//! // Capsule lengths are probabilities (squashed vectors).
//! assert!(lengths.data().iter().all(|&l| (0.0..1.0).contains(&l)));
//! ```
#![forbid(unsafe_code)]

pub mod census;
pub mod config;
pub mod inject;
pub mod io;
pub mod layers;
pub mod model;
pub mod routing;
pub mod squash;
pub mod train;

pub use config::{CapsNetConfig, DeepCapsConfig};
pub use inject::{Injector, NoInjection, OpKind, OpSite, RecordingInjector};
pub use model::{caps_to_units, CapsCell, CapsModel, CapsNet, DeepCaps};
pub use train::{evaluate, evaluate_clean, train, TrainConfig, TrainReport};
