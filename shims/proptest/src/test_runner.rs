//! Deterministic case generation for the shim.

/// Number of cases each `proptest!` test runs; override with the
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A small deterministic generator (xorshift64*), seeded from the test
/// name so every test gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's name via FNV-1a.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below: zero bound");
        (self.next_u64() % bound as u64) as usize
    }
}
