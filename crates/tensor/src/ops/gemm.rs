//! Cache-blocked, register-tiled GEMM micro-kernels on raw `f32` slices.
//!
//! Every MAC-dominated path in the workspace (im2col convolutions, dense
//! layers, capsule vote transforms) funnels into these three kernels:
//!
//! - [`gemm_nn`] — `C += A (m×k) · B (k×n)`
//! - [`gemm_tn`] — `C += Aᵀ · B` with `A` stored `k×m`
//! - [`gemm_nt`] — `C += A · Bᵀ` with `B` stored `n×k`
//!
//! # Design
//!
//! The kernels block over `k` (`KC`) and pack the left operand into an
//! `MR`-row micro-panel laid out `[p][row]`, so the inner tile reads it
//! contiguously regardless of the logical transpose. The micro-kernel
//! fuses `MR = 4` output rows × `KU = 4` k-steps per pass over the output
//! block: 16 multiply-adds per column against 8 loads and 4 stores, an
//! axpy form with no floating-point reduction that the compiler
//! vectorizes under strict FP semantics.
//!
//! # Bitwise reproducibility
//!
//! For every output element the `k` contributions are applied one at a
//! time in strictly ascending order, starting from the existing value of
//! `C` — exactly the order of the textbook triple loop. The blocked
//! kernels therefore produce **bit-identical** results to the
//! [`reference`] kernels (this is asserted by the crate's proptests), so
//! swapping them into a seeded training run does not perturb a single
//! ULP. Keep it that way: do not introduce partial sums, horizontal
//! reductions, or k-reordering here.

use redcane_trace as trace;

/// Rows per micro-panel (register tile height).
pub const MR: usize = 4;
/// k-steps fused per pass over an output block.
const KU: usize = 4;
/// k-block size: the packed panel (`KC * MR` floats) stays in L1.
const KC: usize = 256;

/// Work-counter hook shared by every public GEMM entry point: one call
/// plus `m·k·n` MACs. Counted at the entry (not per block/chunk) so the
/// totals are invariant across blocking factors and thread counts; one
/// relaxed atomic load when tracing is off.
#[inline]
fn trace_gemm(m: usize, k: usize, n: usize) {
    if trace::enabled() {
        trace::add(trace::Counter::GemmCalls, 1);
        trace::add(trace::Counter::GemmMacs, (m * k * n) as u64);
    }
}

/// `C += A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
///
/// # Panics
///
/// Debug-asserts the slice lengths match the dimensions.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    trace_gemm(m, k, n);
    gemm_nn_impl::<false>(a, b, c, m, k, n);
}

/// `C = A·B`: like [`gemm_nn`] but ignores (overwrites) `C`'s prior
/// contents, exactly as if `C` had been zeroed first. Lets callers
/// recycle scratch buffers without re-zeroing them.
pub fn gemm_nn_over(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    trace_gemm(m, k, n);
    gemm_nn_impl::<true>(a, b, c, m, k, n);
}

fn gemm_nn_impl<const OVER: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if OVER {
            c.fill(0.0);
        }
        return;
    }
    // Degenerate shapes skip packing entirely: a matrix–vector product
    // is sequential dots, a rank-1 update is row axpys. Both apply the
    // k contributions in the same ascending order as the full kernel.
    if n == 1 {
        for (i, o) in c.iter_mut().enumerate() {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = if OVER { 0.0 } else { *o };
            for (&av, &bv) in arow.iter().zip(b) {
                acc += av * bv;
            }
            *o = acc;
        }
        return;
    }
    if k == 1 {
        for (i, crow) in c.chunks_exact_mut(n).enumerate() {
            let av = a[i];
            for (o, &bv) in crow.iter_mut().zip(b) {
                // `0.0 + x` (not bare `x`): keeps the -0.0 products'
                // signs identical to accumulating into a zeroed buffer.
                let acc = if OVER { 0.0 } else { *o };
                *o = acc + av * bv;
            }
        }
        return;
    }
    let mut panel = [0.0f32; KC * MR];
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            // Pack A[i0..i0+mr][p0..p0+kc] as panel[p][row].
            for r in 0..mr {
                let arow = &a[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
                for (p, &v) in arow.iter().enumerate() {
                    panel[p * MR + r] = v;
                }
            }
            micro_kernel(
                &panel,
                &b[p0 * n..(p0 + kc) * n],
                &mut c[i0 * n..],
                mr,
                kc,
                n,
                OVER && p0 == 0,
            );
        }
    }
}

/// `C += Aᵀ·B` where `A` is stored row-major `k×m` (logical `m×k` after
/// the transpose), `B (k×n)`, `C (m×n)`. The transpose never
/// materializes: packing gathers the strided column directly.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    trace_gemm(m, k, n);
    gemm_tn_impl::<false>(a, b, c, m, k, n);
}

/// `C = Aᵀ·B`: overwrite-mode twin of [`gemm_tn`] (see [`gemm_nn_over`]).
pub fn gemm_tn_over(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    trace_gemm(m, k, n);
    gemm_tn_impl::<true>(a, b, c, m, k, n);
}

fn gemm_tn_impl<const OVER: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if OVER {
            c.fill(0.0);
        }
        return;
    }
    // Degenerate shapes skip packing: `m == 1` is a vectorᵀ·matrix
    // (row axpys over ascending k), `n == 1` a strided column dot.
    if m == 1 {
        if OVER {
            c.fill(0.0);
        }
        for (p, &av) in a.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in c.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        return;
    }
    if n == 1 {
        for (i, o) in c.iter_mut().enumerate() {
            let mut acc = if OVER { 0.0 } else { *o };
            for (p, &bv) in b.iter().enumerate() {
                acc += a[p * m + i] * bv;
            }
            *o = acc;
        }
        return;
    }
    let mut panel = [0.0f32; KC * MR];
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            for p in 0..kc {
                let arow = &a[(p0 + p) * m + i0..(p0 + p) * m + i0 + mr];
                panel[p * MR..p * MR + mr].copy_from_slice(arow);
            }
            micro_kernel(
                &panel,
                &b[p0 * n..(p0 + kc) * n],
                &mut c[i0 * n..],
                mr,
                kc,
                n,
                OVER && p0 == 0,
            );
        }
    }
}

/// `C += A·Bᵀ` where `B` is stored row-major `n×k` (logical `k×n` after
/// the transpose), `A (m×k)`, `C (m×n)`.
///
/// The `B` block is transpose-packed into a `kc×n` scratch panel so the
/// same axpy micro-kernel applies; per output element the accumulation
/// order over `k` is still strictly ascending, i.e. bit-identical to the
/// sequential dot product of the reference kernel.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    trace_gemm(m, k, n);
    gemm_nt_impl::<false>(a, b, c, m, k, n);
}

/// `C = A·Bᵀ`: overwrite-mode twin of [`gemm_nt`] (see [`gemm_nn_over`]).
pub fn gemm_nt_over(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    trace_gemm(m, k, n);
    gemm_nt_impl::<true>(a, b, c, m, k, n);
}

fn gemm_nt_impl<const OVER: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if OVER {
            c.fill(0.0);
        }
        return;
    }
    // Degenerate shapes skip the transpose-pack: both operands' rows
    // are contiguous over k, so these are plain sequential dots.
    if n == 1 || k == 1 {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for (j, o) in c[i * n..(i + 1) * n].iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = if OVER { 0.0 } else { *o };
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        return;
    }
    let mut panel = [0.0f32; KC * MR];
    // Transpose-pack B one k-block at a time; KC rows of n floats.
    let mut bt = vec![0.0f32; KC.min(k) * n];
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        // p-major pack: writes are contiguous, reads stride by k.
        for (p, btrow) in bt[..kc * n].chunks_exact_mut(n).enumerate() {
            for (j, slot) in btrow.iter_mut().enumerate() {
                *slot = b[j * k + p0 + p];
            }
        }
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            for r in 0..mr {
                let arow = &a[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
                for (p, &v) in arow.iter().enumerate() {
                    panel[p * MR + r] = v;
                }
            }
            micro_kernel(
                &panel,
                &bt[..kc * n],
                &mut c[i0 * n..],
                mr,
                kc,
                n,
                OVER && p0 == 0,
            );
        }
    }
}

/// The shared inner tile: `mr (≤ MR)` output rows × `kc` packed k-steps
/// over `n` columns. `panel` is `[p][row]`-packed; `b` holds `kc`
/// row-major rows of length `n`; `c` holds at least `mr` rows of `n`.
///
/// Each pass applies `KU` consecutive k-steps to all `mr` rows with the
/// adds per element issued strictly in ascending-k order. With
/// `overwrite`, the first pass initializes the accumulator to `0.0`
/// instead of loading `c` — bit-identical to pre-zeroed accumulation.
fn micro_kernel(
    panel: &[f32],
    b: &[f32],
    c: &mut [f32],
    mr: usize,
    kc: usize,
    n: usize,
    overwrite: bool,
) {
    // Narrow outputs amortize per-pass overhead poorly; fuse twice as
    // many k-steps per pass there (same ascending-k order per element).
    if n <= 16 {
        micro_kernel_narrow(panel, b, c, mr, kc, n, overwrite);
        return;
    }
    let mut p = 0;
    let mut fresh = overwrite;
    while p + KU <= kc {
        let b0 = &b[p * n..(p + 1) * n];
        let b1 = &b[(p + 1) * n..(p + 2) * n];
        let b2 = &b[(p + 2) * n..(p + 3) * n];
        let b3 = &b[(p + 3) * n..(p + 4) * n];
        for r in 0..mr {
            let a0 = panel[p * MR + r];
            let a1 = panel[(p + 1) * MR + r];
            let a2 = panel[(p + 2) * MR + r];
            let a3 = panel[(p + 3) * MR + r];
            let crow = &mut c[r * n..r * n + n];
            if fresh {
                for (j, o) in crow.iter_mut().enumerate() {
                    // Start from 0.0 so -0.0 products keep the same
                    // sign as accumulating into a zeroed buffer.
                    let mut acc = 0.0;
                    acc += a0 * b0[j];
                    acc += a1 * b1[j];
                    acc += a2 * b2[j];
                    acc += a3 * b3[j];
                    *o = acc;
                }
            } else {
                for (j, o) in crow.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += a0 * b0[j];
                    acc += a1 * b1[j];
                    acc += a2 * b2[j];
                    acc += a3 * b3[j];
                    *o = acc;
                }
            }
        }
        fresh = false;
        p += KU;
    }
    while p < kc {
        let brow = &b[p * n..(p + 1) * n];
        for r in 0..mr {
            let av = panel[p * MR + r];
            let crow = &mut c[r * n..r * n + n];
            if fresh {
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o = 0.0 + av * bv;
                }
            } else {
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        fresh = false;
        p += 1;
    }
}

/// [`micro_kernel`] twin for narrow `n`: 8 fused k-steps per pass.
fn micro_kernel_narrow(
    panel: &[f32],
    b: &[f32],
    c: &mut [f32],
    mr: usize,
    kc: usize,
    n: usize,
    overwrite: bool,
) {
    const KW: usize = 8;
    let mut p = 0;
    let mut fresh = overwrite;
    while p + KW <= kc {
        let bq: [&[f32]; KW] = std::array::from_fn(|q| &b[(p + q) * n..(p + q + 1) * n]);
        for r in 0..mr {
            let aq: [f32; KW] = std::array::from_fn(|q| panel[(p + q) * MR + r]);
            let crow = &mut c[r * n..r * n + n];
            for (j, o) in crow.iter_mut().enumerate() {
                let mut acc = if fresh { 0.0 } else { *o };
                acc += aq[0] * bq[0][j];
                acc += aq[1] * bq[1][j];
                acc += aq[2] * bq[2][j];
                acc += aq[3] * bq[3][j];
                acc += aq[4] * bq[4][j];
                acc += aq[5] * bq[5][j];
                acc += aq[6] * bq[6][j];
                acc += aq[7] * bq[7][j];
                *o = acc;
            }
        }
        fresh = false;
        p += KW;
    }
    while p < kc {
        let brow = &b[p * n..(p + 1) * n];
        for r in 0..mr {
            let av = panel[p * MR + r];
            let crow = &mut c[r * n..r * n + n];
            if fresh {
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o = 0.0 + av * bv;
                }
            } else {
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        fresh = false;
        p += 1;
    }
}

/// Batched `C[t] += A[t]·B[t]` over `t ∈ 0..batch` with row-major
/// `batch×m×k`, `batch×k×n`, `batch×m×n` layouts.
pub fn gemm_nn_batched(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), batch * m * k);
    debug_assert_eq!(b.len(), batch * k * n);
    debug_assert_eq!(c.len(), batch * m * n);
    for t in 0..batch {
        gemm_nn(
            &a[t * m * k..(t + 1) * m * k],
            &b[t * k * n..(t + 1) * k * n],
            &mut c[t * m * n..(t + 1) * m * n],
            m,
            k,
            n,
        );
    }
}

/// Overwrite-mode twin of [`gemm_nn_batched`] (see [`gemm_nn_over`]).
pub fn gemm_nn_batched_over(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), batch * m * k);
    debug_assert_eq!(b.len(), batch * k * n);
    debug_assert_eq!(c.len(), batch * m * n);
    for t in 0..batch {
        gemm_nn_over(
            &a[t * m * k..(t + 1) * m * k],
            &b[t * k * n..(t + 1) * k * n],
            &mut c[t * m * n..(t + 1) * m * n],
            m,
            k,
            n,
        );
    }
}

/// Naive triple-loop kernels: the correctness oracle the blocked kernels
/// are tested against (and that the `perf` benchmark reports speedups
/// over). Never used on a hot path.
pub mod reference {
    /// Textbook `C += A·B` in `i-k-j` order (ascending-k per element).
    pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }

    /// Textbook `C += Aᵀ·B` with `A` stored `k×m`.
    pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let av = a[p * m + i];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }

    /// Textbook `C += A·Bᵀ` with `B` stored `n×k` (sequential dots).
    pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                c[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    fn random(rng: &mut TensorRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.next_uniform(-1.0, 1.0)).collect()
    }

    /// The blocked kernels must be bit-identical to the reference loops —
    /// this is what lets them replace the naive kernels in seeded runs.
    #[test]
    fn blocked_kernels_bitwise_match_reference() {
        let mut rng = TensorRng::from_seed(900);
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 4, 4),
            (5, 7, 3),
            (3, 300, 9),
            (24, 49, 100),
            (13, 513, 17),
            (6, 600, 9),
        ] {
            let a = random(&mut rng, m * k);
            let b = random(&mut rng, k * n);
            let mut c_fast = random(&mut rng, m * n);
            let mut c_ref = c_fast.clone();
            gemm_nn(&a, &b, &mut c_fast, m, k, n);
            reference::gemm_nn(&a, &b, &mut c_ref, m, k, n);
            assert_eq!(c_fast, c_ref, "nn {m}x{k}x{n}");

            let at = random(&mut rng, k * m);
            let mut c_fast = random(&mut rng, m * n);
            let mut c_ref = c_fast.clone();
            gemm_tn(&at, &b, &mut c_fast, m, k, n);
            reference::gemm_tn(&at, &b, &mut c_ref, m, k, n);
            assert_eq!(c_fast, c_ref, "tn {m}x{k}x{n}");

            let bt = random(&mut rng, n * k);
            let mut c_fast = random(&mut rng, m * n);
            let mut c_ref = c_fast.clone();
            gemm_nt(&a, &bt, &mut c_fast, m, k, n);
            reference::gemm_nt(&a, &bt, &mut c_ref, m, k, n);
            assert_eq!(c_fast, c_ref, "nt {m}x{k}x{n}");
        }
    }

    /// Overwrite mode on a garbage-filled buffer must equal accumulate
    /// mode on a zeroed one, bit for bit.
    #[test]
    fn overwrite_mode_matches_zeroed_accumulate() {
        let mut rng = TensorRng::from_seed(902);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (3, 300, 9), (13, 513, 17), (6, 4, 1)] {
            let a = random(&mut rng, m * k);
            let b = random(&mut rng, k * n);
            let at = random(&mut rng, k * m);
            let bt = random(&mut rng, n * k);
            let mut zeroed = vec![0.0f32; m * n];
            let mut garbage = random(&mut rng, m * n);
            gemm_nn(&a, &b, &mut zeroed, m, k, n);
            gemm_nn_over(&a, &b, &mut garbage, m, k, n);
            assert_eq!(zeroed, garbage, "nn {m}x{k}x{n}");

            let mut zeroed = vec![0.0f32; m * n];
            let mut garbage = random(&mut rng, m * n);
            gemm_tn(&at, &b, &mut zeroed, m, k, n);
            gemm_tn_over(&at, &b, &mut garbage, m, k, n);
            assert_eq!(zeroed, garbage, "tn {m}x{k}x{n}");

            let mut zeroed = vec![0.0f32; m * n];
            let mut garbage = random(&mut rng, m * n);
            gemm_nt(&a, &bt, &mut zeroed, m, k, n);
            gemm_nt_over(&a, &bt, &mut garbage, m, k, n);
            assert_eq!(zeroed, garbage, "nt {m}x{k}x{n}");
        }
    }

    #[test]
    fn overwrite_mode_zero_k_clears() {
        let mut c = vec![7.0f32; 6];
        gemm_nn_over(&[], &[], &mut c, 2, 0, 3);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![1.0f32; 0];
        gemm_nn(&[], &[], &mut c, 0, 3, 0);
        gemm_tn(&[], &[], &mut c, 0, 0, 0);
        gemm_nt(&[], &[], &mut c, 0, 5, 0);
    }

    #[test]
    fn batched_matches_per_slice() {
        let mut rng = TensorRng::from_seed(901);
        let (batch, m, k, n) = (5, 3, 6, 4);
        let a = random(&mut rng, batch * m * k);
        let b = random(&mut rng, batch * k * n);
        let mut c = vec![0.0f32; batch * m * n];
        gemm_nn_batched(&a, &b, &mut c, batch, m, k, n);
        for t in 0..batch {
            let mut ct = vec![0.0f32; m * n];
            reference::gemm_nn(
                &a[t * m * k..(t + 1) * m * k],
                &b[t * k * n..(t + 1) * k * n],
                &mut ct,
                m,
                k,
                n,
            );
            assert_eq!(&c[t * m * n..(t + 1) * m * n], &ct[..], "batch {t}");
        }
    }
}
