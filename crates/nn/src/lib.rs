//! # redcane-nn
//!
//! A compact CPU training substrate: layers with hand-written
//! forward/backward passes, optimizers, initializers and losses. It exists
//! because the ReD-CaNe methodology needs *trained* Capsule Networks to
//! analyze, and this reproduction trains them from scratch in Rust instead
//! of TensorFlow.
//!
//! Design choices:
//!
//! - **Per-sample training.** Layers process one `[C, H, W]` sample at a
//!   time; the trainer loops over a minibatch accumulating gradients. This
//!   keeps every backward pass a direct transcription of the chain rule,
//!   at model sizes where CPU throughput is not the bottleneck.
//! - **Explicit caches.** Each layer stores exactly the activations its
//!   backward pass needs; `forward` must precede `backward`.
//! - **Finite-difference verified.** Every layer's gradient is checked
//!   against central differences in its unit tests.
//!
//! # Example
//!
//! ```
//! use redcane_nn::{layers::Dense, Layer};
//! use redcane_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::from_seed(0);
//! let mut dense = Dense::new(4, 2, &mut rng);
//! let x = rng.uniform(&[4], -1.0, 1.0);
//! let y = dense.forward(&x);
//! assert_eq!(y.shape(), &[2]);
//! ```
#![forbid(unsafe_code)]

pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;

pub use layer::Layer;
pub use loss::{cross_entropy_loss, margin_loss, MarginLossConfig};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
