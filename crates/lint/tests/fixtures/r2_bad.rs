// Fixture: wall-clock reads outside the allowlisted timing modules
// (linted as `qdp::lower`) must trip R2.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos() as u64
}
