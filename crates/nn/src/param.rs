//! Trainable parameters: a value tensor paired with its gradient
//! accumulator.

use redcane_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable tensor with an accumulated gradient of the same shape.
///
/// Gradients **accumulate** across `backward` calls (per-sample training
/// sums minibatch gradients); call [`Param::zero_grad`] between optimizer
/// steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initialized value tensor with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s shape differs from the parameter's.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad
            .add_scaled(g, 1.0)
            // lint: allow(panic) — documented API contract: accumulate requires matching shapes
            .expect("gradient shape must match parameter shape");
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` for an empty parameter tensor.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape(), &[2, 3]);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn accumulate_sums() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate(&Tensor::from_slice(&[1.0, 2.0]));
        p.accumulate(&Tensor::from_slice(&[0.5, -1.0]));
        assert_eq!(p.grad.data(), &[1.5, 1.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn accumulate_rejects_shape_mismatch() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate(&Tensor::zeros(&[3]));
    }
}
