//! Axis reductions and the axis softmax used by dynamic routing.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// Sums along `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// # fn main() -> Result<(), redcane_tensor::TensorError> {
    /// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// assert_eq!(t.sum_axis(0)?.data(), &[4.0, 6.0]);
    /// assert_eq!(t.sum_axis(1)?.data(), &[3.0, 7.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, 0.0, |acc, v| acc + v)
    }

    /// Means along `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let n = self.shape().get(axis).copied().unwrap_or(0).max(1) as f32;
        Ok(self.sum_axis(axis)?.scale(1.0 / n))
    }

    /// Maximum along `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn max_axis(&self, axis: usize) -> Result<Tensor> {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Generic fold along `axis` with the given identity and combiner.
    fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        let nd = self.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let size = self.shape()[axis];
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut new_shape = self.shape().to_vec();
        new_shape.remove(axis);
        let src = self.data();
        let mut out = vec![init; outer * inner];
        for o in 0..outer {
            for a in 0..size {
                let base = (o * size + a) * inner;
                let orow = &mut out[o * inner..(o + 1) * inner];
                for (slot, &v) in orow.iter_mut().zip(&src[base..base + inner]) {
                    *slot = f(*slot, v);
                }
            }
        }
        Tensor::from_vec(out, &new_shape)
    }

    /// Numerically-stable softmax along `axis` (shape preserved).
    ///
    /// This is the operation computing the **coupling coefficients `k`**
    /// from the routing logits `b` in dynamic routing — group #3 of the
    /// ReD-CaNe operation taxonomy (Table III of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn softmax_axis(&self, axis: usize) -> Result<Tensor> {
        let nd = self.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let size = self.shape()[axis];
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let src = self.data();
        let mut out = vec![0.0f32; src.len()];
        if inner == 1 {
            // Trailing-axis softmax: each lane is a contiguous row
            // (the routing hot path, where the coupling softmax runs
            // over `[I, J, P=1]`). Same arithmetic, no index math.
            for (orow, srow) in out.chunks_exact_mut(size).zip(src.chunks_exact(size)) {
                let mut max = f32::NEG_INFINITY;
                for &v in srow {
                    max = max.max(v);
                }
                let mut denom = 0.0f32;
                for (o, &v) in orow.iter_mut().zip(srow) {
                    let e = (v - max).exp();
                    *o = e;
                    denom += e;
                }
                if denom > 0.0 {
                    for o in orow.iter_mut() {
                        *o /= denom;
                    }
                }
            }
            return Tensor::from_vec(out, self.shape());
        }
        for o in 0..outer {
            for i in 0..inner {
                // max for stability
                let mut max = f32::NEG_INFINITY;
                for a in 0..size {
                    max = max.max(src[(o * size + a) * inner + i]);
                }
                let mut denom = 0.0f32;
                for a in 0..size {
                    let e = (src[(o * size + a) * inner + i] - max).exp();
                    out[(o * size + a) * inner + i] = e;
                    denom += e;
                }
                if denom > 0.0 {
                    for a in 0..size {
                        out[(o * size + a) * inner + i] /= denom;
                    }
                }
            }
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Per-lane argmax along `axis`: returns a tensor with `axis` removed
    /// whose values are the winning indices (as `f32`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn argmax_axis(&self, axis: usize) -> Result<Tensor> {
        let nd = self.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let size = self.shape()[axis];
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut new_shape = self.shape().to_vec();
        new_shape.remove(axis);
        let src = self.data();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for i in 0..inner {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for a in 0..size {
                    let v = src[(o * size + a) * inner + i];
                    if v > best {
                        best = v;
                        best_idx = a;
                    }
                }
                out[o * inner + i] = best_idx as f32;
            }
        }
        Tensor::from_vec(out, &new_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn sum_axis_values() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32); // [[0,1,2],[3,4,5]]
        assert_eq!(t.sum_axis(0).unwrap().data(), &[3.0, 5.0, 7.0]);
        assert_eq!(t.sum_axis(1).unwrap().data(), &[3.0, 12.0]);
    }

    #[test]
    fn sum_axis_middle_of_rank3() {
        let t = Tensor::from_fn(&[2, 2, 2], |i| i as f32);
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        // [0+2, 1+3], [4+6, 5+7]
        assert_eq!(s.data(), &[2.0, 4.0, 10.0, 12.0]);
    }

    #[test]
    fn mean_axis_values() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32); // [[0,1],[2,3]]
        assert_eq!(t.mean_axis(0).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(t.mean_axis(1).unwrap().data(), &[0.5, 2.5]);
    }

    #[test]
    fn max_axis_values() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 0.0, 7.0], &[2, 2]).unwrap();
        assert_eq!(t.max_axis(0).unwrap().data(), &[3.0, 7.0]);
        assert_eq!(t.max_axis(1).unwrap().data(), &[3.0, 7.0]);
    }

    #[test]
    fn axis_out_of_range_rejected() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.sum_axis(2).is_err());
        assert!(t.softmax_axis(5).is_err());
        assert!(t.argmax_axis(2).is_err());
    }

    #[test]
    fn softmax_sums_to_one_along_axis() {
        let mut rng = TensorRng::from_seed(10);
        let t = rng.uniform(&[3, 4, 5], -5.0, 5.0);
        for axis in 0..3 {
            let s = t.softmax_axis(axis).unwrap();
            let sums = s.sum_axis(axis).unwrap();
            for &v in sums.data() {
                assert!((v - 1.0).abs() < 1e-5, "axis {axis}: sum {v}");
            }
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_slice(&[1000.0, 1001.0, 999.0]);
        let s = t.softmax_axis(0).unwrap();
        assert!(s.all_finite());
        assert!((s.sum() - 1.0).abs() < 1e-5);
        assert!(s.data()[1] > s.data()[0]);
    }

    #[test]
    fn softmax_uniform_logits_gives_uniform_probs() {
        let t = Tensor::zeros(&[4]);
        let s = t.softmax_axis(0).unwrap();
        for &v in s.data() {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_axis_picks_winner() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.4], &[2, 3]).unwrap();
        assert_eq!(t.argmax_axis(1).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(t.argmax_axis(0).unwrap().data(), &[1.0, 0.0, 0.0]);
    }
}
