//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking; a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy,
    /// then samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).sample(rng)
            }
        }
    )*};
}
impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategies!(f32, f64);

/// A fixed value; generated verbatim every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = TestRng::for_test("int_ranges");
        for _ in 0..1000 {
            let v = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (2u64..=8).sample(&mut rng);
            assert!((2..=8).contains(&w));
            let x = (250u8..).sample(&mut rng);
            assert!(x >= 250);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = TestRng::for_test("float_ranges");
        for _ in 0..1000 {
            let v = (-2.0f32..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (1usize..4).prop_flat_map(|n| (0u8..10).prop_map(move |v| vec![v; n]));
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }
}
