//! The `qdp` bench mode: measured vs noise-predicted accuracy drop,
//! per approximate multiplier.
//!
//! For every component of the axmul library this runs the trained
//! CapsNet **twice** on the same seeded test subset:
//!
//! 1. **Measured** — end-to-end inference through `redcane-qdp`'s
//!    8-bit datapath with the component's behavioral model serving
//!    every MAC multiply (ground truth);
//! 2. **Predicted** — the float network with the paper's Gaussian
//!    noise model (Eq. 3) at the MAC-output group, parameterized by
//!    the component's characterized `(NA, NM)` (the existing injector
//!    pipeline).
//!
//! One JSON line per component pairs the two accuracy drops — the
//! paper's validation loop (does injected noise predict real
//! approximate hardware?) closed in a single artifact.

use std::time::Instant;

use redcane::report::json::Value;
use redcane::{GaussianNoiseInjector, NoiseModel, NoiseTarget};
use redcane_axmul::library::MultiplierLibrary;
use redcane_axmul::InputDistribution;
use redcane_capsnet::inject::OpKind;
use redcane_capsnet::{
    evaluate, evaluate_clean, train, CapsModel, CapsNet, CapsNetConfig, TrainConfig,
};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{evaluate_quantized, MulLut, QCapsNet};
use redcane_tensor::TensorRng;

/// Configuration of a `qdp` comparison run; fully determined by its
/// fields, so equal configs give equal outcomes.
#[derive(Debug, Clone)]
pub struct QdpConfig {
    /// Which benchmark family to synthesize.
    pub benchmark: Benchmark,
    /// Master seed (dataset, init, training, characterization, noise).
    pub seed: u64,
    /// Training samples to generate.
    pub train: usize,
    /// Test samples to generate.
    pub test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Clean training inputs swept through the float network to
    /// calibrate the quantization ranges.
    pub calib_samples: usize,
    /// Test-subset size both the measured and predicted evaluations
    /// run on.
    pub eval_samples: usize,
    /// Restrict the sweep to these component names (`None` = the whole
    /// 35-entry library).
    pub components: Option<Vec<String>>,
    /// Samples per component `(NA, NM)` characterization.
    pub characterization_samples: usize,
}

impl QdpConfig {
    /// The full seeded sweep: every library component, a model trained
    /// well above chance, a few seconds per component in release.
    pub fn smoke() -> Self {
        QdpConfig {
            benchmark: Benchmark::MnistLike,
            seed: 1,
            train: 600,
            test: 150,
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            calib_samples: 64,
            eval_samples: 40,
            components: None,
            characterization_samples: 4000,
        }
    }

    /// CI-sized: the exact component plus one approximate component,
    /// scaled-down training.
    pub fn quick() -> Self {
        QdpConfig {
            train: 200,
            test: 60,
            epochs: 3,
            calib_samples: 32,
            eval_samples: 30,
            components: Some(vec!["mul8u_1JFF".to_string(), "mul8u_NGR".to_string()]),
            characterization_samples: 2000,
            ..QdpConfig::smoke()
        }
    }
}

impl Default for QdpConfig {
    fn default() -> Self {
        QdpConfig::smoke()
    }
}

/// One component's measured-vs-predicted comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct QdpRow {
    /// Library component name (`mul8u_…`).
    pub component: String,
    /// Component power in µW (library metadata).
    pub power_uw: f64,
    /// Characterized noise magnitude.
    pub nm: f64,
    /// Characterized noise average.
    pub na: f64,
    /// Accuracy of the quantized datapath running this component.
    pub measured_accuracy: f64,
    /// Accuracy of the float network under the component's noise model.
    pub predicted_accuracy: f64,
}

/// The result of one full `qdp` comparison run.
#[derive(Debug, Clone)]
pub struct QdpOutcome {
    /// The configuration that produced it.
    pub config: QdpConfig,
    /// Model display name.
    pub model_name: String,
    /// Float (accurate, full-precision) accuracy on the eval subset —
    /// the baseline both drops are measured against.
    pub float_accuracy: f64,
    /// Per-component rows, in library order.
    pub rows: Vec<QdpRow>,
    /// Total wall-clock seconds.
    pub total_s: f64,
}

impl QdpOutcome {
    /// Measured accuracy drop for `row`, in percentage points.
    pub fn measured_drop_pp(&self, row: &QdpRow) -> f64 {
        (self.float_accuracy - row.measured_accuracy) * 100.0
    }

    /// Noise-predicted accuracy drop for `row`, in percentage points.
    pub fn predicted_drop_pp(&self, row: &QdpRow) -> f64 {
        (self.float_accuracy - row.predicted_accuracy) * 100.0
    }
}

/// Runs dataset generation → training → calibration → the
/// per-component measured/predicted sweep, deterministically from
/// `cfg.seed`.
///
/// # Panics
///
/// Panics on empty train/test/eval settings, on a component name not
/// in the library, or if calibration fails (it cannot on finite
/// trained weights).
pub fn run_qdp(cfg: &QdpConfig) -> QdpOutcome {
    assert!(cfg.train > 0, "qdp needs training samples");
    assert!(
        cfg.test > 0 && cfg.eval_samples > 0,
        "qdp needs test samples"
    );
    assert!(cfg.calib_samples > 0, "qdp needs calibration samples");
    let t0 = Instant::now();

    let pair = generate(
        cfg.benchmark,
        &GenerateConfig {
            train: cfg.train,
            test: cfg.test,
            seed: cfg.seed,
        },
    );
    let (channels, height, _) = cfg.benchmark.geometry();
    let mut rng = TensorRng::from_seed(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let mut model = CapsNet::new(&CapsNetConfig::small(channels, height), &mut rng);
    train(
        &mut model,
        &pair.train,
        &TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            seed: cfg.seed ^ 0x71a1,
            verbose: false,
        },
    );

    let eval = pair.test.take(cfg.eval_samples);
    let float_accuracy = evaluate_clean(&model, &eval);
    eprintln!(
        "[qdp] trained {} — float baseline {:.3} on {} samples",
        model.name(),
        float_accuracy,
        eval.len()
    );

    let qmodel = QCapsNet::calibrated(
        &model,
        pair.train
            .samples
            .iter()
            .take(cfg.calib_samples)
            .map(|s| &s.image),
    )
    .expect("calibration succeeds on trained activations");

    let library = MultiplierLibrary::evo_approx_like();
    let entries: Vec<_> = match &cfg.components {
        Some(names) => names
            .iter()
            .map(|n| {
                library
                    .find(n)
                    .unwrap_or_else(|| panic!("unknown component '{n}'"))
            })
            .collect(),
        None => library.iter().collect(),
    };

    let mut rows = Vec::with_capacity(entries.len());
    for (idx, entry) in entries.iter().enumerate() {
        // Measured: the component inside every MAC of the datapath.
        let lut = MulLut::tabulate(entry.model());
        let measured_accuracy = evaluate_quantized(&qmodel, &eval, &lut);
        // Predicted: the paper's Gaussian model at the MAC-output
        // group, with this component's characterized (NA, NM).
        let np = entry.characterize(
            &InputDistribution::Uniform,
            cfg.characterization_samples,
            cfg.seed ^ 0xc0de,
        );
        let mut injector = GaussianNoiseInjector::new(
            NoiseModel::new(np.nm, np.na),
            NoiseTarget::group(OpKind::MacOutput),
            cfg.seed ^ 0x5eed ^ idx as u64,
        );
        let mut validator = model.clone();
        let predicted_accuracy = evaluate(&mut validator, &eval, &mut injector);
        eprintln!(
            "[qdp] {:<14} nm {:.5}  measured {:.3}  predicted {:.3}",
            entry.name(),
            np.nm,
            measured_accuracy,
            predicted_accuracy
        );
        rows.push(QdpRow {
            component: entry.name().to_string(),
            power_uw: entry.cost().power_uw,
            nm: np.nm,
            na: np.na,
            measured_accuracy,
            predicted_accuracy,
        });
    }

    QdpOutcome {
        config: cfg.clone(),
        model_name: model.name(),
        float_accuracy,
        rows,
        total_s: t0.elapsed().as_secs_f64(),
    }
}

/// Serializes one component's comparison as a self-contained JSON line.
pub fn qdp_row_to_json(outcome: &QdpOutcome, row: &QdpRow) -> Value {
    Value::Obj(vec![
        ("bench".into(), Value::from("qdp")),
        ("schema_version".into(), Value::from(1usize)),
        (
            "benchmark".into(),
            Value::from(outcome.config.benchmark.name()),
        ),
        // String: u64 seeds above 2^53 would round through a JSON number.
        ("seed".into(), Value::from(outcome.config.seed.to_string())),
        ("model".into(), Value::from(outcome.model_name.clone())),
        (
            "eval_samples".into(),
            Value::from(outcome.config.eval_samples),
        ),
        ("component".into(), Value::from(row.component.clone())),
        ("power_uw".into(), Value::from(row.power_uw)),
        ("nm".into(), Value::from(row.nm)),
        ("na".into(), Value::from(row.na)),
        ("float_accuracy".into(), Value::from(outcome.float_accuracy)),
        (
            "measured_accuracy".into(),
            Value::from(row.measured_accuracy),
        ),
        (
            "measured_drop_pp".into(),
            Value::from(outcome.measured_drop_pp(row)),
        ),
        (
            "predicted_accuracy".into(),
            Value::from(row.predicted_accuracy),
        ),
        (
            "predicted_drop_pp".into(),
            Value::from(outcome.predicted_drop_pp(row)),
        ),
    ])
}

/// All rows of an outcome as JSON lines, in library order.
pub fn qdp_to_json_lines(outcome: &QdpOutcome) -> Vec<Value> {
    outcome
        .rows
        .iter()
        .map(|row| qdp_row_to_json(outcome, row))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::report::json;

    fn tiny() -> QdpConfig {
        QdpConfig {
            train: 60,
            test: 24,
            epochs: 1,
            calib_samples: 8,
            eval_samples: 12,
            characterization_samples: 500,
            components: Some(vec!["mul8u_1JFF".to_string(), "mul8u_QKX".to_string()]),
            ..QdpConfig::smoke()
        }
    }

    #[test]
    fn qdp_emits_one_self_contained_line_per_component() {
        let outcome = run_qdp(&tiny());
        assert_eq!(outcome.rows.len(), 2);
        let lines = qdp_to_json_lines(&outcome);
        for line in &lines {
            let dumped = line.dump();
            assert!(!dumped.contains('\n'), "one line per component");
            let parsed = json::parse(&dumped).unwrap();
            for key in [
                "bench",
                "component",
                "float_accuracy",
                "measured_accuracy",
                "measured_drop_pp",
                "predicted_accuracy",
                "predicted_drop_pp",
                "nm",
                "power_uw",
            ] {
                assert!(parsed.get(key).is_some(), "missing key {key}");
            }
            assert_eq!(parsed.get("bench").unwrap().as_str().unwrap(), "qdp");
        }
    }

    #[test]
    fn exact_component_predicts_zero_drop_and_small_measured_drop() {
        let outcome = run_qdp(&tiny());
        let exact = &outcome.rows[0];
        assert_eq!(exact.component, "mul8u_1JFF");
        // NM = NA = 0 for the exact multiplier, so the noise model
        // predicts exactly the baseline.
        assert_eq!(exact.nm, 0.0);
        assert_eq!(exact.predicted_accuracy, outcome.float_accuracy);
        // The measured drop of the exact component is pure quantization
        // error — bounded, though the 1-epoch model is noisy.
        assert!(outcome.measured_drop_pp(exact).abs() <= 25.0);
    }

    #[test]
    fn equal_seeds_give_equal_rows() {
        let a = run_qdp(&tiny());
        let b = run_qdp(&tiny());
        assert_eq!(a.float_accuracy, b.float_accuracy);
        assert_eq!(a.rows, b.rows);
    }
}
