//! # redcane-serve
//!
//! A dynamic-batching inference serving engine over the quantized
//! approximate datapath.
//!
//! The rest of the workspace evaluates assignments *offline*: sweep a
//! dataset through [`QModel`](redcane_qdp::QModel) under one
//! [`DatapathAssignment`](redcane_qdp::DatapathAssignment) at a time.
//! This crate answers the deployment-side question the paper's Step 6
//! designs ultimately feed into: what latency and throughput does a
//! heterogeneous approximate datapath deliver when **many models and
//! assignments are served concurrently** from one process?
//!
//! Three pieces, std-only:
//!
//! - [`queue::RequestQueue`] — a mutex/condvar request queue with an
//!   **adaptive dynamic batcher**: a batch is cut when a served model
//!   accumulates `max_batch` requests or its oldest request exceeds
//!   `max_wait`, whichever first. With `max_wait = None` the batcher
//!   runs *fill-only*, making batch composition (and therefore every
//!   deterministic work counter) independent of wall clock and worker
//!   count.
//! - [`engine::Engine`] — resolves every served (model × assignment)
//!   pair once into a [`PreparedModel`](redcane_qdp::PreparedModel)
//!   template over one shared [`LutCache`](redcane_qdp::LutCache),
//!   then runs a `std::thread::scope` worker pool in which each
//!   worker clones the templates (owned model data, shared `Arc` LUT
//!   tables) and executes batches.
//! - [`engine::Submitter`] — the client handle: submit a request,
//!   get a channel the [`queue::Response`] arrives on.
//!
//! **Determinism contract**: every response's prediction is
//! bit-identical to a single-request `predict` on the same model and
//! assignment, for *any* batching of the request stream — batch fusion
//! in the datapath is bit-exact and the batcher only decides where
//! cuts fall. The property is proptested over random partitions in
//! `tests/batching_equivalence.rs` and exercised under concurrent
//! load by the `serve` bench binary.
#![forbid(unsafe_code)]
// Pedantic clippy is enforced crate-wide here (CI runs clippy with -D
// warnings): this crate sits on the serving/observability boundary where
// API polish (must_use, doc completeness) pays off most.
#![warn(clippy::pedantic)]

pub mod engine;
pub mod queue;

pub use engine::{Engine, ModelStats, ServeConfig, ServeStats, Submitter};
pub use queue::{Request, RequestQueue, Response};
