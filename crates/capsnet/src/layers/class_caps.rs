//! Fully-connected capsule layer with dynamic routing (the `DigitCaps` of
//! CapsNet / `ClassCaps` of DeepCaps).

use redcane_nn::Param;
use redcane_tensor::ops::gemm;
use redcane_tensor::{Tensor, TensorRng};

use crate::inject::{Injector, OpKind, OpSite};
use crate::routing::{
    dynamic_routing_backward_scratched, dynamic_routing_scratched, RoutingCache, RoutingScratch,
};

/// Maps `I` input capsules of dimension `D_in` to `J` class capsules of
/// dimension `D_out` through per-pair transformation matrices and
/// routing-by-agreement.
///
/// The transformation weight is `[I, J, D_out, D_in]`; vote
/// `û_{j|i} = W_ij · u_i` (a matrix–vector MAC per capsule pair).
#[derive(Debug, Clone)]
pub struct ClassCaps {
    weight: Param,
    i_caps: usize,
    j_caps: usize,
    d_in: usize,
    d_out: usize,
    iterations: usize,
    layer_index: usize,
    name: String,
    cache: Option<(Tensor, RoutingCache)>,
    scratch: RoutingScratch,
    /// Recycled vote buffer (reclaimed from the routing cache each
    /// backward); contents are stale between uses.
    votes_pool: Vec<f32>,
}

impl ClassCaps {
    /// Creates the layer with Xavier-style vote-matrix initialization.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        layer_index: usize,
        name: impl Into<String>,
        i_caps: usize,
        j_caps: usize,
        d_in: usize,
        d_out: usize,
        iterations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let a = (6.0 / (d_in + d_out) as f32).sqrt();
        let weight = rng.uniform(&[i_caps, j_caps, d_out, d_in], -a, a);
        ClassCaps {
            weight: Param::new(weight),
            i_caps,
            j_caps,
            d_in,
            d_out,
            iterations,
            layer_index,
            name: name.into(),
            cache: None,
            scratch: RoutingScratch::new(),
            votes_pool: Vec::new(),
        }
    }

    /// The layer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `(input capsules, class capsules, d_in, d_out)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.i_caps, self.j_caps, self.d_in, self.d_out)
    }

    /// Number of dynamic-routing iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Immutable weight access.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Replaces the weight (model loading).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_weight(&mut self, weight: Tensor) {
        assert_eq!(weight.shape(), self.weight.value.shape());
        self.weight.value = weight;
    }

    /// Forward pass: `u` is `[I, D_in]`; returns class capsules
    /// `[J, D_out]`.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn forward(&mut self, u: &Tensor, injector: &mut dyn Injector) -> Tensor {
        assert_eq!(u.shape(), [self.i_caps, self.d_in], "ClassCaps input");
        if injector.observes_inputs() {
            let mut copy = u.clone();
            injector.inject(
                &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacInput),
                &mut copy,
            );
        }
        // Inference-only callers never run backward; reclaim the
        // previous forward's vote and history buffers before the cache
        // drops them.
        if let Some((_, old)) = self.cache.take() {
            self.votes_pool = self.scratch.recycle(old);
        }
        // Votes û_{j|i} = W_ij u_i  ->  [I, J, D_out, P=1]: a batched
        // GEMM of I independent (J·D_out × D_in) · (D_in × 1) products,
        // overwriting the recycled (stale) vote buffer.
        let mut votes = std::mem::take(&mut self.votes_pool);
        votes.resize(self.i_caps * self.j_caps * self.d_out, 0.0);
        gemm::gemm_nn_batched_over(
            self.weight.value.data(),
            u.data(),
            &mut votes,
            self.i_caps,
            self.j_caps * self.d_out,
            self.d_in,
            1,
        );
        let mut votes =
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            Tensor::from_vec(votes, &[self.i_caps, self.j_caps, self.d_out, 1]).expect("sized");
        injector.inject(
            &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacOutput),
            &mut votes,
        );
        let cache = dynamic_routing_scratched(
            &mut self.scratch,
            votes,
            self.iterations,
            self.layer_index,
            &self.name,
            injector,
        );
        let v = cache
            .v
            .reshape(&[self.j_caps, self.d_out])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("drop P=1");
        self.cache = Some((u.clone(), cache));
        v
    }

    /// Backward pass: `dv` is `[J, D_out]`; returns `du` (`[I, D_in]`) and
    /// accumulates the weight gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dv: &Tensor) -> Tensor {
        let (u, cache) = self
            .cache
            .take()
            // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
            .expect("ClassCaps::backward before forward");
        let dv3 = dv
            .reshape(&[self.j_caps, self.d_out, 1])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("restore P=1");
        let dvotes = dynamic_routing_backward_scratched(&mut self.scratch, &cache, &dv3);
        let dvd = dvotes.data();
        let wd = self.weight.value.data();
        let ud = u.data();
        let gd = self.weight.grad.data_mut();
        let mut du = vec![0.0f32; ud.len()];
        let rows = self.j_caps * self.d_out;
        let wstride = rows * self.d_in;
        for i in 0..self.i_caps {
            let dv_i = &dvd[i * rows..(i + 1) * rows];
            let u_i = &ud[i * self.d_in..(i + 1) * self.d_in];
            // dW_i += dv_i · u_iᵀ — a rank-1 (k = 1) update, so writing
            // straight into the gradient accumulator matches the
            // build-then-accumulate order bit for bit.
            gemm::gemm_nn(
                dv_i,
                u_i,
                &mut gd[i * wstride..(i + 1) * wstride],
                rows,
                1,
                self.d_in,
            );
            // du_i = W_iᵀ · dv_i.
            gemm::gemm_tn(
                dv_i,
                &wd[i * wstride..(i + 1) * wstride],
                &mut du[i * self.d_in..(i + 1) * self.d_in],
                1,
                rows,
                self.d_in,
            );
        }
        self.votes_pool = self.scratch.recycle(cache);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(du, &[self.i_caps, self.d_in]).expect("sized")
    }

    /// Trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};

    #[test]
    fn forward_shape_and_bounded_lengths() {
        let mut rng = TensorRng::from_seed(140);
        let mut layer = ClassCaps::new(2, "ClassCaps", 12, 10, 4, 8, 3, &mut rng);
        let u = rng.uniform(&[12, 4], -1.0, 1.0);
        let v = layer.forward(&u, &mut NoInjection);
        assert_eq!(v.shape(), &[10, 8]);
        for row in v.data().chunks_exact(8) {
            let n: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(n < 1.0);
        }
    }

    #[test]
    fn taps_cover_all_four_groups() {
        let mut rng = TensorRng::from_seed(141);
        let mut layer = ClassCaps::new(7, "ClassCaps", 6, 4, 3, 4, 3, &mut rng);
        let u = rng.uniform(&[6, 3], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = layer.forward(&u, &mut rec);
        for kind in OpKind::injectable() {
            assert!(
                rec.visits.iter().any(|s| s.kind == kind),
                "missing tap {kind}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences_on_input() {
        // The routing backward is exact, so the analytic input gradient
        // must match central differences of the full routed loss
        // coordinate-wise.
        let mut rng = TensorRng::from_seed(142);
        let mut layer = ClassCaps::new(0, "CC", 5, 3, 4, 4, 3, &mut rng);
        let u = rng.uniform(&[5, 4], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 4], -1.0, 1.0);

        layer.params_mut()[0].zero_grad();
        let _ = layer.forward(&u, &mut NoInjection);
        let du = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        assert!(wgrad.sq_norm() > 0.0);

        let loss = |layer: &mut ClassCaps, u: &Tensor| -> f32 {
            layer
                .forward(u, &mut NoInjection)
                .mul(&coeffs)
                .unwrap()
                .sum()
        };
        let eps = 5e-3f32;
        for idx in 0..u.len() {
            let mut up = u.clone();
            up.data_mut()[idx] += eps;
            let mut um = u.clone();
            um.data_mut()[idx] -= eps;
            let num = (loss(&mut layer, &up) - loss(&mut layer, &um)) / (2.0 * eps);
            let ana = du.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "du[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(143);
        let mut layer = ClassCaps::new(0, "CC", 4, 3, 3, 3, 1, &mut rng);
        // With a single routing iteration the coefficients are constants
        // (uniform), so the detached gradient is exact.
        let u = rng.uniform(&[4, 3], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 3], -1.0, 1.0);
        layer.params_mut()[0].zero_grad();
        let _ = layer.forward(&u, &mut NoInjection);
        let _ = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 17, 52, 89, 107] {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp = layer
                .forward(&u, &mut NoInjection)
                .mul(&coeffs)
                .unwrap()
                .sum();
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm = layer
                .forward(&u, &mut NoInjection)
                .mul(&coeffs)
                .unwrap()
                .sum();
            layer.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = wgrad.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dW[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = TensorRng::from_seed(144);
        let mut layer = ClassCaps::new(0, "CC", 2, 2, 2, 2, 1, &mut rng);
        let _ = layer.backward(&Tensor::zeros(&[2, 2]));
    }
}
