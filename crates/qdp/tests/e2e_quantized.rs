//! End-to-end sanity: a trained CapsNet lowered onto the quantized
//! datapath with the **exact** multiplier must reproduce the float
//! network's test accuracy within quantization tolerance — the
//! acceptance bar for the datapath being a faithful 8-bit execution of
//! the same network rather than a different model.

use redcane_capsnet::{evaluate_clean, train, CapsNet, CapsNetConfig, TrainConfig};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{calibrate_ranges, evaluate_quantized, MulLut, QModel};
use redcane_tensor::TensorRng;

#[test]
fn quantized_exact_inference_matches_float_within_tolerance() {
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 200,
            test: 60,
            seed: 41,
        },
    );
    let mut rng = TensorRng::from_seed(4100);
    let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    train(
        &mut model,
        &pair.train,
        &TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 2e-3,
            seed: 9,
            verbose: false,
        },
    );
    let eval = pair.test.take(50);
    let float_acc = evaluate_clean(&model, &eval);
    assert!(
        float_acc > 0.3,
        "float baseline must train well above 10% chance, got {float_acc}"
    );

    // Calibrate on (clean) training inputs — the real input
    // distribution — then lower through the generic pipeline and run
    // the same test set through the 8-bit datapath with the exact
    // multiplier.
    let ranges = calibrate_ranges(
        &mut model,
        pair.train.samples.iter().take(32).map(|s| &s.image),
    )
    .expect("calibration succeeds on trained activations");
    let q = QModel::lower(&model, &ranges).expect("every site calibrated");
    let quant_acc = evaluate_quantized(&q, &eval, &MulLut::exact());

    // Quantization tolerance: the 8-bit datapath may flip a borderline
    // sample or two, but not more than 10 pp of the subset.
    let drop_pp = (float_acc - quant_acc) * 100.0;
    assert!(
        drop_pp.abs() <= 10.0,
        "quantized-exact accuracy {quant_acc} strays {drop_pp:.1} pp from float {float_acc}"
    );

    // Seeded determinism: rebuilding and re-running reproduces the
    // accuracy exactly.
    let q2 = QModel::calibrated(
        &mut model,
        pair.train.samples.iter().take(32).map(|s| &s.image),
    )
    .expect("calibration is deterministic");
    assert_eq!(quant_acc, evaluate_quantized(&q2, &eval, &MulLut::exact()));
}
