//! Property-based tests over the approximate component models.

use proptest::prelude::*;
use redcane_axmul::mult::{
    BrokenArrayMultiplier, CompressorMultiplier, DrumMultiplier, KulkarniMultiplier,
    MitchellLogMultiplier, Multiplier8, PerforatedMultiplier, TruncatedMultiplier,
};
use redcane_axmul::{Adder16, ExactMultiplier, LowerOrAdder};

proptest! {
    #[test]
    fn exact_matches_integer_multiply(a: u8, b: u8) {
        prop_assert_eq!(ExactMultiplier.multiply(a, b), a as u16 * b as u16);
    }

    #[test]
    fn all_under_approximators_never_overestimate(a: u8, b: u8, cut in 0u8..12) {
        let acc = a as u16 * b as u16;
        prop_assert!(TruncatedMultiplier::new(cut).multiply(a, b) <= acc);
        prop_assert!(BrokenArrayMultiplier::new(cut.min(10), 2).multiply(a, b) <= acc);
        prop_assert!(PerforatedMultiplier::new(0, (cut % 8).min(7)).multiply(a, b) <= acc);
        prop_assert!(CompressorMultiplier::new(cut).multiply(a, b) <= acc);
        prop_assert!(KulkarniMultiplier::new(cut % 5).multiply(a, b) <= acc);
    }

    #[test]
    fn mitchell_error_within_known_bound(a in 1u8.., b in 1u8..) {
        let acc = a as f64 * b as f64;
        let approx = MitchellLogMultiplier::new().multiply(a, b) as f64;
        // Mitchell under-estimates by at most ~11.1 %.
        prop_assert!(approx <= acc + 1.0);
        prop_assert!(approx >= acc * 0.885 - 2.0);
    }

    #[test]
    fn drum_zero_annihilates(k in 2u8..=8, v: u8) {
        let m = DrumMultiplier::new(k);
        prop_assert_eq!(m.multiply(0, v), 0);
        prop_assert_eq!(m.multiply(v, 0), 0);
    }

    #[test]
    fn multipliers_are_deterministic(a: u8, b: u8) {
        let m = KulkarniMultiplier::new(4);
        prop_assert_eq!(m.multiply(a, b), m.multiply(a, b));
    }

    #[test]
    fn truncated_is_monotone_in_cut(a: u8, b: u8, cut in 0u8..15) {
        // More truncation never yields a larger product.
        let less = TruncatedMultiplier::new(cut).multiply(a, b);
        let more = TruncatedMultiplier::new(cut + 1).multiply(a, b);
        prop_assert!(more <= less);
    }

    #[test]
    fn loa_error_bounded_by_2k(a: u16, b: u16, k in 0u8..12) {
        let exact = a.saturating_add(b);
        if exact < u16::MAX {
            let approx = LowerOrAdder::new(k).add(a, b);
            let err = (approx as i32 - exact as i32).abs();
            prop_assert!(err < (1i32 << k.max(1)), "k={k} err={err}");
        }
    }

    #[test]
    fn commutativity_of_symmetric_designs(a: u8, b: u8) {
        // Truncated / compressor / Kulkarni arrays are symmetric in their
        // operands; perforation and DRUM reduce per-operand so they are
        // symmetric too in our models.
        prop_assert_eq!(
            TruncatedMultiplier::new(5).multiply(a, b),
            TruncatedMultiplier::new(5).multiply(b, a)
        );
        prop_assert_eq!(
            KulkarniMultiplier::new(4).multiply(a, b),
            KulkarniMultiplier::new(4).multiply(b, a)
        );
        prop_assert_eq!(
            DrumMultiplier::new(4).multiply(a, b),
            DrumMultiplier::new(4).multiply(b, a)
        );
    }
}
