//! Dataset containers.

use redcane_tensor::Tensor;

/// One labeled image.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// `[C, H, W]` pixel tensor, values in `[0, 1]`.
    pub image: Tensor,
    /// Class index in `0..num_classes`.
    pub label: usize,
}

/// A labeled image dataset split.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable name (benchmark + split).
    pub name: String,
    /// Image channel count.
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over samples.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Returns the first `n` samples as a new dataset (useful for quick
    /// evaluations during sweeps).
    pub fn take(&self, n: usize) -> Dataset {
        Dataset {
            name: self.name.clone(),
            channels: self.channels,
            height: self.height,
            width: self.width,
            num_classes: self.num_classes,
            samples: self.samples.iter().take(n).cloned().collect(),
        }
    }
}

/// A train/test pair of the same benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPair {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "t".into(),
            channels: 1,
            height: 2,
            width: 2,
            num_classes: 2,
            samples: (0..4)
                .map(|i| Sample {
                    image: Tensor::full(&[1, 2, 2], i as f32),
                    label: i % 2,
                })
                .collect(),
        }
    }

    #[test]
    fn len_and_iter() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn take_truncates() {
        let d = tiny().take(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.samples[1].label, 1);
    }
}
