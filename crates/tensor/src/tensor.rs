//! The core [`Tensor`] type: an owned, contiguous, row-major `f32` array.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::{flat_index, num_elements};
use crate::Result;

/// An owned, contiguous, row-major N-dimensional array of `f32`.
///
/// `Tensor` is deliberately simple: no views, no broadcasting rules beyond
/// scalar ops — shape-changing operations copy. This keeps the CapsNet
/// stack easy to reason about and makes noise injection (which mutates
/// tensors in place) trivially safe.
///
/// # Example
///
/// ```
/// use redcane_tensor::Tensor;
///
/// # fn main() -> Result<(), redcane_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// let doubled = t.map(|v| v * 2.0);
/// assert_eq!(doubled.get(&[1, 1])?, 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctor

    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// let z = Tensor::zeros(&[2, 3]);
    /// assert_eq!(z.len(), 6);
    /// assert!(z.data().iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; num_elements(shape)],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; num_elements(shape)],
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if data.len() != num_elements(shape) {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = num_elements(shape);
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape (dimension sizes).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions (rank). Scalars have rank 0.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (some axis has size 0).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    ///
    /// This is the primary hook used by the noise-injection engine, which
    /// perturbs tensors in place.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any component is out of range.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[flat_index(&self.shape, index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any component is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = flat_index(&self.shape, index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Reads the element at a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= self.len()`.
    pub fn at(&self, flat: usize) -> f32 {
        self.data[flat]
    }

    // ------------------------------------------------------------- reshape

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        if num_elements(shape) != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Consumes the tensor, producing one with a new shape and the same
    /// elements, without copying the data buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Result<Self> {
        if num_elements(shape) != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape,
                to: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data,
        })
    }

    /// Returns a 1-D copy of the tensor.
    pub fn flattened(&self) -> Self {
        Tensor {
            shape: vec![self.data.len()],
            data: self.data.clone(),
        }
    }

    // ----------------------------------------------------------- map / zip

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "zip_map",
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    // ---------------------------------------------------------- arithmetic

    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other * scale` into `self` in place (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "add_scaled",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Returns a copy with every element multiplied by `scalar`.
    pub fn scale(&self, scalar: f32) -> Self {
        self.map(|v| v * scalar)
    }

    /// Returns a copy with `scalar` added to every element.
    pub fn add_scalar(&self, scalar: f32) -> Self {
        self.map(|v| v + scalar)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sum of squared elements (squared L2 norm of the flattened tensor).
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Index of the largest element in flat row-major order.
    ///
    /// Returns `None` for an empty tensor. Ties resolve to the first
    /// occurrence; NaN elements never win.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                None if !v.is_nan() => {
                    best = Some((i, v));
                }
                Some((_, bv)) if v > bv => best = Some((i, v)),
                _ => {}
            }
        }
        best.map(|(i, _)| i)
    }

    /// `true` if every element is finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor (`shape == [0]`).
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: vec![],
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ... {:.4}] ({} elements)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

impl std::ops::Add for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::add`] for a fallible
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        // lint: allow(panic) — documented operator contract: + panics on shape mismatch, like slice indexing
        Tensor::add(self, rhs).expect("operator + requires matching shapes")
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::sub`] for a fallible
    /// variant.
    fn sub(self, rhs: &Tensor) -> Tensor {
        // lint: allow(panic) — documented operator contract: - panics on shape mismatch, like slice indexing
        Tensor::sub(self, rhs).expect("operator - requires matching shapes")
    }
}

impl std::ops::Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.at(5), 9.0);
    }

    #[test]
    fn get_rejects_out_of_range() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.get(&[2, 0]).is_err());
        assert!(t.get(&[0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn into_reshaped_moves_without_copy() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let r = t.into_reshaped(&[1, 2]).unwrap();
        assert_eq!(r.shape(), &[1, 2]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10.0, 40.0]);
        assert_eq!((&a + &b).data(), &[11.0, 22.0]);
        assert_eq!((&b - &a).data(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn arithmetic_rejects_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled(&g, 0.5).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.sq_norm(), 14.0);
        assert_eq!(t.argmax(), Some(2));
    }

    #[test]
    fn argmax_ignores_nan_and_handles_empty() {
        let t = Tensor::from_slice(&[f32::NAN, 1.0, 0.5]);
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(Tensor::default().argmax(), None);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::INFINITY;
        assert!(!t.all_finite());
    }

    #[test]
    fn display_small_and_large() {
        let small = Tensor::from_slice(&[1.0, 2.0]);
        assert!(small.to_string().contains("[1.0, 2.0]"));
        let big = Tensor::zeros(&[100]);
        assert!(big.to_string().contains("100 elements"));
    }

    #[test]
    fn from_fn_indices() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.0);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]).unwrap(), 3.0);
    }
}
