//! End-to-end sanity for the paper's second architecture: a trained
//! DeepCaps — all 17 capsule layers, Caps3D routing included — lowered
//! through the architecture-generic pipeline onto the quantized
//! datapath with the **exact** multiplier must reproduce the float
//! network's predictions within quantization tolerance. This is the
//! acceptance bar for the generic lowering being a faithful 8-bit
//! execution of the same network rather than a different model.

use redcane_capsnet::{evaluate_clean, train, CapsModel, DeepCaps, DeepCapsConfig, TrainConfig};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{calibrate_ranges, evaluate_quantized, MulLut, QModel};
use redcane_tensor::TensorRng;

#[test]
fn quantized_deepcaps_matches_float_within_tolerance() {
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 300,
            test: 50,
            seed: 43,
        },
    );
    let mut rng = TensorRng::from_seed(4300);
    let mut model = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
    train(
        &mut model,
        &pair.train,
        &TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            seed: 9,
            verbose: false,
        },
    );
    let eval = pair.test.take(40);
    let float_acc = evaluate_clean(&model, &eval);
    assert!(
        float_acc > 0.2,
        "float DeepCaps must train above 10% chance, got {float_acc}"
    );

    // Calibrate on clean training inputs, lower every layer through
    // the generic pipeline, run the test subset on the 8-bit datapath.
    let ranges = calibrate_ranges(
        &mut model,
        pair.train.samples.iter().take(24).map(|s| &s.image),
    )
    .expect("calibration succeeds on trained activations");
    let q = QModel::lower(&model, &ranges).expect("every DeepCaps site calibrated");
    let lut = MulLut::exact();
    let quant_acc = evaluate_quantized(&q, &eval, &lut);

    // Prediction agreement: the quantized-exact datapath must agree
    // with the float network on the large majority of samples — the
    // 8-bit requantization through 17 layers may flip borderline
    // samples, but not change the model.
    let agree = eval
        .samples
        .iter()
        .filter(|s| q.predict(&s.image, &lut) == model.predict(&s.image))
        .count();
    let agreement = agree as f64 / eval.len() as f64;
    assert!(
        agreement >= 0.75,
        "quantized-exact DeepCaps agrees with float on only {agreement:.2} of samples"
    );

    // Accuracy tolerance, mirroring the CapsNet e2e bar.
    let drop_pp = (float_acc - quant_acc) * 100.0;
    assert!(
        drop_pp.abs() <= 15.0,
        "quantized-exact accuracy {quant_acc} strays {drop_pp:.1} pp from float {float_acc}"
    );

    // Seeded determinism: rebuilding and re-running reproduces the
    // accuracy exactly.
    let q2 = QModel::calibrated(
        &mut model,
        pair.train.samples.iter().take(24).map(|s| &s.image),
    )
    .expect("calibration is deterministic");
    assert_eq!(quant_acc, evaluate_quantized(&q2, &eval, &lut));
}
