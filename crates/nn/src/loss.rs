//! Loss functions: the CapsNet margin loss and softmax cross-entropy.

use redcane_tensor::Tensor;

/// Margin-loss hyperparameters (Sabour et al., Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginLossConfig {
    /// Positive margin `m+` (capsule length target for the true class).
    pub m_plus: f32,
    /// Negative margin `m-` (length ceiling for absent classes).
    pub m_minus: f32,
    /// Down-weighting `λ` of absent-class loss.
    pub lambda: f32,
}

impl Default for MarginLossConfig {
    /// The paper's standard values: `m+ = 0.9`, `m- = 0.1`, `λ = 0.5`.
    fn default() -> Self {
        MarginLossConfig {
            m_plus: 0.9,
            m_minus: 0.1,
            lambda: 0.5,
        }
    }
}

/// CapsNet margin loss over class-capsule lengths.
///
/// `lengths` holds `‖v_k‖` per class; `target` is the true class index.
/// Returns `(loss, d_loss/d_lengths)`.
///
/// ```text
/// L = Σ_k T_k max(0, m+ − ‖v_k‖)² + λ (1 − T_k) max(0, ‖v_k‖ − m−)²
/// ```
///
/// # Panics
///
/// Panics if `target` is out of range or `lengths` is not rank 1.
pub fn margin_loss(lengths: &Tensor, target: usize, cfg: MarginLossConfig) -> (f32, Tensor) {
    assert_eq!(lengths.ndim(), 1, "margin loss expects a length vector");
    let k = lengths.len();
    assert!(target < k, "target {target} out of range for {k} classes");
    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; k];
    for (i, &len) in lengths.data().iter().enumerate() {
        if i == target {
            let short = (cfg.m_plus - len).max(0.0);
            loss += short * short;
            grad[i] = -2.0 * short;
        } else {
            let long = (len - cfg.m_minus).max(0.0);
            loss += cfg.lambda * long * long;
            grad[i] = 2.0 * cfg.lambda * long;
        }
    }
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    (loss, Tensor::from_vec(grad, &[k]).expect("sized"))
}

/// Softmax cross-entropy over raw logits.
///
/// Returns `(loss, d_loss/d_logits)` for a single sample with true class
/// `target`.
///
/// # Panics
///
/// Panics if `target` is out of range or `logits` is not rank 1.
pub fn cross_entropy_loss(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 1, "cross entropy expects a logit vector");
    let k = logits.len();
    assert!(target < k, "target {target} out of range for {k} classes");
    // lint: allow(panic) — rank was checked by the caller/construction path
    let probs = logits.softmax_axis(0).expect("rank-1 softmax");
    let p_t = probs.data()[target].max(1e-12);
    let loss = -p_t.ln();
    let mut grad = probs.into_vec();
    grad[target] -= 1.0;
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    (loss, Tensor::from_vec(grad, &[k]).expect("sized"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_loss_zero_when_perfect() {
        // True class at length >= m+, others at length <= m-.
        let lengths = Tensor::from_slice(&[0.95, 0.05, 0.02]);
        let (loss, grad) = margin_loss(&lengths, 0, MarginLossConfig::default());
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn margin_loss_penalizes_short_true_class() {
        let lengths = Tensor::from_slice(&[0.5, 0.05]);
        let (loss, grad) = margin_loss(&lengths, 0, MarginLossConfig::default());
        assert!((loss - 0.16).abs() < 1e-6); // (0.9-0.5)^2
        assert!(grad.data()[0] < 0.0, "push true class longer");
        assert_eq!(grad.data()[1], 0.0);
    }

    #[test]
    fn margin_loss_penalizes_long_false_class() {
        let lengths = Tensor::from_slice(&[0.95, 0.6]);
        let (loss, grad) = margin_loss(&lengths, 0, MarginLossConfig::default());
        assert!((loss - 0.5 * 0.25).abs() < 1e-6); // λ (0.6-0.1)^2
        assert!(grad.data()[1] > 0.0, "push false class shorter");
    }

    #[test]
    fn margin_loss_gradient_matches_finite_difference() {
        let cfg = MarginLossConfig::default();
        let lengths = Tensor::from_slice(&[0.3, 0.7, 0.2, 0.55]);
        let (_, grad) = margin_loss(&lengths, 1, cfg);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = lengths.clone();
            lp.data_mut()[i] += eps;
            let mut lm = lengths.clone();
            lm.data_mut()[i] -= eps;
            let num = (margin_loss(&lp, 1, cfg).0 - margin_loss(&lm, 1, cfg).0) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    #[should_panic]
    fn margin_loss_rejects_bad_target() {
        let lengths = Tensor::from_slice(&[0.5, 0.5]);
        let _ = margin_loss(&lengths, 2, MarginLossConfig::default());
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let logits = Tensor::from_slice(&[10.0, -10.0]);
        let (loss, _) = cross_entropy_loss(&logits, 0);
        assert!(loss < 1e-3);
        let (loss_wrong, _) = cross_entropy_loss(&logits, 1);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_slice(&[0.2, -0.5, 1.0]);
        let (_, grad) = cross_entropy_loss(&logits, 2);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (cross_entropy_loss(&lp, 2).0 - cross_entropy_loss(&lm, 2).0) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let logits = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let (_, grad) = cross_entropy_loss(&logits, 0);
        assert!(grad.sum().abs() < 1e-6);
    }
}
