//! The five workspace invariant rules, run over one lexed file at a
//! time.
//!
//! | rule | contract |
//! |------|----------|
//! | `R1(determinism)` | no `HashMap`/`HashSet` in stable-output modules |
//! | `R2(clock)` | no `Instant`/`SystemTime` outside timing modules |
//! | `R3(panic)` | no `.unwrap()`/`.expect(`/panic macros in library code |
//! | `R4(trace)` | registered entry points carry a `trace::` hook |
//! | `R5(unsafe)` | `unsafe` only in files registered in `lint-allow.toml` |
//!
//! Every rule has an escape hatch: a `// lint: allow(<rule>) — reason`
//! marker on the offending line or the line above (R1–R3), or an entry
//! in the checked-in config (R4 exemptions, R5 files). Markers without
//! a written reason are themselves findings.

use crate::config::Config;
use crate::lexer::{Lexed, Marker, TokKind};

/// One rule violation, printed as `file:line: rule — message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Short rule tag (`R1(determinism)` …).
    pub rule: &'static str,
    /// Human-readable explanation with the repair options.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

const R1: &str = "R1(determinism)";
const R2: &str = "R2(clock)";
const R3: &str = "R3(panic)";
const R4: &str = "R4(trace)";
const R5: &str = "R5(unsafe)";

/// Lints one lexed file whose crate-level module path is `module`
/// (e.g. `qdp::calib` for `crates/qdp/src/calib.rs`).
pub fn lint_lexed(file: &str, module: &str, lexed: &Lexed, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let ctx = walk(lexed);
    check_markers(file, lexed, &mut findings);
    check_r1_r2_r3_r5(file, module, lexed, &ctx, cfg, &mut findings);
    check_r4(file, module, lexed, &ctx, cfg, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Per-token context derived from one structural walk: the nested
/// module path, whether the token sits inside a `#[cfg(test)]` module,
/// plus every `fn` item found.
struct WalkCtx {
    /// Parallel to the token stream: nested-module suffix ("", "reference", …).
    mod_suffix: Vec<String>,
    /// Parallel to the token stream: inside a `#[cfg(test)]` module?
    in_test: Vec<bool>,
    /// All function items (token indices refer to the lexed stream).
    fns: Vec<FnItem>,
}

/// One `fn` item located by the structural walk.
struct FnItem {
    /// Function name.
    name: String,
    /// 1-based line of the `fn` keyword.
    line: usize,
    /// `pub` without a `pub(...)` restriction?
    is_pub: bool,
    /// Nested-module suffix at the declaration site.
    mod_suffix: String,
    /// Inside a `#[cfg(test)]` module?
    in_test: bool,
    /// Token index range of the body, if the fn has one.
    body: Option<(usize, usize)>,
}

/// Walks the token stream once, tracking brace depth, named-module
/// nesting, `#[cfg(test)]` regions and function items.
fn walk(lexed: &Lexed) -> WalkCtx {
    let toks = &lexed.tokens;
    let mut ctx = WalkCtx {
        mod_suffix: Vec::with_capacity(toks.len()),
        in_test: Vec::with_capacity(toks.len()),
        fns: Vec::new(),
    };
    // (name, open depth, is_test) per nested named module.
    let mut mods: Vec<(String, usize, bool)> = Vec::new();
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        let suffix = mods
            .iter()
            .map(|(n, _, _)| n.as_str())
            .collect::<Vec<_>>()
            .join("::");
        let in_test = mods.iter().any(|(_, _, t)| *t);
        // Record context for this token before consuming it.
        let record = |ctx: &mut WalkCtx| {
            ctx.mod_suffix.push(suffix.clone());
            ctx.in_test.push(in_test);
        };
        match &toks[i].kind {
            TokKind::Punct('{') => {
                record(&mut ctx);
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                record(&mut ctx);
                depth = depth.saturating_sub(1);
                while mods.last().is_some_and(|(_, d, _)| *d > depth) {
                    mods.pop();
                }
                i += 1;
            }
            TokKind::Punct('#') if is_cfg_test_attr(toks, i) => {
                pending_cfg_test = true;
                record(&mut ctx);
                i += 1;
            }
            TokKind::Punct(';') => {
                pending_cfg_test = false;
                record(&mut ctx);
                i += 1;
            }
            TokKind::Ident(id) if id == "mod" => {
                record(&mut ctx);
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    if toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Punct('{')) {
                        mods.push((name.clone(), depth + 1, pending_cfg_test || in_test));
                    }
                }
                pending_cfg_test = false;
                i += 1;
            }
            TokKind::Ident(id) if id == "fn" => {
                record(&mut ctx);
                let item = scan_fn(toks, i, &suffix, in_test);
                ctx.fns.push(item);
                pending_cfg_test = false;
                i += 1;
            }
            _ => {
                record(&mut ctx);
                i += 1;
            }
        }
    }
    ctx
}

/// Is the `#` at `i` the start of a `#[cfg(test)]` attribute?
fn is_cfg_test_attr(toks: &[crate::lexer::Token], i: usize) -> bool {
    let want = ["[", "cfg", "(", "test", ")", "]"];
    for (off, w) in want.iter().enumerate() {
        let ok = match toks.get(i + 1 + off).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => s == w,
            Some(TokKind::Punct(c)) => w.len() == 1 && *c == w.chars().next().unwrap_or(' '),
            None => false,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Scans one `fn` item starting at token `i` (the `fn` keyword):
/// resolves the name, visibility and body token range.
fn scan_fn(toks: &[crate::lexer::Token], i: usize, suffix: &str, in_test: bool) -> FnItem {
    let name = match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokKind::Ident(n)) => n.clone(),
        _ => String::new(),
    };
    // Look back for `pub`, skipping qualifier keywords. A `pub(...)`
    // restriction does not count as public.
    let mut is_pub = false;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Ident(s)
                if ["const", "unsafe", "async", "extern", "C"].contains(&s.as_str()) =>
            {
                continue;
            }
            TokKind::Ident(s) if s == "pub" => {
                is_pub = toks.get(j + 1).map(|t| &t.kind) != Some(&TokKind::Punct('('));
                break;
            }
            TokKind::Punct(')') => {
                // Possibly the tail of `pub(crate)`: keep scanning past
                // one parenthesized group.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &toks[j].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            _ => break,
        }
    }
    // Find the body: the first `{` outside parens/brackets before any
    // item-terminating `;`.
    let mut body = None;
    let mut k = i + 2;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while let Some(t) = toks.get(k) {
        match &t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct(';') if paren == 0 && bracket == 0 => break,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                let mut depth = 1usize;
                let start = k + 1;
                let mut e = start;
                while let Some(t2) = toks.get(e) {
                    match &t2.kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                body = Some((start, e));
                break;
            }
            _ => {}
        }
        k += 1;
    }
    FnItem {
        name,
        line: toks[i].line,
        is_pub,
        mod_suffix: suffix.to_string(),
        in_test,
        body,
    }
}

/// Reports markers that carry no written reason.
fn check_markers(file: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for m in &lexed.markers {
        if m.reason.is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line: m.line,
                rule: R3,
                message: format!(
                    "lint: allow({}) marker has no reason — write `// lint: allow({}) — <why>`",
                    m.rule, m.rule
                ),
            });
        }
    }
}

/// Is a marker for `rule` active on `line` (same line or the line above)?
fn allowed(markers: &[Marker], rule: &str, line: usize) -> bool {
    markers
        .iter()
        .any(|m| m.rule == rule && !m.reason.is_empty() && (m.line == line || m.line + 1 == line))
}

/// Does `module` fall under any of `roots` (equal or a submodule)?
fn module_under(module: &str, roots: &[String]) -> bool {
    roots
        .iter()
        .any(|r| module == r || module.starts_with(&format!("{r}::")))
}

/// The token-pattern rules (R1, R2, R3, R5) in one stream pass.
fn check_r1_r2_r3_r5(
    file: &str,
    base_module: &str,
    lexed: &Lexed,
    ctx: &WalkCtx,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let crate_name = base_module.split("::").next().unwrap_or(base_module);
    let panic_exempt = cfg.panic_exempt_crates.iter().any(|c| c == crate_name);
    let unsafe_allowed = cfg.unsafe_files.iter().any(|f| f == file);
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        let module = if ctx.mod_suffix[i].is_empty() {
            base_module.to_string()
        } else {
            format!("{}::{}", base_module, ctx.mod_suffix[i])
        };
        let line = t.line;
        // R1 — nondeterministic containers in stable-output modules.
        if (id == "HashMap" || id == "HashSet")
            && module_under(&module, &cfg.stable_modules)
            && !allowed(&lexed.markers, "determinism", line)
        {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: R1,
                message: format!(
                    "{id} in stable-output module {module}: iteration order can reach \
                     byte-compared output — use BTreeMap/BTreeSet, or sort explicitly and \
                     mark the site with `// lint: allow(determinism) — <why sorted>`"
                ),
            });
        }
        // R2 — wall-clock reads outside the timing allowlist.
        if (id == "Instant" || id == "SystemTime")
            && !module_under(&module, &cfg.clock_modules)
            && !allowed(&lexed.markers, "clock", line)
        {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: R2,
                message: format!(
                    "{id} in module {module}: wall-clock reads may only live in the \
                     allowlisted timing modules ({}) so no timing can leak into stable \
                     outputs — move the timing or extend [clocks] in lint-allow.toml",
                    cfg.clock_modules.join(", ")
                ),
            });
        }
        // R3 — panicking library paths.
        if !panic_exempt && !ctx.in_test[i] {
            // `self.expect(…)` is a domain method (e.g. the JSON
            // parser's token matcher), never Option/Result::expect —
            // a receiver of type Option cannot be `self` in these
            // crates' impls.
            let dot_call = i > 0
                && toks[i - 1].kind == TokKind::Punct('.')
                && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct('('))
                && !(i >= 2 && toks[i - 2].kind.ident() == Some("self"));
            let bang = toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct('!'));
            let panicky = ((id == "unwrap" || id == "expect") && dot_call)
                || (bang
                    && ["panic", "unreachable", "todo", "unimplemented"].contains(&id.as_str()));
            if panicky && !allowed(&lexed.markers, "panic", line) {
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: R3,
                    message: format!(
                        "{id} in library module {module}: return the crate's error enum \
                         instead, or justify with `// lint: allow(panic) — <reason>`"
                    ),
                });
            }
        }
        // R5 — unregistered unsafe.
        if id == "unsafe"
            && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct('{'))
            && !unsafe_allowed
        {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: R5,
                message: format!(
                    "unsafe block in {file} is not registered — add the file to \
                     [unsafe] files in lint-allow.toml (with review) or remove the block"
                ),
            });
        }
    }
}

/// R4 — registered entry points must carry a trace hook.
fn check_r4(
    file: &str,
    base_module: &str,
    lexed: &Lexed,
    ctx: &WalkCtx,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    for f in &ctx.fns {
        if f.in_test || !f.is_pub || f.name.is_empty() {
            continue;
        }
        let module = if f.mod_suffix.is_empty() {
            base_module.to_string()
        } else {
            format!("{}::{}", base_module, f.mod_suffix)
        };
        let required = cfg.traced.iter().any(|rule| {
            rule.module == module
                && rule.functions.iter().any(|pat| {
                    pat == "*"
                        || pat
                            .strip_suffix('*')
                            .map_or(pat == &f.name, |prefix| f.name.starts_with(prefix))
                })
        });
        if !required {
            continue;
        }
        if cfg
            .trace_exempt
            .iter()
            .any(|e| *e == format!("{module}::{}", f.name))
        {
            continue;
        }
        let Some((start, end)) = f.body else {
            continue;
        };
        if !body_has_hook(&lexed.tokens, start, end, cfg) {
            findings.push(Finding {
                file: file.to_string(),
                line: f.line,
                rule: R4,
                message: format!(
                    "pub fn {} in {module} is a registered logical-work entry point but \
                     contains no trace hook — add a `trace::` counter/span (or delegate \
                     to a hooked entry point listed under [traced] delegates)",
                    f.name
                ),
            });
        }
    }
}

/// Does the body token range contain a trace hook (`trace::…` or a
/// `trace_`-prefixed helper) or a call to a registered delegate?
fn body_has_hook(toks: &[crate::lexer::Token], start: usize, end: usize, cfg: &Config) -> bool {
    let end = end.min(toks.len());
    for i in start..end {
        let Some(id) = toks[i].kind.ident() else {
            continue;
        };
        if id == "trace" || id.starts_with("trace_") {
            return true;
        }
        if cfg.trace_delegates.iter().any(|d| d == id) {
            let next = toks.get(i + 1).map(|t| &t.kind);
            if next == Some(&TokKind::Punct('(')) || next == Some(&TokKind::Punct(':')) {
                return true;
            }
        }
    }
    false
}
