//! The serving determinism contract, property-tested on both
//! architectures:
//!
//! 1. **Any partition** of a seeded request stream into batches gives
//!    bit-for-bit the same per-request predictions as sequential
//!    single-request `predict` — random cut points straight into the
//!    prepared program, no queue involved.
//! 2. **The engine end-to-end**: under random batching knobs (batch
//!    ceiling, worker count, fill-only vs zero-deadline adaptive) and
//!    interleaved submission across (arch × assignment) pairs, every
//!    response matches the single-request oracle. Scheduling decides
//!    where cuts fall; it must never change arithmetic.

use std::sync::mpsc::channel;
use std::sync::OnceLock;

use proptest::prelude::*;
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::{CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig};
use redcane_qdp::{DatapathAssignment, PreparedModel, QModel};
use redcane_serve::{Engine, ServeConfig};
use redcane_tensor::{Tensor, TensorRng};

/// Components served by these tests: the exact baseline and the
/// crudest DRUM approximation (maximally different arithmetic).
const COMPONENTS: [&str; 2] = ["mul8u_1JFF", "mul8u_QKX"];

fn shared_luts() -> &'static LutCache {
    static LUTS: OnceLock<LutCache> = OnceLock::new();
    LUTS.get_or_init(|| {
        LutCache::for_components(&MultiplierLibrary::evo_approx_like(), COMPONENTS)
            .expect("library components")
    })
}

/// Both small architectures, lowered once and self-calibrated.
fn lowered_models() -> &'static [QModel; 2] {
    static MODELS: OnceLock<[QModel; 2]> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut rng = TensorRng::from_seed(46_03);
        let images: Vec<Tensor> = (0..3)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let mut capsnet = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let mut deepcaps = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let caps = QModel::calibrated(&mut capsnet, images.iter()).expect("lower CapsNet");
        let deep = QModel::calibrated(&mut deepcaps, images.iter()).expect("lower DeepCaps");
        [caps, deep]
    })
}

/// One engine serving every (arch × component) pair.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let specs = lowered_models()
            .iter()
            .flat_map(|q| {
                COMPONENTS.iter().map(move |c| {
                    (
                        format!("{}/{}", q.arch(), c),
                        q.clone(),
                        DatapathAssignment::uniform(*c),
                    )
                })
            })
            .collect();
        Engine::new(specs, shared_luts()).expect("all components in the cache")
    })
}

fn images(rng: &mut TensorRng, count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
        .collect()
}

proptest! {
    /// Property 1: random cut points over the stream — every chunking
    /// of `forward_batch` reproduces the per-sample predictions.
    #[test]
    fn any_partition_matches_sequential_predict(
        seed in 0u64..500,
        arch in 0usize..2,
        component in 0usize..2,
    ) {
        let mut rng = TensorRng::from_seed(seed.wrapping_mul(0x9e37_79b9) + 11);
        let inputs = images(&mut rng, 6);
        let prepared = PreparedModel::new(
            lowered_models()[arch].clone(),
            &DatapathAssignment::uniform(COMPONENTS[component]),
            shared_luts(),
        )
        .expect("component in the cache");

        let sequential: Vec<usize> = inputs
            .iter()
            .map(|x| prepared.predict_batch(&[x])[0])
            .collect();

        // A random partition: each element independently opens a new
        // chunk, so every composition from singletons to one big batch
        // is reachable.
        let mut chunks: Vec<Vec<&Tensor>> = Vec::new();
        for input in &inputs {
            let cut = rng.uniform(&[1], 0.0, 1.0).data()[0] < 0.4;
            if cut || chunks.is_empty() {
                chunks.push(Vec::new());
            }
            chunks.last_mut().expect("non-empty").push(input);
        }
        let batched: Vec<usize> = chunks
            .iter()
            .flat_map(|chunk| prepared.predict_batch(chunk))
            .collect();
        prop_assert_eq!(
            &batched, &sequential,
            "partition into {} chunks changed predictions", chunks.len()
        );
    }

    /// Property 2: the engine under random knobs — every response is
    /// bit-identical to the single-request oracle.
    #[test]
    fn engine_matches_oracle_under_random_knobs(
        seed in 0u64..500,
        max_batch in 1usize..6,
        workers in 1usize..5,
        adaptive in 0usize..2,
    ) {
        let engine = engine();
        let mut rng = TensorRng::from_seed(seed.wrapping_mul(0x51ed_270b) + 5);
        let inputs = images(&mut rng, 8);
        // Interleave requests across all four served models.
        let targets: Vec<usize> = (0..inputs.len())
            .map(|i| {
                let r = rng.uniform(&[1], 0.0, 4.0).data()[0] as usize;
                (r + i) % engine.models()
            })
            .collect();
        let config = ServeConfig {
            workers,
            max_batch,
            // Zero deadline = cut whatever is pending immediately:
            // the most timing-dependent composition possible.
            max_wait: (adaptive == 1).then(std::time::Duration::default),
        };
        // Submit inside the drive closure, drain after `serve`
        // returns: fill-only tails only flush at close.
        let (rx, stats) = engine.serve(&config, |submitter| {
            let (tx, rx) = channel();
            for (input, &model) in inputs.iter().zip(&targets) {
                let _ = submitter.submit_with(model, input.clone(), tx.clone());
            }
            rx
        });
        let responses: Vec<_> = rx.into_iter().collect();
        prop_assert_eq!(responses.len(), inputs.len());
        prop_assert_eq!(stats.items(), inputs.len() as u64);
        prop_assert!(stats.max_batch() <= max_batch as u64);
        for response in responses {
            let i = response.seq as usize;
            prop_assert_eq!(response.model, targets[i]);
            prop_assert_eq!(
                response.prediction,
                engine.predict_one(targets[i], &inputs[i]),
                "request {} on {:?} diverged from single-request predict",
                i,
                engine.labels()[targets[i]]
            );
        }
    }
}
