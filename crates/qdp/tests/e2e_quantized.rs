//! End-to-end sanity: a trained CapsNet lowered onto the quantized
//! datapath, scored through the [`QuantMeasured`] backend under the
//! **exact**-multiplier uniform assignment, must reproduce the float
//! network's predictions — the acceptance bar for the datapath being a
//! faithful 8-bit execution of the same network rather than a
//! different model.

use redcane::datapath::AccuracyBackend;
use redcane_axmul::MultiplierLibrary;
use redcane_capsnet::{evaluate_clean, train, CapsModel, CapsNet, CapsNetConfig, TrainConfig};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{DatapathAssignment, QuantMeasured};
use redcane_tensor::TensorRng;

#[test]
fn quantized_exact_inference_matches_float_within_tolerance() {
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 200,
            test: 60,
            seed: 45,
        },
    );
    let mut rng = TensorRng::from_seed(4500);
    let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    train(
        &mut model,
        &pair.train,
        &TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 2e-3,
            seed: 9,
            verbose: false,
        },
    );
    let eval = pair.test.take(50);
    let float_acc = evaluate_clean(&model, &eval);
    assert!(
        float_acc > 0.3,
        "float baseline must train well above 10% chance, got {float_acc}"
    );

    // Calibrate on (clean) training inputs — the real input
    // distribution — then lower through the generic pipeline and score
    // the same test set through the measured backend with the exact
    // multiplier at every site.
    let library = MultiplierLibrary::evo_approx_like();
    let backend = QuantMeasured::calibrated(
        &mut model,
        pair.train.samples.iter().take(32).map(|s| &s.image),
        &library,
    )
    .expect("calibration succeeds on trained activations");
    let exact = DatapathAssignment::uniform("mul8u_1JFF");
    let quant_acc = backend.evaluate(&model, &eval, &exact).unwrap();

    // On this seeded run the 8-bit exact datapath reproduces the float
    // predictions bit for bit: same label on every sample, so the same
    // accuracy.
    for sample in &eval.samples {
        assert_eq!(
            backend
                .qmodel()
                .predict(&sample.image, &exact, backend.luts())
                .unwrap(),
            model.predict(&sample.image),
            "quantized-exact prediction diverges from float"
        );
    }
    assert_eq!(quant_acc, float_acc);

    // Seeded determinism: rebuilding and re-running reproduces the
    // accuracy exactly.
    let backend2 = QuantMeasured::calibrated(
        &mut model,
        pair.train.samples.iter().take(32).map(|s| &s.image),
        &library,
    )
    .expect("calibration is deterministic");
    assert_eq!(quant_acc, backend2.evaluate(&model, &eval, &exact).unwrap());
}
