//! The paper's noise-injection error model (Sec. III-C).
//!
//! An approximate component's accumulated arithmetic error is modeled as
//! Gaussian noise scaled by the value range of the attacked tensor:
//!
//! ```text
//! ΔX = Gauss(shape, NM · R(X)) + NA · R(X)      (Eq. 3)
//! X' = X + ΔX                                    (Eq. 4)
//! ```
//!
//! [`GaussianNoiseInjector`] applies one `(NM, NA)` pair to every site
//! matched by a [`NoiseTarget`] filter; [`PerSiteNoiseInjector`] applies a
//! different pair per site (Step-6 validation, where each operation got
//! its own approximate component).
//!
//! This is one of two error-model families sharing the `(layer, op
//! kind, in-routing)` site keys: Gaussian noise here models smooth
//! approximation error, while [`crate::faults`] models discrete
//! hardware failures (bit flips, stuck-at lanes, dead outputs) at the
//! same sites, scored through the same
//! [`AccuracyBackend`](crate::datapath::AccuracyBackend) trait.

use redcane_capsnet::inject::{Injector, OpKind, OpSite};
use redcane_tensor::{Tensor, TensorRng};
use serde::{Deserialize, Serialize};

/// One `(NM, NA)` noise parameterization (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Noise magnitude: std of the Gaussian relative to `R(X)`.
    pub nm: f64,
    /// Noise average: mean of the Gaussian relative to `R(X)`.
    pub na: f64,
}

impl NoiseModel {
    /// Creates a noise model; `nm` must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite `nm`.
    pub fn new(nm: f64, na: f64) -> Self {
        assert!(nm >= 0.0 && nm.is_finite(), "NM must be ≥ 0, got {nm}");
        assert!(na.is_finite(), "NA must be finite");
        NoiseModel { nm, na }
    }

    /// The zero-noise model.
    pub fn none() -> Self {
        NoiseModel { nm: 0.0, na: 0.0 }
    }

    /// Applies Eqs. 3–4 to `tensor` in place.
    ///
    /// A constant tensor (`R(X) = 0`) receives no noise — there is no
    /// range to scale by, matching the paper's formulation.
    pub fn apply(&self, tensor: &mut Tensor, rng: &mut TensorRng) {
        if self.nm == 0.0 && self.na == 0.0 {
            return;
        }
        let range = tensor.range();
        if range <= 0.0 {
            return;
        }
        let std = (self.nm * range as f64) as f32;
        let mean = (self.na * range as f64) as f32;
        rng.perturb_normal(tensor, mean, std);
    }
}

/// Selects which operation sites a noise injector perturbs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseTarget {
    /// Operation kinds to attack (typically one of the four groups).
    pub kinds: Vec<OpKind>,
    /// If set, only sites whose layer name matches exactly.
    pub layer_name: Option<String>,
}

impl NoiseTarget {
    /// Targets every site of the given kind (group-wise injection).
    pub fn group(kind: OpKind) -> Self {
        NoiseTarget {
            kinds: vec![kind],
            layer_name: None,
        }
    }

    /// Targets one kind within one named layer (layer-wise injection).
    pub fn layer(kind: OpKind, layer_name: impl Into<String>) -> Self {
        NoiseTarget {
            kinds: vec![kind],
            layer_name: Some(layer_name.into()),
        }
    }

    /// Targets every injectable site (whole-network injection).
    pub fn everything() -> Self {
        NoiseTarget {
            kinds: OpKind::injectable().to_vec(),
            layer_name: None,
        }
    }

    /// Whether `site` matches this target.
    pub fn matches(&self, site: &OpSite) -> bool {
        if !self.kinds.contains(&site.kind) {
            return false;
        }
        match &self.layer_name {
            Some(name) => &site.layer_name == name,
            None => true,
        }
    }
}

/// Injects one Gaussian noise model into every matching site.
#[derive(Debug, Clone)]
pub struct GaussianNoiseInjector {
    /// The noise parameterization.
    pub model: NoiseModel,
    /// The site filter.
    pub target: NoiseTarget,
    rng: TensorRng,
    /// Number of tensors perturbed so far (diagnostics).
    pub injections: u64,
}

impl GaussianNoiseInjector {
    /// Creates an injector with its own seeded noise stream.
    pub fn new(model: NoiseModel, target: NoiseTarget, seed: u64) -> Self {
        GaussianNoiseInjector {
            model,
            target,
            rng: TensorRng::from_seed(seed),
            injections: 0,
        }
    }
}

impl Injector for GaussianNoiseInjector {
    fn inject(&mut self, site: &OpSite, tensor: &mut Tensor) {
        if self.target.matches(site) {
            self.model.apply(tensor, &mut self.rng);
            self.injections += 1;
        }
    }
}

/// Injects a *different* noise model per `(layer, kind)` — the validation
/// mode of Step 6, where each operation runs on its own selected
/// approximate component.
#[derive(Debug, Clone)]
pub struct PerSiteNoiseInjector {
    assignments: Vec<(NoiseTarget, NoiseModel)>,
    rng: TensorRng,
    /// Number of tensors perturbed so far (diagnostics).
    pub injections: u64,
}

impl PerSiteNoiseInjector {
    /// Creates the injector from `(target, model)` pairs. The first
    /// matching target wins.
    pub fn new(assignments: Vec<(NoiseTarget, NoiseModel)>, seed: u64) -> Self {
        PerSiteNoiseInjector {
            assignments,
            rng: TensorRng::from_seed(seed),
            injections: 0,
        }
    }
}

impl Injector for PerSiteNoiseInjector {
    fn inject(&mut self, site: &OpSite, tensor: &mut Tensor) {
        if let Some((_, model)) = self.assignments.iter().find(|(t, _)| t.matches(site)) {
            model.apply(tensor, &mut self.rng);
            self.injections += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(kind: OpKind, layer: &str) -> OpSite {
        OpSite::new(0, layer, kind)
    }

    #[test]
    fn noise_scales_with_range() {
        let model = NoiseModel::new(0.1, 0.0);
        let mut rng = TensorRng::from_seed(1);
        let mut narrow = Tensor::from_fn(&[10_000], |i| (i % 2) as f32); // R = 1
        let mut wide = Tensor::from_fn(&[10_000], |i| (i % 2) as f32 * 100.0); // R = 100
        model.apply(&mut narrow, &mut rng);
        model.apply(&mut wide, &mut rng);
        let narrow_dev: f32 = narrow
            .data()
            .iter()
            .enumerate()
            .map(|(i, v)| (v - (i % 2) as f32).powi(2))
            .sum::<f32>()
            / 10_000.0;
        let wide_dev: f32 = wide
            .data()
            .iter()
            .enumerate()
            .map(|(i, v)| (v - (i % 2) as f32 * 100.0).powi(2))
            .sum::<f32>()
            / 10_000.0;
        assert!((narrow_dev.sqrt() - 0.1).abs() < 0.01);
        assert!((wide_dev.sqrt() - 10.0).abs() < 1.0);
    }

    #[test]
    fn na_shifts_mean() {
        let model = NoiseModel::new(0.0001, 0.5);
        let mut rng = TensorRng::from_seed(2);
        let mut t = Tensor::from_fn(&[10_000], |i| (i % 2) as f32); // mean 0.5, R 1
        model.apply(&mut t, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.01, "mean shifted by NA*R = 0.5");
    }

    #[test]
    fn constant_tensor_unperturbed() {
        let model = NoiseModel::new(0.5, 0.5);
        let mut rng = TensorRng::from_seed(3);
        let mut t = Tensor::full(&[100], 3.0);
        model.apply(&mut t, &mut rng);
        assert!(t.data().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = TensorRng::from_seed(4);
        let mut t = Tensor::from_slice(&[1.0, 2.0]);
        NoiseModel::none().apply(&mut t, &mut rng);
        assert_eq!(t.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn negative_nm_rejected() {
        let _ = NoiseModel::new(-0.1, 0.0);
    }

    #[test]
    fn target_matching() {
        let group = NoiseTarget::group(OpKind::Softmax);
        assert!(group.matches(&site(OpKind::Softmax, "ClassCaps")));
        assert!(!group.matches(&site(OpKind::MacOutput, "ClassCaps")));
        let layer = NoiseTarget::layer(OpKind::MacOutput, "Conv1");
        assert!(layer.matches(&site(OpKind::MacOutput, "Conv1")));
        assert!(!layer.matches(&site(OpKind::MacOutput, "Conv2")));
        assert!(NoiseTarget::everything().matches(&site(OpKind::Activation, "x")));
        assert!(!NoiseTarget::everything().matches(&site(OpKind::MacInput, "x")));
    }

    #[test]
    fn injector_counts_and_respects_filter() {
        let mut inj = GaussianNoiseInjector::new(
            NoiseModel::new(0.1, 0.0),
            NoiseTarget::group(OpKind::Activation),
            7,
        );
        let mut t = Tensor::from_fn(&[100], |i| i as f32);
        let untouched = t.clone();
        inj.inject(&site(OpKind::MacOutput, "a"), &mut t);
        assert_eq!(t, untouched);
        assert_eq!(inj.injections, 0);
        inj.inject(&site(OpKind::Activation, "a"), &mut t);
        assert_ne!(t, untouched);
        assert_eq!(inj.injections, 1);
    }

    #[test]
    fn per_site_injector_first_match_wins() {
        let heavy = NoiseModel::new(0.9, 0.0);
        let none = NoiseModel::none();
        let mut inj = PerSiteNoiseInjector::new(
            vec![
                (NoiseTarget::layer(OpKind::MacOutput, "Conv1"), none),
                (NoiseTarget::group(OpKind::MacOutput), heavy),
            ],
            5,
        );
        let mut t = Tensor::from_fn(&[1000], |i| i as f32);
        let before = t.clone();
        inj.inject(&site(OpKind::MacOutput, "Conv1"), &mut t);
        assert_eq!(t, before, "Conv1 assigned the exact component");
        inj.inject(&site(OpKind::MacOutput, "Conv2"), &mut t);
        assert_ne!(t, before, "other layers get the heavy component");
        assert_eq!(inj.injections, 2);
    }
}
