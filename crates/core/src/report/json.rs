//! A minimal, dependency-free JSON value type with serialization and
//! parsing.
//!
//! The workspace builds offline (the `serde` dependency is a no-op
//! shim), so report serialization is hand-rolled. This module is the
//! single JSON implementation shared by the report layer, the bench
//! harness and the tests that parse their output back.

use std::fmt;

/// A JSON value. Objects preserve insertion order so serialized reports
/// are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A copy of this object without the named top-level keys; other
    /// variants are returned unchanged. This is the single redaction
    /// primitive behind `--no-timings`-style stable outputs: strip the
    /// volatile sections, keep field order for everything else, so two
    /// redacted documents from identical work are byte-identical.
    pub fn without_keys(&self, keys: &[&str]) -> Value {
        match self {
            Value::Obj(fields) => Value::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Serializes to compact single-line JSON. Non-finite numbers become
    /// `null` (JSON has no NaN/infinity).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips through f64.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, requiring it to span the whole input
/// (modulo surrounding whitespace).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for report
                            // payloads; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    // lint: allow(panic) — non-empty by the preceding check
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // lint: allow(panic) — the scanner only accumulated ASCII digit/sign bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_then_parse_round_trips() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("CapsNet \"small\"".into())),
            ("accuracy".into(), Value::Num(0.925)),
            ("count".into(), Value::Num(42.0)),
            ("resilient".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
            (
                "curve".into(),
                Value::Arr(vec![Value::Num(0.5), Value::Num(-1.25e-3)]),
            ),
        ]);
        let text = v.dump();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).dump(), "42");
        assert_eq!(Value::Num(-7.0).dump(), "-7");
        assert_eq!(Value::Num(0.5).dump(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).dump(), "null");
        assert_eq!(Value::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\" : [ 1 , true , \"x\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn without_keys_strips_only_named_top_level_fields() {
        let v = parse("{\"a\":1,\"timings\":{\"x\":2},\"b\":{\"timings\":3}}").unwrap();
        let stripped = v.without_keys(&["timings", "absent"]);
        assert_eq!(stripped.dump(), "{\"a\":1,\"b\":{\"timings\":3}}");
        // Field order of the survivors is preserved, and non-objects
        // pass through untouched.
        assert_eq!(Value::Num(1.0).without_keys(&["a"]), Value::Num(1.0));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse("{\"x\":3.5,\"s\":\"hi\"}").unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert!(v.get("nope").is_none());
        assert!(Value::Null.get("x").is_none());
    }
}
