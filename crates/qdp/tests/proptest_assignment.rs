//! Property tests for the heterogeneous-datapath evaluation API:
//!
//! 1. `QuantMeasured` under the **exact** uniform assignment equals the
//!    plain float predictions — on both architectures, for any seed:
//!    every prediction matches unless the float network itself was
//!    nearly tied between the two classes (quantization can only flip
//!    ties, never change the model).
//! 2. A **mixed** two-multiplier assignment is a genuinely different
//!    datapath: its outputs differ from *either* uniform run.
//! 3. `DatapathAssignment::from_design` covers every multiplier site a
//!    lowered program executes, and removing a layer's assignment makes
//!    evaluation fail loudly with the missing site.

use proptest::prelude::*;
use redcane::datapath::{BackendError, DatapathAssignment};
use redcane::{extract_groups, ApproxDesign, Assignment, Group};
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::inject::OpKind;
use redcane_capsnet::{CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig, NoInjection};
use redcane_qdp::{calibrate_ranges, QModel, QuantMeasured};
use redcane_tensor::{Tensor, TensorRng};

/// The components these tests exercise, tabulated once across every
/// proptest case (tabulating 64 KiB tables per case dominates
/// otherwise).
fn shared_luts() -> &'static LutCache {
    static LUTS: std::sync::OnceLock<LutCache> = std::sync::OnceLock::new();
    LUTS.get_or_init(|| {
        LutCache::for_components(
            &MultiplierLibrary::evo_approx_like(),
            ["mul8u_1JFF", "mul8u_QKX", "mul8u_NGR"],
        )
        .expect("library components")
    })
}

/// Lowers a freshly initialized model, calibrated on its own images.
fn lowered(model: &mut dyn CapsModel, images: &[Tensor]) -> QModel {
    let ranges = calibrate_ranges(model, images.iter()).expect("finite activations");
    QModel::lower(model, &ranges).expect("every site calibrated")
}

fn images(rng: &mut TensorRng, count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
        .collect()
}

/// The two float lengths competing at an argmax disagreement.
fn float_margin(lengths: &Tensor, a: usize, b: usize) -> f32 {
    (lengths.data()[a] - lengths.data()[b]).abs()
}

proptest! {
    /// Uniform-exact measured predictions equal the float predictions
    /// on every sample whose float decision was not a near-tie.
    #[test]
    fn uniform_exact_equals_float_predictions_on_both_archs(seed in 0u64..200) {
        let mut rng = TensorRng::from_seed(seed.wrapping_mul(0x9e37) + 3);
        let exact = DatapathAssignment::uniform("mul8u_1JFF");

        let mut capsnet = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let mut deepcaps = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let imgs = images(&mut rng, 2);
        let models: [&mut dyn CapsModel; 2] = [&mut capsnet, &mut deepcaps];
        for model in models {
            let q = lowered(model, &imgs);
            let backend = QuantMeasured::new(q, shared_luts().clone());
            for image in &imgs {
                let float_lengths = model.forward(image, &mut NoInjection);
                let f = float_lengths.argmax().unwrap();
                let m = backend
                    .qmodel()
                    .predict(image, &exact, backend.luts())
                    .unwrap();
                prop_assert!(
                    m == f || float_margin(&float_lengths, f, m) < 0.1,
                    "{}: quantized-exact flipped a decisive float prediction \
                     ({f} -> {m}, margin {})",
                    model.name(),
                    float_margin(&float_lengths, f, m),
                );
            }
        }
    }

    /// A mixed assignment — an aggressive multiplier on the stem, the
    /// exact one everywhere else — differs from both uniform runs.
    #[test]
    fn mixed_assignment_differs_from_either_uniform(seed in 0u64..200) {
        let mut rng = TensorRng::from_seed(seed.wrapping_mul(0x51ed) + 7);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let imgs = images(&mut rng, 2);
        let q = lowered(&mut model, &imgs);
        let luts = shared_luts();

        // Mixed: every site exact except the stem convolution, which
        // runs the crudest DRUM component.
        let mut mixed = DatapathAssignment::per_site();
        for (layer, kind, in_routing) in q.multiply_sites() {
            let component = if layer == "Conv1" { "mul8u_QKX" } else { "mul8u_1JFF" };
            mixed.assign(layer, kind, in_routing, component);
        }
        let uniform_exact = DatapathAssignment::uniform("mul8u_1JFF");
        let uniform_qkx = DatapathAssignment::uniform("mul8u_QKX");

        let mut diff_exact = false;
        let mut diff_qkx = false;
        for image in &imgs {
            let m = q.forward(image, &mixed, luts).unwrap();
            diff_exact |= m != q.forward(image, &uniform_exact, luts).unwrap();
            diff_qkx |= m != q.forward(image, &uniform_qkx, luts).unwrap();
        }
        prop_assert!(diff_exact, "mixed run reproduced the uniform-exact datapath");
        prop_assert!(diff_qkx, "mixed run reproduced the uniform-QKX datapath");
    }
}

/// `from_design` must cover exactly the multiplier sites the lowered
/// program executes, and an incomplete design must fail with the
/// missing site named.
#[test]
fn from_design_covers_every_multiply_site_and_errors_on_gaps() {
    let mut rng = TensorRng::from_seed(777);
    let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    let imgs = images(&mut rng, 2);
    let q = lowered(&mut model, &imgs);
    let luts = shared_luts();

    // A design shaped like Step 6's output: one assignment per
    // (layer, group) pair of the real inventory.
    let inventory = extract_groups(&mut model, &imgs[0]);
    let assignments: Vec<Assignment> = Group::all()
        .into_iter()
        .flat_map(|group| {
            inventory
                .group_layers(group)
                .into_iter()
                .map(move |layer| Assignment {
                    layer,
                    group,
                    tolerable_nm: 0.01,
                    component: "mul8u_NGR".to_string(),
                    component_noise: (0.0, 0.001),
                    power_uw: 276.0,
                    area_um2: 512.0,
                })
        })
        .collect();
    let design = ApproxDesign {
        model_name: model.name(),
        assignments,
        mean_power_saving: 0.1,
        baseline_accuracy: 0.5,
        predicted_accuracy: 0.5,
        measured_accuracy: None,
    };
    let full = DatapathAssignment::from_design(&design);
    q.check_assignment(&full, luts)
        .expect("a full design covers every multiply site");
    // Every program site resolves to the design's component.
    for (layer, kind, in_routing) in q.multiply_sites() {
        assert_eq!(
            full.component_for(&layer, kind, in_routing),
            Some("mul8u_NGR"),
            "site ({layer}, {kind}, routing={in_routing}) unresolved"
        );
    }

    // Dropping one layer's MAC-outputs row leaves its GEMM site
    // unassigned — evaluation must name it, not fall back silently.
    let mut partial = design.clone();
    partial
        .assignments
        .retain(|a| !(a.layer == "PrimaryCaps" && a.group == Group::MacOutputs));
    let gap = DatapathAssignment::from_design(&partial);
    let err = q.check_assignment(&gap, luts).unwrap_err();
    assert_eq!(
        err,
        BackendError::UnassignedSite {
            layer: "PrimaryCaps".to_string(),
            kind: OpKind::MacOutput,
            in_routing: false,
        }
    );
}
