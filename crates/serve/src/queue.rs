//! The request queue and the adaptive dynamic batcher.
//!
//! Client threads [`enqueue`](RequestQueue::enqueue) single-image
//! requests tagged with a served-model index; worker threads pull
//! [`next_batch`](RequestQueue::next_batch), which coalesces pending
//! requests **of one model** — a batch runs through one prepared
//! program — under one of two cut policies:
//!
//! - **Adaptive** (`max_wait = Some(d)`): a batch is cut as soon as a
//!   model has `max_batch` requests pending, or when its oldest
//!   pending request has waited `d`, whichever comes first. This is
//!   the latency-measurement mode: small under light load, full under
//!   heavy load.
//! - **Fill-only** (`max_wait = None`): batches are cut **only** at
//!   `max_batch`, with partial tails flushed at
//!   [`close`](RequestQueue::close). Batch composition then depends
//!   only on each model's request *subsequence* — request `i` of model
//!   `m` always lands in batch `i / max_batch` — never on wall clock
//!   or worker count, which is what makes the serve work counters
//!   byte-identical across `REDCANE_THREADS`. Profiled runs use this
//!   mode.
//!
//! Within a model, requests batch strictly in arrival order, so
//! responses are bit-identical to per-request `predict` either way
//! (batch fusion itself is bit-exact); the policy only decides *where
//! the cuts fall*.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use redcane_tensor::Tensor;
use redcane_trace as trace;

/// One enqueued inference request.
pub struct Request {
    /// Global arrival sequence number (FIFO tie-break across models).
    pub seq: u64,
    /// Index into the engine's served-model table.
    pub model: usize,
    /// The input image.
    pub input: Tensor,
    /// When the request entered the queue (latency measurement).
    pub enqueued: Instant,
    /// Where the worker sends the response.
    pub reply: Sender<Response>,
}

/// One fulfilled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's sequence number.
    pub seq: u64,
    /// The served-model index that produced the prediction.
    pub model: usize,
    /// Argmax class prediction — bit-identical to single-request
    /// `predict` under the same assignment.
    pub prediction: usize,
    /// Queue + batch + inference latency (enqueue → response send).
    pub latency: Duration,
}

struct QueueState {
    /// Pending requests per served model, arrival order.
    pending: Vec<VecDeque<Request>>,
    /// Total pending across models.
    depth: usize,
    /// Next arrival sequence number.
    next_seq: u64,
    /// Cleared by [`RequestQueue::close`]; workers drain and exit.
    open: bool,
}

/// The shared queue: one mutex-guarded state plus a condvar workers
/// park on.
pub struct RequestQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    max_batch: usize,
    max_wait: Option<Duration>,
}

impl RequestQueue {
    /// An open queue for `models` served models.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch` is zero.
    #[must_use]
    pub fn new(models: usize, max_batch: usize, max_wait: Option<Duration>) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        RequestQueue {
            state: Mutex::new(QueueState {
                pending: (0..models).map(|_| VecDeque::new()).collect(),
                depth: 0,
                next_seq: 0,
                open: true,
            }),
            ready: Condvar::new(),
            max_batch,
            max_wait,
        }
    }

    /// The configured batch-size ceiling.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Enqueues one request and wakes a worker. Returns the assigned
    /// sequence number and the total queue depth right after the push
    /// (the bench's queue-depth statistic).
    ///
    /// # Panics
    ///
    /// Panics when the queue was already closed or `model` is out of
    /// range.
    pub fn enqueue(&self, model: usize, input: Tensor, reply: Sender<Response>) -> (u64, usize) {
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        let mut state = self.state.lock().expect("queue poisoned");
        assert!(state.open, "enqueue after close");
        let seq = state.next_seq;
        state.next_seq += 1;
        state.pending[model].push_back(Request {
            seq,
            model,
            input,
            enqueued: Instant::now(),
            reply,
        });
        state.depth += 1;
        let depth = state.depth;
        if trace::enabled() {
            trace::add(trace::Counter::ServeRequests, 1);
        }
        drop(state);
        self.ready.notify_one();
        (seq, depth)
    }

    /// Closes the queue: pending tails become cuttable, workers drain
    /// what is left and then receive `None`.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned — another worker already
    /// panicked while holding it.
    pub fn close(&self) {
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        self.state.lock().expect("queue poisoned").open = false;
        self.ready.notify_all();
    }

    /// Blocks until a batch is ready (per the cut policy) and returns
    /// it, or `None` once the queue is closed and drained. Among
    /// cuttable models, the one whose head request arrived first wins
    /// (head-of-line fairness); within the model, requests leave in
    /// arrival order.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock is poisoned — another worker already
    /// panicked while holding it.
    pub fn next_batch(&self) -> Option<(usize, Vec<Request>)> {
        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(model) = self.cuttable(&state) {
                let take = state.pending[model].len().min(self.max_batch);
                let batch: Vec<Request> = state.pending[model].drain(..take).collect();
                state.depth -= batch.len();
                if trace::enabled() {
                    trace::add(trace::Counter::ServeBatches, 1);
                    trace::add(trace::Counter::ServeItemsCoalesced, batch.len() as u64);
                    trace::add_max(trace::Counter::ServeBatchMax, batch.len() as u64);
                }
                // More work may remain ready (another full batch, or
                // several flushable tails at close); pass the baton.
                self.ready.notify_one();
                return Some((model, batch));
            }
            if !state.open && state.depth == 0 {
                // Drained and closed: release the next parked worker.
                self.ready.notify_one();
                return None;
            }
            state = match self.park_timeout(&state) {
                Some(timeout) => {
                    self.ready
                        .wait_timeout(state, timeout)
                        // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
                        .expect("queue poisoned")
                        .0
                }
                // lint: allow(panic) — lock poisoning means another thread already panicked mid-run; propagating the abort is the only recovery
                None => self.ready.wait(state).expect("queue poisoned"),
            };
        }
    }

    /// The model to cut a batch from, if any is ready: full batch,
    /// expired head deadline (adaptive only), or any tail once closed.
    /// Ties break toward the oldest head request.
    fn cuttable(&self, state: &QueueState) -> Option<usize> {
        let mut winner: Option<(u64, usize)> = None;
        for (model, pending) in state.pending.iter().enumerate() {
            let Some(head) = pending.front() else {
                continue;
            };
            let ready = pending.len() >= self.max_batch
                || !state.open
                || self.max_wait.is_some_and(|w| head.enqueued.elapsed() >= w);
            if ready && winner.is_none_or(|(seq, _)| head.seq < seq) {
                winner = Some((head.seq, model));
            }
        }
        winner.map(|(_, model)| model)
    }

    /// How long a worker may park before a head deadline could expire;
    /// `None` parks indefinitely (fill-only mode, or nothing pending —
    /// an enqueue or close always notifies).
    fn park_timeout(&self, state: &QueueState) -> Option<Duration> {
        let max_wait = self.max_wait?;
        state
            .pending
            .iter()
            .filter_map(|q| q.front())
            .map(|head| max_wait.saturating_sub(head.enqueued.elapsed()))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn image() -> Tensor {
        Tensor::zeros(&[1, 2, 2])
    }

    #[test]
    fn fill_only_cuts_at_max_batch_and_flushes_tails_at_close() {
        let queue = RequestQueue::new(2, 3, None);
        let (tx, _rx) = mpsc::channel();
        for model in [0, 1, 0, 0, 1, 0] {
            queue.enqueue(model, image(), tx.clone());
        }
        // Model 0 has 4 pending: one full batch is cuttable; model 1's
        // 2 pending are not (no deadline in fill-only mode).
        let (model, batch) = queue.next_batch().expect("full batch ready");
        assert_eq!(model, 0);
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 2, 3],
            "arrival order within the model"
        );
        queue.close();
        // Tails flush oldest-head-first: model 1 (seq 1) before the
        // model-0 remainder (seq 5).
        let (model, batch) = queue.next_batch().expect("tail");
        assert_eq!((model, batch.len()), (1, 2));
        let (model, batch) = queue.next_batch().expect("tail");
        assert_eq!((model, batch.len()), (0, 1));
        assert_eq!(batch[0].seq, 5);
        assert!(queue.next_batch().is_none());
        assert!(queue.next_batch().is_none(), "stays drained");
    }

    #[test]
    fn adaptive_mode_cuts_an_aged_partial_batch() {
        let queue = RequestQueue::new(1, 64, Some(Duration::from_millis(5)));
        let (tx, _rx) = mpsc::channel();
        queue.enqueue(0, image(), tx.clone());
        queue.enqueue(0, image(), tx);
        let t0 = Instant::now();
        let (model, batch) = queue.next_batch().expect("deadline cut");
        assert_eq!((model, batch.len()), (0, 2));
        assert!(
            t0.elapsed() >= Duration::from_millis(4),
            "the cut waited for the deadline"
        );
        queue.close();
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn workers_drain_concurrently_and_every_request_is_served_once() {
        let queue = RequestQueue::new(3, 4, None);
        let (tx, rx) = mpsc::channel();
        let total = 50;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some((model, batch)) = queue.next_batch() {
                        for r in batch {
                            assert_eq!(r.model, model);
                            let _ = r.reply.send(Response {
                                seq: r.seq,
                                model,
                                prediction: 0,
                                latency: r.enqueued.elapsed(),
                            });
                        }
                    }
                });
            }
            for i in 0..total {
                queue.enqueue(i % 3, image(), tx.clone());
            }
            queue.close();
        });
        drop(tx);
        let mut seqs: Vec<u64> = rx.iter().map(|resp| resp.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..total as u64).collect::<Vec<_>>());
    }
}
