//! Offline shim for `proptest`.
//!
//! Random-sampling property testing without shrinking: each `proptest!`
//! test runs `PROPTEST_CASES` (default 64) cases drawn from a generator
//! seeded deterministically by the test's name, so failures reproduce
//! across runs. The API mirrors the subset of real proptest the
//! workspace's property tests use: `Strategy` with `prop_map` /
//! `prop_flat_map`, range strategies, `any::<T>()` / bare typed
//! parameters, `prop::collection::vec`, and the `prop_assert*` macros.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expands property-test functions whose parameters are drawn from
/// strategies (`x in strat`) or from [`arbitrary::Arbitrary`] (`x: T`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $($crate::__proptest_one!($(#[$meta])* fn $name($($params)*) $body);)*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let mut __pt_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __pt_case in 0..$crate::test_runner::cases() {
                $crate::__proptest_bind!(__pt_rng, [] [$($params)*] $body);
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, [$($lets:tt)*] [] $body:block) => {{ $($lets)* $body }};
    ($rng:ident, [$($lets:tt)*] [,] $body:block) => {{ $($lets)* $body }};
    ($rng:ident, [$($lets:tt)*] [$id:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_bind!(
            $rng,
            [$($lets)* let $id = $crate::strategy::Strategy::sample(&($strat), &mut $rng);]
            [$($rest)*] $body
        )
    };
    ($rng:ident, [$($lets:tt)*] [$id:ident in $strat:expr] $body:block) => {
        $crate::__proptest_bind!(
            $rng,
            [$($lets)* let $id = $crate::strategy::Strategy::sample(&($strat), &mut $rng);]
            [] $body
        )
    };
    ($rng:ident, [$($lets:tt)*] [$id:ident : $ty:ty, $($rest:tt)*] $body:block) => {
        $crate::__proptest_bind!(
            $rng,
            [$($lets)* let $id: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);]
            [$($rest)*] $body
        )
    };
    ($rng:ident, [$($lets:tt)*] [$id:ident : $ty:ty] $body:block) => {
        $crate::__proptest_bind!(
            $rng,
            [$($lets)* let $id: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);]
            [] $body
        )
    };
}

/// Asserts a property; alias of `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality; alias of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality; alias of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
