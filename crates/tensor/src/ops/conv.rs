//! 2-D convolution via im2col, plus the col2im adjoint used by backprop.
//!
//! Convolutions are the MAC-dominated workhorse of CapsNets — the operations
//! whose outputs form **group #1 (MAC outputs)** of the ReD-CaNe taxonomy.

use redcane_trace as trace;
use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::ops::matmul::matmul_into;
use crate::par;
use crate::tensor::Tensor;
use crate::Result;

/// Below this many output elements the im2col/col2im loops run serially:
/// the work is too small to amortize spawning scoped worker threads.
const PAR_MIN_ELEMENTS: usize = 32_768;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each side of both spatial dimensions.
    pub padding: usize,
}

/// The one kernel/stride validity check, shared by [`Conv2dSpec::new`]
/// and [`Conv2dSpec::output_size`] so the two can never disagree.
fn check_kernel_stride(kernel: usize, stride: usize) -> Result<()> {
    if stride == 0 || kernel == 0 {
        return Err(TensorError::InvalidConvGeometry {
            reason: format!("kernel {kernel} and stride {stride} must be non-zero"),
        });
    }
    Ok(())
}

impl Conv2dSpec {
    /// Creates a spec; `stride` must be non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvGeometry`] on a zero stride or
    /// zero kernel.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Result<Self> {
        check_kernel_stride(kernel, stride)?;
        Ok(Conv2dSpec {
            kernel,
            stride,
            padding,
        })
    }

    /// Output spatial size for an input of `input` pixels on one axis:
    /// `floor((input + 2*padding - kernel) / stride) + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvGeometry`] if the kernel does
    /// not fit in the padded input — or on a zero kernel/stride, which
    /// the public fields (and serde) allow to bypass
    /// [`Conv2dSpec::new`]'s construction check.
    pub fn output_size(&self, input: usize) -> Result<usize> {
        check_kernel_stride(self.kernel, self.stride)?;
        let padded = input + 2 * self.padding;
        if self.kernel > padded {
            return Err(TensorError::InvalidConvGeometry {
                reason: format!("kernel {} larger than padded input {padded}", self.kernel),
            });
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

/// `floor((input + 2*padding - kernel) / stride) + 1`, validated.
///
/// Free-function convenience over [`Conv2dSpec::new`] +
/// [`Conv2dSpec::output_size`] — the spec constructor is the single
/// validation path, so this can never disagree with construction.
///
/// # Errors
///
/// Returns [`TensorError::InvalidConvGeometry`] when the kernel exceeds the
/// padded input, or the kernel or stride is zero.
pub fn conv_output_size(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize> {
    Conv2dSpec::new(kernel, stride, padding)?.output_size(input)
}

/// Raw-slice im2col over a `[C, H, W]` buffer (see
/// [`Tensor::im2col_into`]); lets layer code unroll without first
/// wrapping (and copying) its data into a tensor. Writes every slot of
/// `out`, so stale scratch buffers are fine. Returns `[rows, cols]`.
///
/// # Errors
///
/// Returns an error unless the geometry fits and both slice lengths
/// match it.
pub fn im2col_slice(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    out: &mut [f32],
) -> Result<[usize; 2]> {
    if src.len() != c * h * w {
        return Err(TensorError::LengthMismatch {
            shape: vec![c, h, w],
            len: src.len(),
        });
    }
    let h_out = spec.output_size(h)?;
    let w_out = spec.output_size(w)?;
    let rows = c * spec.kernel * spec.kernel;
    let cols = h_out * w_out;
    if out.len() != rows * cols {
        return Err(TensorError::LengthMismatch {
            shape: vec![rows, cols],
            len: out.len(),
        });
    }
    im2col_fill(src, c, h, w, spec, h_out, w_out, out);
    Ok([rows, cols])
}

/// Raw im2col fill: writes **every** slot of `out` (padded positions get
/// an explicit zero), so callers can recycle stale scratch buffers.
#[allow(clippy::too_many_arguments)]
fn im2col_fill(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    h_out: usize,
    w_out: usize,
    out: &mut [f32],
) {
    let k = spec.kernel;
    let cols = h_out * w_out;
    // Every im2col entry point (the `Tensor` methods and the
    // buffer-reusing `im2col_slice`) funnels through this fill, so one
    // hook counts all column-matrix traffic: `rows · cols` f32 slots.
    if trace::enabled() {
        trace::add(
            trace::Counter::Im2colBytes,
            (c * k * k * cols * std::mem::size_of::<f32>()) as u64,
        );
    }
    let pad = spec.padding as isize;
    let stride = spec.stride;
    let fill_row = |row: usize, out_row: &mut [f32]| {
        let kx = row % k;
        let ky = (row / k) % k;
        let ci = row / (k * k);
        for oy in 0..h_out {
            let iy = (oy * stride) as isize + ky as isize - pad;
            let dst = &mut out_row[oy * w_out..(oy + 1) * w_out];
            if iy < 0 || iy >= h as isize {
                dst.fill(0.0); // fully padded output row
                continue;
            }
            let src_base = ci * h * w + iy as usize * w;
            // The stride-1 unpadded interior is a contiguous copy.
            if stride == 1 && pad == 0 {
                let s0 = src_base + kx;
                dst.copy_from_slice(&src[s0..s0 + w_out]);
                continue;
            }
            for (ox, slot) in dst.iter_mut().enumerate() {
                let ix = (ox * stride) as isize + kx as isize - pad;
                *slot = if ix < 0 || ix >= w as isize {
                    0.0
                } else {
                    src[src_base + ix as usize]
                };
            }
        }
    };
    let rows = c * k * k;
    if rows * cols >= PAR_MIN_ELEMENTS {
        par::for_each_chunk_mut(out, cols, fill_row);
    } else {
        for (row, out_row) in out.chunks_mut(cols).enumerate() {
            fill_row(row, out_row);
        }
    }
}

impl Tensor {
    /// Unrolls a `[C, H, W]` tensor into the im2col matrix
    /// `[C*k*k, H_out*W_out]`: column `p` holds the receptive field of
    /// output pixel `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank 3 and the geometry fits.
    pub fn im2col(&self, spec: Conv2dSpec) -> Result<Tensor> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
                op: "im2col",
            });
        }
        let (c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let h_out = spec.output_size(h)?;
        let w_out = spec.output_size(w)?;
        let k = spec.kernel;
        let rows = c * k * k;
        let cols = h_out * w_out;
        let mut out = vec![0.0f32; rows * cols];
        im2col_fill(self.data(), c, h, w, spec, h_out, w_out, &mut out);
        Tensor::from_vec(out, &[rows, cols])
    }

    /// Unrolls into a caller-provided buffer (see [`Tensor::im2col`]).
    /// `out` may hold stale data: every position is written, including
    /// the zeros of padded positions. Returns `[rows, cols]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank 3, the geometry fits
    /// and `out.len() == rows * cols`.
    pub fn im2col_into(&self, spec: Conv2dSpec, out: &mut [f32]) -> Result<[usize; 2]> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
                op: "im2col_into",
            });
        }
        let (c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let h_out = spec.output_size(h)?;
        let w_out = spec.output_size(w)?;
        let rows = c * spec.kernel * spec.kernel;
        let cols = h_out * w_out;
        if out.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                shape: vec![rows, cols],
                len: out.len(),
            });
        }
        im2col_fill(self.data(), c, h, w, spec, h_out, w_out, out);
        Ok([rows, cols])
    }

    /// The adjoint of [`Tensor::im2col`]: folds a `[C*k*k, H_out*W_out]`
    /// matrix back into a `[C, H, W]` tensor, **accumulating** overlapping
    /// contributions. Used to propagate gradients through a convolution.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix shape is inconsistent with the
    /// geometry implied by `(c, h, w)` and `spec`.
    pub fn col2im(&self, c: usize, h: usize, w: usize, spec: Conv2dSpec) -> Result<Tensor> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.ndim(),
                op: "col2im",
            });
        }
        let h_out = spec.output_size(h)?;
        let w_out = spec.output_size(w)?;
        let k = spec.kernel;
        let rows = c * k * k;
        let cols = h_out * w_out;
        if self.shape() != [rows, cols] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape().to_vec(),
                right: vec![rows, cols],
                op: "col2im",
            });
        }
        let src = self.data();
        let mut out = Tensor::zeros(&[c, h, w]);
        let dst = out.data_mut();
        let pad = spec.padding as isize;
        let stride = spec.stride;
        // Each worker owns one input channel: the (ky, kx, oy, ox)
        // accumulation order within a channel is the serial order, and
        // channels write disjoint `h*w` chunks, so results are bitwise
        // identical at every thread count.
        let fold_channel = |ci: usize, dst_ch: &mut [f32]| {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ci * k + ky) * k + kx;
                    let src_row = &src[row * cols..(row + 1) * cols];
                    for oy in 0..h_out {
                        let iy = (oy * stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_base = iy as usize * w;
                        // The stride-1 unpadded interior is a contiguous
                        // vector add.
                        if stride == 1 && pad == 0 {
                            let dst = &mut dst_ch[dst_base + kx..dst_base + kx + w_out];
                            let srow = &src_row[oy * w_out..(oy + 1) * w_out];
                            for (d, &s) in dst.iter_mut().zip(srow) {
                                *d += s;
                            }
                            continue;
                        }
                        for ox in 0..w_out {
                            let ix = (ox * stride) as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dst_ch[dst_base + ix as usize] += src_row[oy * w_out + ox];
                        }
                    }
                }
            }
        };
        if c * h * w >= PAR_MIN_ELEMENTS {
            par::for_each_chunk_mut(dst, h * w, fold_channel);
        } else {
            for (ci, dst_ch) in dst.chunks_mut(h * w).enumerate() {
                fold_channel(ci, dst_ch);
            }
        }
        Ok(out)
    }

    /// 2-D convolution of a `[C_in, H, W]` input with `[C_out, C_in, k, k]`
    /// weights and a `[C_out]` bias, producing `[C_out, H_out, W_out]`.
    ///
    /// Implemented as `weights_matrix · im2col(input)`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches or impossible geometry.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::{ops::Conv2dSpec, Tensor};
    /// # fn main() -> Result<(), redcane_tensor::TensorError> {
    /// let input = Tensor::ones(&[1, 4, 4]);
    /// let weight = Tensor::ones(&[2, 1, 3, 3]);
    /// let bias = Tensor::zeros(&[2]);
    /// let spec = Conv2dSpec::new(3, 1, 0)?;
    /// let out = input.conv2d(&weight, &bias, spec)?;
    /// assert_eq!(out.shape(), &[2, 2, 2]);
    /// assert_eq!(out.get(&[0, 0, 0])?, 9.0); // 3x3 window of ones
    /// # Ok(())
    /// # }
    /// ```
    pub fn conv2d(&self, weight: &Tensor, bias: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
                op: "conv2d(input)",
            });
        }
        if weight.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: weight.ndim(),
                op: "conv2d(weight)",
            });
        }
        let (c_in, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (c_out, wc_in, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        if wc_in != c_in || kh != spec.kernel || kw != spec.kernel {
            return Err(TensorError::ShapeMismatch {
                left: weight.shape().to_vec(),
                right: vec![c_out, c_in, spec.kernel, spec.kernel],
                op: "conv2d",
            });
        }
        if bias.shape() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                left: bias.shape().to_vec(),
                right: vec![c_out],
                op: "conv2d(bias)",
            });
        }
        let h_out = spec.output_size(h)?;
        let w_out = spec.output_size(w)?;
        let cols = self.im2col(spec)?;
        let k2 = c_in * spec.kernel * spec.kernel;
        let n = h_out * w_out;
        let mut out = vec![0.0f32; c_out * n];
        matmul_into(weight.data(), cols.data(), &mut out, c_out, k2, n);
        for co in 0..c_out {
            let b = bias.data()[co];
            if b != 0.0 {
                for v in &mut out[co * n..(co + 1) * n] {
                    *v += b;
                }
            }
        }
        Tensor::from_vec(out, &[c_out, h_out, w_out])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    /// Direct (quadruple-loop) convolution used as the test oracle.
    fn naive_conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: Conv2dSpec) -> Tensor {
        let (c_in, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let c_out = weight.shape()[0];
        let k = spec.kernel;
        let h_out = spec.output_size(h).unwrap();
        let w_out = spec.output_size(w).unwrap();
        let mut out = Tensor::zeros(&[c_out, h_out, w_out]);
        for co in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = bias.data()[co];
                    for ci in 0..c_in {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                acc += input.get(&[ci, iy as usize, ix as usize]).unwrap()
                                    * weight.get(&[co, ci, ky, kx]).unwrap();
                            }
                        }
                    }
                    out.set(&[co, oy, ox], acc).unwrap();
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn output_size_formula() {
        assert_eq!(conv_output_size(28, 9, 1, 0).unwrap(), 20);
        assert_eq!(conv_output_size(20, 9, 2, 0).unwrap(), 6);
        assert_eq!(conv_output_size(32, 3, 1, 1).unwrap(), 32);
        assert_eq!(conv_output_size(32, 3, 2, 1).unwrap(), 16);
    }

    #[test]
    fn output_size_rejects_impossible() {
        assert!(conv_output_size(2, 5, 1, 0).is_err());
        assert!(conv_output_size(8, 3, 0, 0).is_err());
        assert!(Conv2dSpec::new(3, 0, 1).is_err());
        assert!(Conv2dSpec::new(0, 1, 1).is_err());
        // Literal construction (or serde) can bypass `new`; output_size
        // must still error rather than divide by zero.
        let rogue = Conv2dSpec {
            kernel: 3,
            stride: 0,
            padding: 0,
        };
        assert!(rogue.output_size(8).is_err());
    }

    #[test]
    fn conv_matches_naive_no_padding() {
        let mut rng = TensorRng::from_seed(30);
        let input = rng.uniform(&[3, 8, 8], -1.0, 1.0);
        let weight = rng.uniform(&[4, 3, 3, 3], -0.5, 0.5);
        let bias = rng.uniform(&[4], -0.1, 0.1);
        let spec = Conv2dSpec::new(3, 1, 0).unwrap();
        assert_close(
            &input.conv2d(&weight, &bias, spec).unwrap(),
            &naive_conv2d(&input, &weight, &bias, spec),
            1e-4,
        );
    }

    #[test]
    fn conv_matches_naive_padded_strided() {
        let mut rng = TensorRng::from_seed(31);
        let input = rng.uniform(&[2, 9, 7], -1.0, 1.0);
        let weight = rng.uniform(&[5, 2, 3, 3], -0.5, 0.5);
        let bias = rng.uniform(&[5], -0.1, 0.1);
        let spec = Conv2dSpec::new(3, 2, 1).unwrap();
        assert_close(
            &input.conv2d(&weight, &bias, spec).unwrap(),
            &naive_conv2d(&input, &weight, &bias, spec),
            1e-4,
        );
    }

    #[test]
    fn conv_9x9_like_capsnet_stem() {
        let mut rng = TensorRng::from_seed(32);
        let input = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let weight = rng.uniform(&[6, 1, 9, 9], -0.2, 0.2);
        let bias = Tensor::zeros(&[6]);
        let spec = Conv2dSpec::new(9, 1, 0).unwrap();
        let out = input.conv2d(&weight, &bias, spec).unwrap();
        assert_eq!(out.shape(), &[6, 8, 8]);
        assert_close(&out, &naive_conv2d(&input, &weight, &bias, spec), 1e-4);
    }

    #[test]
    fn conv_rejects_shape_mismatches() {
        let input = Tensor::zeros(&[3, 8, 8]);
        let spec = Conv2dSpec::new(3, 1, 0).unwrap();
        // wrong in-channels
        let weight = Tensor::zeros(&[4, 2, 3, 3]);
        assert!(input.conv2d(&weight, &Tensor::zeros(&[4]), spec).is_err());
        // wrong kernel
        let weight = Tensor::zeros(&[4, 3, 5, 5]);
        assert!(input.conv2d(&weight, &Tensor::zeros(&[4]), spec).is_err());
        // wrong bias
        let weight = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(input.conv2d(&weight, &Tensor::zeros(&[5]), spec).is_err());
    }

    #[test]
    fn im2col_shape_and_content() {
        let input = Tensor::from_fn(&[1, 3, 3], |i| i as f32);
        let spec = Conv2dSpec::new(2, 1, 0).unwrap();
        let cols = input.im2col(spec).unwrap();
        assert_eq!(cols.shape(), &[4, 4]);
        // First column = top-left 2x2 window [0,1,3,4]
        assert_eq!(cols.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(cols.get(&[1, 0]).unwrap(), 1.0);
        assert_eq!(cols.get(&[2, 0]).unwrap(), 3.0);
        assert_eq!(cols.get(&[3, 0]).unwrap(), 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the transpose operator that backprop relies on.
        let mut rng = TensorRng::from_seed(33);
        let spec = Conv2dSpec::new(3, 2, 1).unwrap();
        let x = rng.uniform(&[2, 6, 5], -1.0, 1.0);
        let cols = x.im2col(spec).unwrap();
        let y = rng.uniform(cols.shape(), -1.0, 1.0);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let folded = y.col2im(2, 6, 5, spec).unwrap();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(folded.data())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_shape() {
        let spec = Conv2dSpec::new(3, 1, 0).unwrap();
        let bad = Tensor::zeros(&[5, 5]);
        assert!(bad.col2im(1, 6, 6, spec).is_err());
    }
}
