//! Application machinery for the discrete error-model family
//! ([`redcane::faults`]) on the quantized datapath.
//!
//! Core describes *what* fails ([`FaultModel`]) and *where*
//! ([`FaultTarget`], keyed by datapath site); this module realizes
//! those descriptions on the concrete 8-bit execution structures:
//!
//! - **Weight codes** — corrupted in storage by
//!   [`QModel::with_fault_plan`](crate::QModel::with_fault_plan), with
//!   the zero-point-correction row sums recomputed from the faulted
//!   codes (the correction adders read the same weight memory).
//! - **Activation codes** — a broken operand latch between the
//!   activation buffer and the multiplier array: realized as a
//!   right-operand remap fused into the site's LUT
//!   ([`faulted_site_lut`]). The exact correction adders still see the
//!   original codes, so the fault stays local to the multiply.
//! - **Multiplier** — a broken multiplier array: each of the 65 536
//!   tabulated products faulted by table-entry index.
//! - **Accumulator** — an [`AccFault`] applied to each 32-bit output
//!   accumulator after its reduction, at a **sample-local** element
//!   index, so batched and per-sample execution stay bit-identical
//!   under faults.
//!
//! A whole-site [`FaultModel::DeadOutput`] is realized as an all-zero
//! LUT whatever its declared target — the site produces no signal.
//! [`MulLut::is_dead`] then *detects* dead sites structurally (an
//! all-lanes stuck-at-0 multiplier is caught the same way), which is
//! what the fail-soft fallback keys on.

use redcane::faults::{FaultModel, FaultTarget, SiteFault};
use redcane_axmul::MulLut;

/// A site's resolved accumulator fault: the model plus the site seed
/// every per-element realization derives from.
#[derive(Debug, Clone)]
pub struct AccFault {
    model: FaultModel,
    seed: u64,
}

impl AccFault {
    /// Binds a fault model to a site seed
    /// ([`FaultPlan::site_seed`](redcane::faults::FaultPlan::site_seed)).
    pub fn new(model: FaultModel, seed: u64) -> Self {
        AccFault { model, seed }
    }

    /// Faults one 32-bit accumulator value. `index` is the element's
    /// sample-local position within the site's output tile, so the
    /// realization is independent of batch shape and evaluation order.
    #[inline]
    pub fn apply(&self, value: u32, index: u64) -> u32 {
        self.model.apply(value, 32, self.seed, index)
    }
}

/// A MAC site's borrowed execution view: the multiply table its
/// products come from plus an optional accumulator fault. The fault-free
/// path uses [`MacView::clean`], which the quantized layers treat
/// exactly like a bare [`MulLut`].
#[derive(Clone, Copy)]
pub struct MacView<'a> {
    /// The table serving the site's multiplies (base or faulted view).
    pub lut: &'a MulLut,
    /// The site's accumulator fault, if any.
    pub acc: Option<&'a AccFault>,
}

impl<'a> MacView<'a> {
    /// A fault-free view over `lut`.
    pub fn clean(lut: &'a MulLut) -> Self {
        MacView { lut, acc: None }
    }
}

/// Realizes a LUT-expressible [`SiteFault`] as a faulted view of the
/// site's base table.
///
/// Dispatch: [`FaultModel::DeadOutput`] (any target) → all-zero table;
/// [`FaultTarget::Multiplier`] → per-entry output fault;
/// [`FaultTarget::ActivationCodes`] → right-operand latch fault (each
/// code value remapped deterministically — broken register lanes).
/// Weight-code and accumulator faults are **not** LUT faults and must
/// be applied by their own machinery; asking for them here is a bug.
///
/// # Panics
///
/// Panics on a non-dead [`FaultTarget::WeightCodes`] /
/// [`FaultTarget::Accumulator`] fault.
pub fn faulted_site_lut(base: &MulLut, fault: &SiteFault, site_seed: u64) -> MulLut {
    let suffix = fault.spec();
    match (&fault.model, fault.target) {
        (FaultModel::DeadOutput, _) => base.faulted_view(&suffix, |a| a, |b| b, |_, _| 0),
        (model, FaultTarget::Multiplier) => base.faulted_view(
            &suffix,
            |a| a,
            |b| b,
            |idx, v| model.apply(u32::from(v), 16, site_seed, u64::from(idx)) as u16,
        ),
        (model, FaultTarget::ActivationCodes) => base.faulted_view(
            &suffix,
            |a| a,
            |b| model.apply(u32::from(b), 8, site_seed, u64::from(b)) as u8,
            |_, v| v,
        ),
        (_, FaultTarget::WeightCodes | FaultTarget::Accumulator) => {
            // lint: allow(panic) — unreachable: callers dispatch only LUT-target faults here
            unreachable!("weight/accumulator faults are not LUT faults")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_fault_is_deterministic_per_index() {
        let f = AccFault::new(FaultModel::BitFlip { ber: 0.3 }, 99);
        let a: Vec<u32> = (0..64).map(|i| f.apply(1000, i)).collect();
        let b: Vec<u32> = (0..64).map(|i| f.apply(1000, i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&v| v != 1000), "BER 0.3 over 64 slots flips");
        let stuck = AccFault::new(
            FaultModel::StuckAt {
                lanes: 1 << 20,
                value: true,
            },
            0,
        );
        assert_eq!(stuck.apply(0, 5), 1 << 20);
    }

    #[test]
    fn dead_fault_kills_the_table_for_any_target() {
        let base = MulLut::exact();
        for target in [
            FaultTarget::Multiplier,
            FaultTarget::ActivationCodes,
            FaultTarget::WeightCodes,
            FaultTarget::Accumulator,
        ] {
            let lut = faulted_site_lut(&base, &SiteFault::new(target, FaultModel::DeadOutput), 7);
            assert!(lut.is_dead(), "{target:?}");
        }
    }

    #[test]
    fn multiplier_stuck_lane_shows_in_every_product() {
        let base = MulLut::exact();
        let fault = SiteFault::new(
            FaultTarget::Multiplier,
            FaultModel::StuckAt {
                lanes: 1,
                value: true,
            },
        );
        let lut = faulted_site_lut(&base, &fault, 3);
        for (a, b) in [(3u8, 4u8), (10, 10), (0, 0)] {
            assert_eq!(lut.mul(a, b), (u16::from(a) * u16::from(b)) | 1);
        }
        assert!(!lut.is_dead());
        assert!(lut.description().contains("stuck1"));
    }

    #[test]
    fn activation_latch_fault_remaps_the_right_operand_only() {
        let base = MulLut::exact();
        let fault = SiteFault::new(
            FaultTarget::ActivationCodes,
            FaultModel::StuckAt {
                lanes: 0x80,
                value: true,
            },
        );
        let lut = faulted_site_lut(&base, &fault, 3);
        // Right operand reads with bit 7 stuck high; left is untouched.
        assert_eq!(lut.mul(2, 1), 2 * 129);
        assert_eq!(lut.mul(2, 0x81), 2 * 129);
        assert_eq!(lut.mul(0x81, 0), 0x81 * 0x80);
    }

    #[test]
    #[should_panic(expected = "not LUT faults")]
    fn weight_faults_are_rejected_here() {
        let base = MulLut::exact();
        let fault = SiteFault::new(
            FaultTarget::WeightCodes,
            FaultModel::StuckAt {
                lanes: 1,
                value: true,
            },
        );
        let _ = faulted_site_lut(&base, &fault, 0);
    }
}
