//! Training and evaluation loops for capsule models.

use redcane_datasets::Dataset;
use redcane_nn::{margin_loss, Adam, MarginLossConfig, Optimizer};
use redcane_tensor::TensorRng;

use crate::inject::{Injector, NoInjection};
use crate::model::CapsModel;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print a line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 2e-3,
            seed: 7,
            verbose: false,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub train_accuracy: f64,
}

/// Trains `model` on `data` with Adam and the CapsNet margin loss.
///
/// Deterministic given the model's initial weights and `cfg.seed`.
pub fn train(model: &mut dyn CapsModel, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    // Degenerate scaled-down configs must not panic: a zero batch size
    // behaves like per-sample training.
    let batch_size = cfg.batch_size.max(1);
    let mut opt = Adam::new(cfg.lr);
    let mut rng = TensorRng::from_seed(cfg.seed);
    let loss_cfg = MarginLossConfig::default();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let order = rng.permutation(data.len());
        let mut total_loss = 0.0f32;
        for chunk in order.chunks(batch_size) {
            model.zero_grad();
            for &idx in chunk {
                let sample = &data.samples[idx];
                let lengths = model.forward(&sample.image, &mut NoInjection);
                let (loss, dl) = margin_loss(&lengths, sample.label, loss_cfg);
                total_loss += loss;
                model.backward_from_lengths(&dl);
            }
            let mut params = model.params_mut();
            opt.step(&mut params, 1.0 / chunk.len() as f32);
        }
        let mean_loss = total_loss / data.len() as f32;
        epoch_losses.push(mean_loss);
        if cfg.verbose {
            eprintln!(
                "[train {}] epoch {}/{}: loss {:.4}",
                model.name(),
                epoch + 1,
                cfg.epochs,
                mean_loss
            );
        }
    }
    let train_accuracy = evaluate(model, data, &mut NoInjection);
    TrainReport {
        epoch_losses,
        train_accuracy,
    }
}

/// Classification accuracy of `model` on `data` under `injector`
/// (pass [`NoInjection`] for the accurate network).
pub fn evaluate(model: &mut dyn CapsModel, data: &Dataset, injector: &mut dyn Injector) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .samples
        .iter()
        .filter(|s| model.predict_with(&s.image, injector) == s.label)
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CapsNetConfig;
    use crate::model::CapsNet;
    use redcane_datasets::{generate, Benchmark, GenerateConfig};

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 120,
                test: 40,
                seed: 11,
            },
        );
        let mut rng = TensorRng::from_seed(170);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let report = train(
            &mut model,
            &pair.train,
            &TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 2e-3,
                seed: 3,
                verbose: false,
            },
        );
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss should fall: {:?}",
            report.epoch_losses
        );
        // Way above the 10 % chance level even with a tiny budget.
        assert!(
            report.train_accuracy > 0.3,
            "train accuracy {}",
            report.train_accuracy
        );
        let test_acc = evaluate(&mut model, &pair.test, &mut NoInjection);
        assert!(test_acc > 0.2, "test accuracy {test_acc}");
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 1,
                test: 0,
                seed: 1,
            },
        );
        let mut rng = TensorRng::from_seed(171);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        assert_eq!(evaluate(&mut model, &pair.test, &mut NoInjection), 0.0);
    }
}
