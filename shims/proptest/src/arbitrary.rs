//! Default value generation for bare-typed `proptest!` parameters and
//! `any::<T>()`.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    /// Finite floats, roughly log-uniform across magnitudes.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = rng.unit_f64() as f32 * 2.0 - 1.0;
        let exp = (rng.below(61) as i32 - 30) as f32;
        mantissa * exp.exp2()
    }
}

impl Arbitrary for f64 {
    /// Finite floats, roughly log-uniform across magnitudes.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(121) as i32 - 60) as f64;
        mantissa * exp.exp2()
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
