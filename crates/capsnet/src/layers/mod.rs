//! Capsule layers: 2-D conv-caps, 3-D (routing) conv-caps, and the
//! fully-connected ClassCaps layer.

mod caps3d;
mod class_caps;
mod conv_caps;

pub use caps3d::ConvCaps3d;
pub use class_caps::ClassCaps;
pub use conv_caps::ConvCaps2d;
