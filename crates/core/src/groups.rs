//! Step 1 — group extraction (Table III of the paper).

use redcane_capsnet::inject::{OpKind, OpSite, RecordingInjector};
use redcane_capsnet::CapsModel;
use redcane_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The four operation groups of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Group {
    /// #1 — outputs of the matrix multiplications / convolutions.
    MacOutputs,
    /// #2 — outputs of the activation functions (ReLU or squash).
    Activations,
    /// #3 — results of the softmax (`k` coefficients in dynamic routing).
    Softmax,
    /// #4 — update of the logits (`b` coefficients in dynamic routing).
    LogitsUpdate,
}

impl Group {
    /// All groups in the paper's numbering order.
    pub fn all() -> [Group; 4] {
        [
            Group::MacOutputs,
            Group::Activations,
            Group::Softmax,
            Group::LogitsUpdate,
        ]
    }

    /// The paper's group number (1-based).
    pub fn number(&self) -> usize {
        match self {
            Group::MacOutputs => 1,
            Group::Activations => 2,
            Group::Softmax => 3,
            Group::LogitsUpdate => 4,
        }
    }

    /// The operation kind this group injects into.
    pub fn op_kind(&self) -> OpKind {
        match self {
            Group::MacOutputs => OpKind::MacOutput,
            Group::Activations => OpKind::Activation,
            Group::Softmax => OpKind::Softmax,
            Group::LogitsUpdate => OpKind::LogitsUpdate,
        }
    }

    /// The group a site belongs to (`None` for observation-only kinds).
    pub fn of_site(site: &OpSite) -> Option<Group> {
        match site.kind {
            OpKind::MacOutput => Some(Group::MacOutputs),
            OpKind::Activation => Some(Group::Activations),
            OpKind::Softmax => Some(Group::Softmax),
            OpKind::LogitsUpdate => Some(Group::LogitsUpdate),
            OpKind::MacInput => None,
        }
    }

    /// Table III's description of the group.
    pub fn description(&self) -> &'static str {
        match self {
            Group::MacOutputs => "outputs of the matrix multiplications",
            Group::Activations => "output of the activation functions (RELU or SQUASH)",
            Group::Softmax => "results of the softmax (k coefficients in dynamic routing)",
            Group::LogitsUpdate => "update of the logits (b coefficients in dynamic routing)",
        }
    }

    /// Short label used in figures ("#1: MAC outputs" style).
    pub fn label(&self) -> String {
        format!("#{}: {}", self.number(), self.op_kind().label())
    }
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The result of Step 1: every distinct operation site of one inference,
/// partitioned into the four groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupInventory {
    /// Model display name.
    pub model_name: String,
    /// Distinct sites per group, in network order.
    pub sites: Vec<(Group, Vec<OpSite>)>,
}

impl GroupInventory {
    /// Sites of one group.
    pub fn group_sites(&self, group: Group) -> &[OpSite] {
        self.sites
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[])
    }

    /// Distinct layer names participating in a group, in network order.
    pub fn group_layers(&self, group: Group) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for site in self.group_sites(group) {
            if seen.insert(site.layer_name.clone()) {
                out.push(site.layer_name.clone());
            }
        }
        out
    }

    /// Total distinct sites across all groups.
    pub fn total_sites(&self) -> usize {
        self.sites.iter().map(|(_, s)| s.len()).sum()
    }
}

/// Runs one recorded inference of `model` on `sample` and partitions the
/// visited operation sites into the four groups (Step 1, "Group
/// Extraction").
pub fn extract_groups<M: CapsModel>(model: &mut M, sample: &Tensor) -> GroupInventory {
    let mut rec = RecordingInjector::sites_only();
    let _ = model.forward(sample, &mut rec);
    let distinct = rec.distinct_sites();
    let sites = Group::all()
        .into_iter()
        .map(|g| {
            let group_sites: Vec<OpSite> = distinct
                .iter()
                .filter(|s| Group::of_site(s) == Some(g))
                .cloned()
                .collect();
            (g, group_sites)
        })
        .collect();
    GroupInventory {
        model_name: model.name(),
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig};
    use redcane_tensor::TensorRng;

    #[test]
    fn group_metadata_is_stable() {
        assert_eq!(Group::all().len(), 4);
        assert_eq!(Group::MacOutputs.number(), 1);
        assert_eq!(Group::LogitsUpdate.number(), 4);
        assert!(Group::Softmax.label().contains("#3"));
        assert!(Group::Activations.description().contains("SQUASH"));
    }

    #[test]
    fn site_classification_matches_table3() {
        let mk = |kind| OpSite::new(0, "x", kind);
        assert_eq!(
            Group::of_site(&mk(OpKind::MacOutput)),
            Some(Group::MacOutputs)
        );
        assert_eq!(Group::of_site(&mk(OpKind::Softmax)), Some(Group::Softmax));
        assert_eq!(Group::of_site(&mk(OpKind::MacInput)), None);
    }

    #[test]
    fn capsnet_inventory_structure() {
        let mut rng = TensorRng::from_seed(200);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let inv = extract_groups(&mut model, &x);
        // All four groups populated.
        for g in Group::all() {
            assert!(!inv.group_sites(g).is_empty(), "group {g} empty");
        }
        // Softmax/logits only in the routing layer.
        assert_eq!(inv.group_layers(Group::Softmax), vec!["ClassCaps"]);
        assert_eq!(inv.group_layers(Group::LogitsUpdate), vec!["ClassCaps"]);
        // MAC outputs across all three layers.
        assert_eq!(
            inv.group_layers(Group::MacOutputs),
            vec!["Conv1", "PrimaryCaps", "ClassCaps"]
        );
        assert!(inv.total_sites() > 6);
    }

    #[test]
    fn deepcaps_routing_groups_span_two_layers() {
        let mut rng = TensorRng::from_seed(201);
        let mut model = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let inv = extract_groups(&mut model, &x);
        let softmax_layers = inv.group_layers(Group::Softmax);
        assert_eq!(softmax_layers, vec!["Caps3D", "ClassCaps"]);
        // MAC outputs cover all 18 layers.
        assert_eq!(inv.group_layers(Group::MacOutputs).len(), 18);
    }
}
