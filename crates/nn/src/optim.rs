//! First-order optimizers operating on [`Param`] collections.
//!
//! Optimizers keep per-parameter state keyed by position, so the caller
//! must pass the **same parameter list in the same order** on every step
//! (which is natural when the list comes from a model's `params_mut`).

use redcane_tensor::Tensor;

use crate::param::Param;

/// A first-order optimizer.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated
    /// gradients, then the caller typically zeroes the gradients.
    ///
    /// `scale` multiplies every gradient (use `1.0 / batch_size` to average
    /// per-sample gradients).
    fn step(&mut self, params: &mut [&mut Param], scale: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param], scale: f32) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, &g), vel) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(v.data_mut())
            {
                *vel = self.momentum * *vel + g * scale;
                *w -= self.lr * *vel;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param], scale: f32) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, &g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                let g = g * scale;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(w) = (w - 3)^2 must converge to w = 3.
    fn converges_on_quadratic(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut p = Param::new(Tensor::from_slice(&[0.0]));
        for _ in 0..iters {
            let w = p.value.data()[0];
            p.zero_grad();
            p.accumulate(&Tensor::from_slice(&[2.0 * (w - 3.0)]));
            opt.step(&mut [&mut p], 1.0);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges() {
        let w = converges_on_quadratic(&mut Sgd::new(0.1, 0.0), 100);
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = converges_on_quadratic(&mut Sgd::new(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges() {
        let w = converges_on_quadratic(&mut Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn scale_averages_batch_gradients() {
        let mut p = Param::new(Tensor::from_slice(&[1.0]));
        p.accumulate(&Tensor::from_slice(&[4.0])); // two samples, grad 2 each
        let mut opt = Sgd::new(0.5, 0.0);
        opt.step(&mut [&mut p], 0.5); // average: effective grad 2
        assert!((p.value.data()[0] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn adam_takes_bounded_first_step() {
        // Adam's first update is ~lr regardless of gradient magnitude.
        let mut p = Param::new(Tensor::from_slice(&[0.0]));
        p.accumulate(&Tensor::from_slice(&[1e6]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p], 1.0);
        assert!(p.value.data()[0].abs() < 0.011);
    }
}
