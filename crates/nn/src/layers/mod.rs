//! Concrete layers: convolution, dense, and activations.

mod activation;
mod conv;
mod dense;

pub use activation::Relu;
pub use conv::Conv2d;
pub use dense::Dense;
