// Fixture: HashMap/HashSet in a stable-output module (linted as
// `qdp::calib`) must trip R1.
use std::collections::{HashMap, HashSet};

pub struct Observer {
    trackers: HashMap<String, f32>,
}

pub fn distinct(names: &[String]) -> usize {
    let set: HashSet<&String> = names.iter().collect();
    set.len()
}
