//! Nonlinear activation functions, including the capsule `squash`.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// Elementwise ReLU: `max(v, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Capsule **squash** nonlinearity along `axis` (Sabour et al., Eq. 1):
    ///
    /// ```text
    /// v = (|s|^2 / (1 + |s|^2)) * (s / |s|)
    /// ```
    ///
    /// Each vector along `axis` is rescaled so its length lies in `[0, 1)`
    /// while its orientation is preserved. Zero vectors map to zero (the
    /// `eps` guard avoids division by zero).
    ///
    /// This is the capsule analogue of an activation function — group #2 of
    /// the ReD-CaNe operation taxonomy (Table III of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// # fn main() -> Result<(), redcane_tensor::TensorError> {
    /// let s = Tensor::from_vec(vec![3.0, 4.0], &[2])?; // |s| = 5
    /// let v = s.squash_axis(0)?;
    /// let norm = v.sq_norm().sqrt();
    /// assert!((norm - 25.0 / 26.0).abs() < 1e-5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn squash_axis(&self, axis: usize) -> Result<Tensor> {
        let nd = self.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let size = self.shape()[axis];
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let src = self.data();
        let mut out = vec![0.0f32; src.len()];
        const EPS: f32 = 1e-8;
        for o in 0..outer {
            for i in 0..inner {
                let mut sq = 0.0f32;
                for a in 0..size {
                    let v = src[(o * size + a) * inner + i];
                    sq += v * v;
                }
                let norm = (sq + EPS).sqrt();
                let factor = (sq / (1.0 + sq)) / norm;
                for a in 0..size {
                    let off = (o * size + a) * inner + i;
                    out[off] = src[off] * factor;
                }
            }
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Euclidean norm of each vector along `axis` (the axis is removed).
    ///
    /// For capsules this is the **existence probability** readout: the
    /// length of a (squashed) capsule output vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= ndim`.
    pub fn norm_axis(&self, axis: usize) -> Result<Tensor> {
        let nd = self.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let size = self.shape()[axis];
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut new_shape = self.shape().to_vec();
        new_shape.remove(axis);
        let src = self.data();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for a in 0..size {
                let base = (o * size + a) * inner;
                let orow = &mut out[o * inner..(o + 1) * inner];
                for (slot, &v) in orow.iter_mut().zip(&src[base..base + inner]) {
                    *slot += v * v;
                }
            }
        }
        for v in &mut out {
            *v = v.sqrt();
        }
        Tensor::from_vec(out, &new_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_slice(&[-2.0, 0.0, 3.0]);
        assert_eq!(t.relu().data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let t = Tensor::from_slice(&[-10.0, 0.0, 10.0]);
        let s = t.sigmoid();
        assert!(s.data()[0] < 0.001);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 0.999);
    }

    #[test]
    fn squash_preserves_direction() {
        let s = Tensor::from_slice(&[3.0, 4.0]);
        let v = s.squash_axis(0).unwrap();
        // direction: v parallel to s
        let ratio0 = v.data()[0] / s.data()[0];
        let ratio1 = v.data()[1] / s.data()[1];
        assert!((ratio0 - ratio1).abs() < 1e-6);
    }

    #[test]
    fn squash_norm_bounded_below_one() {
        let mut rng = TensorRng::from_seed(20);
        let t = rng.uniform(&[8, 16], -10.0, 10.0);
        let v = t.squash_axis(1).unwrap();
        let norms = v.norm_axis(1).unwrap();
        for &n in norms.data() {
            assert!((0.0..1.0).contains(&n), "norm {n}");
        }
    }

    #[test]
    fn squash_small_vectors_shrink_quadratically() {
        let s = Tensor::from_slice(&[0.1, 0.0]);
        let v = s.squash_axis(0).unwrap();
        // |v| = |s|^2/(1+|s|^2) ~= 0.00990
        let n = v.norm_axis(0).unwrap().data()[0];
        assert!((n - 0.01 / 1.01).abs() < 1e-4, "norm {n}");
    }

    #[test]
    fn squash_zero_vector_is_zero() {
        let s = Tensor::zeros(&[4]);
        let v = s.squash_axis(0).unwrap();
        assert!(v.data().iter().all(|&x| x == 0.0));
        assert!(v.all_finite());
    }

    #[test]
    fn squash_monotone_in_input_norm() {
        // Longer input vectors produce longer output vectors.
        let mut prev = 0.0f32;
        for scale in [0.1f32, 0.5, 1.0, 2.0, 10.0] {
            let s = Tensor::from_slice(&[scale, scale]);
            let n = s.squash_axis(0).unwrap().norm_axis(0).unwrap().data()[0];
            assert!(n > prev, "norm should grow: {n} after {prev}");
            prev = n;
        }
    }

    #[test]
    fn norm_axis_values() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]).unwrap();
        let n = t.norm_axis(1).unwrap();
        assert_eq!(n.shape(), &[2]);
        assert!((n.data()[0] - 5.0).abs() < 1e-6);
        assert!((n.data()[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn squash_axis_middle() {
        let mut rng = TensorRng::from_seed(21);
        let t = rng.uniform(&[2, 4, 3], -1.0, 1.0);
        let v = t.squash_axis(1).unwrap();
        assert_eq!(v.shape(), t.shape());
        let norms = v.norm_axis(1).unwrap();
        for &n in norms.data() {
            assert!(n < 1.0);
        }
    }
}
