//! Offline shim for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as blanket-implemented marker
//! traits plus no-op derive macros, which is all the workspace uses
//! today (types are annotated for future serialization, but reports
//! hand-roll their JSON). Replace this path dependency with the real
//! crates.io `serde` once network access exists; no source changes
//! elsewhere are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de` for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
