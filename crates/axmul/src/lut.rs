//! Multiply lookup tables: any behavioral multiplier tabulated into a
//! 64 KiB truth table, and a cache of one table per library component.
//!
//! An 8×8 unsigned multiplier has only 65 536 distinct input pairs, so
//! any [`Multiplier8`] — bit-level behavioral models included — can be
//! tabulated once into a 64 KiB table and then applied at L1-resident
//! lookup speed inside integer GEMM inner loops. This is what makes
//! sweeping a whole component library through end-to-end inference
//! practical.
//!
//! [`MulLut`] is a concrete struct kernels index directly (no virtual
//! call on the hot path — unlike [`LutMultiplier`](crate::LutMultiplier),
//! which adapts a table back *into* the [`Multiplier8`] trait).
//! [`LutCache`] holds **one** table per distinct component of a
//! heterogeneous datapath assignment, shared across every site that
//! runs the component and — the tables sit behind [`Arc`] — across
//! worker threads.

use std::collections::BTreeMap;
use std::sync::Arc;

use redcane_trace as trace;

use crate::library::MultiplierLibrary;
use crate::mult::{ExactMultiplier, Multiplier8};

/// A precomputed table of all 256×256 products of one multiplier model.
#[derive(Clone)]
pub struct MulLut {
    table: Box<[u16; 65536]>,
    description: String,
}

impl MulLut {
    /// Tabulates `model` exhaustively over all 65 536 input pairs.
    pub fn tabulate(model: &dyn Multiplier8) -> Self {
        let mut table = vec![0u16; 65536].into_boxed_slice();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                table[((a as usize) << 8) | b as usize] = model.multiply(a as u8, b as u8);
            }
        }
        MulLut {
            // lint: allow(panic) — the table length is pinned to 65536 entries by the preceding check
            table: table.try_into().expect("sized 65536"),
            description: model.description(),
        }
    }

    /// The exact 8×8 multiplier's table.
    pub fn exact() -> Self {
        Self::tabulate(&ExactMultiplier)
    }

    /// Looks up `a · b` as the tabulated model computes it.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u16 {
        // The index is < 65536 by construction; with the fixed-size
        // boxed array the bounds check folds away.
        self.table[((a as usize) << 8) | b as usize]
    }

    /// The 256-entry product row for a fixed left operand:
    /// `row(a)[b] == mul(a, b)`. Hoisting the row lets a GEMM inner
    /// loop index by the streamed right-operand code alone — `u8`
    /// indexing into a `[u16; 256]` needs no bounds check at all.
    #[inline]
    pub fn row(&self, a: u8) -> &[u16; 256] {
        let start = (a as usize) << 8;
        self.table[start..start + 256]
            .try_into()
            // lint: allow(panic) — the row length is pinned to 256 entries by construction
            .expect("sized 256")
    }

    /// The tabulated model's one-line description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Derives a **faulted view** of this table: a new table modeling
    /// the same multiplier with broken operand latches and/or a broken
    /// product array. `map_a` / `map_b` remap the left / right operand
    /// code as the faulty latch presents it to the array; `map_out`
    /// then remaps each tabulated product, keyed by the table-entry
    /// index `(a << 8) | b` so output faults can be realized
    /// per-entry. Identity closures reproduce the base table
    /// byte-for-byte.
    ///
    /// The fault semantics themselves (bit flips, stuck lanes, …) live
    /// upstream — this crate only composes the remaps into a table the
    /// kernels can run at full speed.
    pub fn faulted_view(
        &self,
        description_suffix: &str,
        map_a: impl Fn(u8) -> u8,
        map_b: impl Fn(u8) -> u8,
        map_out: impl Fn(u32, u16) -> u16,
    ) -> MulLut {
        let mut table = vec![0u16; 65536].into_boxed_slice();
        for a in 0..=255u16 {
            let fa = map_a(a as u8);
            for b in 0..=255u16 {
                let idx = ((a as usize) << 8) | b as usize;
                let base = self.mul(fa, map_b(b as u8));
                table[idx] = map_out(idx as u32, base);
            }
        }
        MulLut {
            // lint: allow(panic) — the table length is pinned to 65536 entries by the preceding check
            table: table.try_into().expect("sized 65536"),
            description: format!("{} [{}]", self.description, description_suffix),
        }
    }

    /// `true` when every tabulated product is zero — a dead multiplier
    /// array. Used by fail-soft datapaths to detect sites that cannot
    /// produce signal and fall back to a working component.
    pub fn is_dead(&self) -> bool {
        self.table.iter().all(|&v| v == 0)
    }

    /// `true` when this table is entry-for-entry identical to `other`.
    pub fn same_table(&self, other: &MulLut) -> bool {
        self.table[..] == other.table[..]
    }
}

impl std::fmt::Debug for MulLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulLut")
            .field("description", &self.description)
            .finish()
    }
}

/// A component name naming no entry of the library a [`LutCache`] was
/// built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownComponent {
    /// The unresolvable component name.
    pub component: String,
}

impl std::fmt::Display for UnknownComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no multiplier named '{}' in the library", self.component)
    }
}

impl std::error::Error for UnknownComponent {}

/// Work-counter hook for [`LutCache`] lookups: lookups depend only on
/// the program being resolved (never on worker count or cache state of
/// the artifact store), so hit/miss totals are deterministic.
#[inline]
fn trace_lookup(hit: bool) {
    if trace::enabled() {
        trace::add(
            if hit {
                trace::Counter::LutCacheHits
            } else {
                trace::Counter::LutCacheMisses
            },
            1,
        );
    }
}

/// One 64 KiB [`MulLut`] per **distinct** multiplier of a heterogeneous
/// datapath, keyed by component name.
///
/// A per-layer assignment can name the same component at many sites;
/// the cache tabulates each component exactly once and every site (and,
/// through the [`Arc`] handles, every worker thread) shares the same
/// table.
#[derive(Debug, Clone, Default)]
pub struct LutCache {
    luts: BTreeMap<String, Arc<MulLut>>,
}

impl LutCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a pre-tabulated component table.
    pub fn insert(&mut self, name: impl Into<String>, lut: MulLut) {
        self.luts.insert(name.into(), Arc::new(lut));
    }

    /// Tabulates every component of `library` — 64 KiB each, ~2 MiB for
    /// the standard 35-entry library — so any assignment over that
    /// library resolves.
    pub fn tabulate_all(library: &MultiplierLibrary) -> Self {
        let mut cache = LutCache::new();
        for entry in library.iter() {
            cache.insert(entry.name(), MulLut::tabulate(entry.model()));
        }
        cache
    }

    /// Tabulates exactly the named components from `library`.
    ///
    /// # Errors
    ///
    /// [`UnknownComponent`] when a name matches no library entry.
    pub fn for_components<'a>(
        library: &MultiplierLibrary,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self, UnknownComponent> {
        let mut cache = LutCache::new();
        for name in names {
            if cache.luts.contains_key(name) {
                continue;
            }
            let entry = library.find(name).ok_or_else(|| UnknownComponent {
                component: name.to_string(),
            })?;
            cache.insert(name, MulLut::tabulate(entry.model()));
        }
        Ok(cache)
    }

    /// The table for one component, if cached.
    pub fn get(&self, name: &str) -> Option<&MulLut> {
        let found = self.luts.get(name).map(Arc::as_ref);
        trace_lookup(found.is_some());
        found
    }

    /// A shareable handle to one component's table, if cached.
    pub fn get_arc(&self, name: &str) -> Option<Arc<MulLut>> {
        let found = self.luts.get(name).cloned();
        trace_lookup(found.is_some());
        found
    }

    /// Number of distinct cached components.
    pub fn len(&self) -> usize {
        self.luts.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.luts.is_empty()
    }

    /// Cached component names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.luts.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive LUT ↔ direct-multiply equivalence over all 65 536
    /// input pairs, for the exact component and two approximate library
    /// entries — the LUT path must be bit-identical to calling
    /// `Multiplier8::multiply` directly.
    #[test]
    fn lut_bit_identical_to_direct_multiply_exhaustively() {
        let lib = MultiplierLibrary::evo_approx_like();
        for name in ["mul8u_1JFF", "mul8u_NGR", "mul8u_QKX"] {
            let entry = lib.find(name).unwrap_or_else(|| panic!("missing {name}"));
            let lut = MulLut::tabulate(entry.model());
            for a in 0..=255u8 {
                for b in 0..=255u8 {
                    assert_eq!(
                        lut.mul(a, b),
                        entry.model().multiply(a, b),
                        "{name}: {a} x {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_lut_is_the_product() {
        let lut = MulLut::exact();
        assert_eq!(lut.mul(255, 255), 65025);
        assert_eq!(lut.mul(0, 200), 0);
        assert_eq!(lut.mul(12, 11), 132);
        assert!(lut.description().contains("exact"));
    }

    #[test]
    fn cache_tabulates_each_component_once_and_resolves_by_name() {
        let lib = MultiplierLibrary::evo_approx_like();
        let cache =
            LutCache::for_components(&lib, ["mul8u_1JFF", "mul8u_QKX", "mul8u_1JFF"]).unwrap();
        assert_eq!(cache.len(), 2, "duplicate names share one table");
        assert_eq!(cache.get("mul8u_1JFF").unwrap().mul(200, 100), 20000);
        assert!(cache.get("mul8u_NGR").is_none());
        // Arc handles alias the same table.
        let a = cache.get_arc("mul8u_QKX").unwrap();
        let b = cache.get_arc("mul8u_QKX").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_rejects_unknown_components() {
        let lib = MultiplierLibrary::evo_approx_like();
        let err = LutCache::for_components(&lib, ["mul8u_nope"]).unwrap_err();
        assert_eq!(err.component, "mul8u_nope");
        assert!(err.to_string().contains("mul8u_nope"));
    }

    #[test]
    fn faulted_view_with_identity_maps_reproduces_the_base_table() {
        let lib = MultiplierLibrary::evo_approx_like();
        let base = MulLut::tabulate(lib.find("mul8u_NGR").unwrap().model());
        let view = base.faulted_view("identity", |a| a, |b| b, |_, v| v);
        assert!(view.same_table(&base));
        assert!(view.description().contains("identity"));
        assert!(!base.is_dead());
    }

    #[test]
    fn faulted_view_composes_operand_and_output_maps() {
        let base = MulLut::exact();
        // Left operand stuck at 0: every product collapses to mul(0, b).
        let dead_a = base.faulted_view("a=0", |_| 0, |b| b, |_, v| v);
        assert!(dead_a.is_dead());
        // Output low bit stuck at 1.
        let sticky = base.faulted_view("out|1", |a| a, |b| b, |_, v| v | 1);
        assert_eq!(sticky.mul(3, 4), 13);
        assert_eq!(sticky.mul(3, 5), 15);
        // Right-operand remap hits the column, not the row.
        let b_high = base.faulted_view("b|0x80", |a| a, |b| b | 0x80, |_, v| v);
        assert_eq!(b_high.mul(2, 1), 2 * 129);
        assert_eq!(b_high.mul(2, 0x81), 2 * 129);
        // The entry index handed to map_out addresses (a << 8) | b.
        let keyed = base.faulted_view(
            "entry",
            |a| a,
            |b| b,
            |idx, v| if idx == ((7 << 8) | 9) { 999 } else { v },
        );
        assert_eq!(keyed.mul(7, 9), 999);
        assert_eq!(keyed.mul(9, 7), 63);
    }

    #[test]
    fn tabulate_all_covers_the_library() {
        let lib = MultiplierLibrary::evo_approx_like();
        let cache = LutCache::tabulate_all(&lib);
        assert_eq!(cache.len(), lib.len());
        for entry in lib.iter() {
            assert!(
                cache.get(entry.name()).is_some(),
                "missing {}",
                entry.name()
            );
        }
        assert_eq!(cache.names().len(), lib.len());
    }
}
