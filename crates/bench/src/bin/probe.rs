//! Training/evaluation throughput probe for the two reference models.
//!
//! Trains the small CapsNet on the MNIST-like benchmark and the small
//! DeepCaps on the CIFAR-like benchmark and reports wall-clock times.
//! Scale the run down for quick checks:
//!
//! ```text
//! probe [--train N] [--test N] [--epochs N] [--quick]
//! ```
//!
//! `--quick` is shorthand for `--train 100 --test 30 --epochs 1`.

use std::process::ExitCode;
use std::time::Instant;

use redcane_bench::cli::{next_parsed, require_nonzero};
use redcane_capsnet::{
    evaluate, inject::NoInjection, train, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig,
    TrainConfig,
};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_tensor::TensorRng;

struct ProbeConfig {
    train: usize,
    test: usize,
    epochs: usize,
}

fn parse_args() -> Result<ProbeConfig, String> {
    let mut cfg = ProbeConfig {
        train: 1500,
        test: 300,
        epochs: 6,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--train" => cfg.train = next_parsed(&mut args, "--train")?,
            "--test" => cfg.test = next_parsed(&mut args, "--test")?,
            "--epochs" => cfg.epochs = next_parsed(&mut args, "--epochs")?,
            "--quick" => {
                cfg.train = 100;
                cfg.test = 30;
                cfg.epochs = 1;
            }
            "--help" | "-h" => {
                eprintln!("probe: train/evaluate throughput microbenchmark");
                eprintln!("flags: --train N, --test N, --epochs N, --quick");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    // Scaled-down runs must not panic: training needs at least one
    // sample, and zero test samples simply evaluates to accuracy 0.
    require_nonzero(cfg.train, "--train")?;
    Ok(cfg)
}

fn main() -> ExitCode {
    let probe = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("probe: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = GenerateConfig {
        train: probe.train,
        test: probe.test,
        seed: 1,
    };
    let tcfg = TrainConfig {
        epochs: probe.epochs,
        batch_size: 16,
        lr: 2e-3,
        seed: 3,
        verbose: true,
    };

    let pair = generate(Benchmark::MnistLike, &cfg);
    let mut rng = TensorRng::from_seed(42);
    let mut m = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    let t0 = Instant::now();
    let rep = train(&mut m, &pair.train, &tcfg);
    let acc = evaluate(&mut m, &pair.test, &mut NoInjection);
    println!(
        "CapsNet mnist-like: train_acc={:.3} test_acc={:.3} in {:?}",
        rep.train_accuracy,
        acc,
        t0.elapsed()
    );

    let pair = generate(Benchmark::Cifar10Like, &cfg);
    let mut m = DeepCaps::new(&DeepCapsConfig::small(3, 20), &mut rng);
    let t0 = Instant::now();
    let rep = train(&mut m, &pair.train, &tcfg);
    let acc = evaluate(&mut m, &pair.test, &mut NoInjection);
    println!(
        "DeepCaps cifar-like: train_acc={:.3} test_acc={:.3} in {:?}",
        rep.train_accuracy,
        acc,
        t0.elapsed()
    );
    ExitCode::SUCCESS
}
