//! SVHN-like renderer: a colored seven-segment digit over a cluttered,
//! colored background (house-number photographs are digits on noisy walls
//! with strong color variation and distractor structure).

use redcane_tensor::{Tensor, TensorRng};

use crate::canvas::{stack_rgb, Canvas};
use crate::digits;

/// Renders house-number class `0..=9` onto a `[3, h, w]` tensor.
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn render(class: usize, h: usize, w: usize, rng: &mut TensorRng) -> Tensor {
    assert!(class <= 9, "svhn classes are 0..=9");
    // Background: a colored wall with brightness gradient and clutter bars.
    let wall = [
        rng.next_uniform(0.1, 0.6),
        rng.next_uniform(0.1, 0.6),
        rng.next_uniform(0.1, 0.6),
    ];
    let grad_dir = rng.next_uniform(-1.0, 1.0);
    let mut channels = [Canvas::new(h, w), Canvas::new(h, w), Canvas::new(h, w)];
    for (ci, canvas) in channels.iter_mut().enumerate() {
        for y in 0..h {
            for x in 0..w {
                let t = x as f32 / w as f32;
                let g = 1.0 + grad_dir * (t - 0.5) * 0.6;
                canvas.stamp(y as isize, x as isize, wall[ci] * g);
            }
        }
    }
    // Clutter: 1-2 random bars (sills/frames) in a different color.
    let bars = 1 + rng.next_index(2);
    for _ in 0..bars {
        let y0 = rng.next_uniform(0.0, h as f32 - 2.0);
        let x0 = rng.next_uniform(0.0, w as f32 - 2.0);
        let vertical = rng.next_bool(0.5);
        let (y1, x1) = if vertical {
            (y0 + rng.next_uniform(4.0, h as f32 / 2.0), x0 + 1.0)
        } else {
            (y0 + 1.0, x0 + rng.next_uniform(4.0, w as f32 / 2.0))
        };
        let shade = rng.next_uniform(0.0, 0.8);
        for canvas in channels.iter_mut() {
            canvas.fill_rect(y0, x0, y1, x1, shade * rng.next_uniform(0.6, 1.0));
        }
    }
    // The digit glyph, in a saturated foreground color, composited over
    // the background by max-blend per channel.
    let glyph = digits::render(class, h, w, rng); // [1, h, w]
    let fg = [
        rng.next_uniform(0.5, 1.0),
        rng.next_uniform(0.5, 1.0),
        rng.next_uniform(0.5, 1.0),
    ];
    for (ci, canvas) in channels.iter_mut().enumerate() {
        for y in 0..h {
            for x in 0..w {
                // lint: allow(panic) — indices iterate the tensor's own dims, so they are in bounds
                let g = glyph.get(&[0, y, x]).expect("in bounds");
                if g > 0.35 {
                    canvas.stamp(y as isize, x as isize, g * fg[ci]);
                }
            }
        }
    }
    for canvas in channels.iter_mut() {
        canvas.add_noise(0.05, rng);
    }
    stack_rgb(&channels[0], &channels[1], &channels[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rgb_with_background() {
        let mut rng = TensorRng::from_seed(90);
        let t = render(3, 20, 20, &mut rng);
        assert_eq!(t.shape(), &[3, 20, 20]);
        // Background means substantial nonzero mass everywhere.
        assert!(t.mean() > 0.05);
        assert!(t.max_value() <= 1.0 && t.min_value() >= 0.0);
    }

    #[test]
    fn digit_region_is_brighter_than_wall_on_some_channel() {
        let mut rng = TensorRng::from_seed(91);
        let t = render(8, 20, 20, &mut rng);
        // An 8 covers the glyph box center; compare against a corner.
        let center: f32 = (0..3).map(|c| t.get(&[c, 10, 10]).unwrap()).sum();
        let corner: f32 = (0..3).map(|c| t.get(&[c, 1, 18]).unwrap()).sum();
        // Not guaranteed for every sample, but seed-pinned here.
        assert!(center > corner * 0.8, "center {center} corner {corner}");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_class() {
        let mut rng = TensorRng::from_seed(92);
        let _ = render(11, 20, 20, &mut rng);
    }
}
