//! Deterministic random tensor generation.
//!
//! Every stochastic component of the ReD-CaNe stack (weight init, dataset
//! synthesis, noise injection) draws from a [`TensorRng`] seeded explicitly
//! by the caller, so every experiment is reproducible from its printed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// A seedable random source that fills and creates tensors.
///
/// Normal variates are generated with the Box–Muller transform so the crate
/// needs no distribution dependency beyond `rand` itself.
///
/// # Example
///
/// ```
/// use redcane_tensor::TensorRng;
///
/// let mut rng = TensorRng::from_seed(7);
/// let t = rng.normal(&[1000], 0.0, 1.0);
/// // Empirical mean of 1000 standard normal draws is near zero.
/// assert!(t.mean().abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    inner: StdRng,
    /// Cached second Box–Muller variate.
    spare: Option<f32>,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TensorRng {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws a uniform `f32` in `[lo, hi)`.
    pub fn next_uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.inner.gen::<f32>()
    }

    /// Draws a standard normal variate via Box–Muller.
    pub fn next_standard_normal(&mut self) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        loop {
            let u1: f32 = self.inner.gen::<f32>();
            if u1 <= f32::MIN_POSITIVE {
                continue; // avoid ln(0)
            }
            let u2: f32 = self.inner.gen::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Draws a normal variate with the given mean and standard deviation.
    pub fn next_normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.next_standard_normal()
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_index requires a non-zero bound");
        self.inner.gen_range(0..bound)
    }

    /// Draws a `bool` that is `true` with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Creates a tensor of uniform variates in `[lo, hi)`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.next_uniform(lo, hi))
    }

    /// Creates a tensor of normal variates.
    pub fn normal(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.next_normal(mean, std))
    }

    /// Fills an existing tensor with uniform variates in `[lo, hi)`.
    pub fn fill_uniform(&mut self, tensor: &mut Tensor, lo: f32, hi: f32) {
        for v in tensor.data_mut() {
            *v = self.next_uniform(lo, hi);
        }
    }

    /// Fills an existing tensor with normal variates.
    pub fn fill_normal(&mut self, tensor: &mut Tensor, mean: f32, std: f32) {
        for v in tensor.data_mut() {
            *v = self.next_normal(mean, std);
        }
    }

    /// Adds independent `N(mean, std)` noise to every element in place.
    ///
    /// This is the primitive used by the ReD-CaNe noise-injection model
    /// (Eqs. 3–4 of the paper).
    pub fn perturb_normal(&mut self, tensor: &mut Tensor, mean: f32, std: f32) {
        for v in tensor.data_mut() {
            *v += self.next_normal(mean, std);
        }
    }

    /// Returns a random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }

    /// Derives an independent child generator; useful for handing each
    /// worker thread its own deterministic stream.
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::from_seed(self.inner.gen::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TensorRng::from_seed(123);
        let mut b = TensorRng::from_seed(123);
        let ta = a.uniform(&[16], 0.0, 1.0);
        let tb = b.uniform(&[16], 0.0, 1.0);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::from_seed(1);
        let mut b = TensorRng::from_seed(2);
        assert_ne!(a.uniform(&[8], 0.0, 1.0), b.uniform(&[8], 0.0, 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = TensorRng::from_seed(7);
        let t = rng.uniform(&[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::from_seed(99);
        let t = rng.normal(&[20000], 5.0, 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn perturb_changes_values_with_expected_spread() {
        let mut rng = TensorRng::from_seed(11);
        let mut t = Tensor::zeros(&[10000]);
        rng.perturb_normal(&mut t, 0.0, 0.5);
        let std = (t.sq_norm() / t.len() as f32).sqrt();
        assert!((std - 0.5).abs() < 0.05, "std {std}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = TensorRng::from_seed(3);
        let p = rng.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = TensorRng::from_seed(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.uniform(&[8], 0.0, 1.0), c2.uniform(&[8], 0.0, 1.0));
    }

    #[test]
    fn next_index_in_bounds() {
        let mut rng = TensorRng::from_seed(5);
        for _ in 0..100 {
            assert!(rng.next_index(7) < 7);
        }
    }
}
