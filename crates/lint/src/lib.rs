//! `redcane-lint` — a std-only workspace invariant checker.
//!
//! The repo's contracts — byte-identical artifacts across thread
//! counts and cold/warm stores, logical work counted at entry points,
//! library code that returns errors instead of panicking — are
//! enforced dynamically by CI `cmp` gates. This crate rejects the
//! known violation *patterns* statically, before they ship:
//!
//! - `R1(determinism)` — no `HashMap`/`HashSet` in stable-output modules
//! - `R2(clock)` — wall-clock reads only in allowlisted timing modules
//! - `R3(panic)` — no unwrap/expect/panic in library code without a
//!   justified `// lint: allow(panic) — <reason>` marker
//! - `R4(trace)` — registered kernel/forward entry points carry a
//!   `trace::` hook
//! - `R5(unsafe)` — `unsafe` only in files registered in
//!   `lint-allow.toml`
//!
//! Run it with `cargo run -p redcane-bench --bin lint` (CI does, before
//! the build matrix) or via this crate's tests. Configuration lives in
//! the checked-in `lint-allow.toml` at the workspace root; the rules
//! are deliberately config-driven so tightening coverage is a data
//! change, not a code change.
#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError, TracedRule};
pub use rules::Finding;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one source string as if it were the file `file` with crate
/// module path `module`. Fixture tests use this directly.
pub fn lint_source(file: &str, module: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    rules::lint_lexed(file, module, &lexed, cfg)
}

/// Loads `lint-allow.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<Config, Box<dyn std::error::Error>> {
    let path = root.join("lint-allow.toml");
    let src = fs::read_to_string(&path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    Ok(Config::parse(&src)?)
}

/// Lints every `crates/**/src/**/*.rs` file under `root` (shims and
/// `tests/` trees are out of scope: fixtures would self-trip the
/// rules, and `#[cfg(test)]`-like exemption is implicit there).
///
/// Files are visited in sorted path order so the findings list is
/// itself deterministic.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = relative_display(root, &path);
            let module = module_path(root, &path).unwrap_or_else(|| "unknown".to_string());
            let src = fs::read_to_string(&path)?;
            findings.extend(lint_source(&rel, &module, &src, cfg));
        }
    }
    Ok(findings)
}

/// Entry point shared by the `lint` binary and the meta-test: lints
/// the workspace at `root`, printing findings to stderr. Returns the
/// number of findings (0 = clean).
pub fn run(root: &Path) -> Result<usize, Box<dyn std::error::Error>> {
    let cfg = load_config(root)?;
    let findings = lint_workspace(root, &cfg)?;
    for f in &findings {
        eprintln!("{f}");
    }
    if !findings.is_empty() {
        eprintln!(
            "redcane-lint: {} finding{} (rules R1–R5; see lint-allow.toml and README \
             \"Static analysis\")",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    Ok(findings.len())
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing `lint-allow.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("lint-allow.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Sorted subdirectories of `dir`.
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
fn relative_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Maps `crates/<dir>/src/<p>.rs` to the module path the config uses:
/// `lib.rs` → `<dir>`, `ops/gemm.rs` → `<dir>::ops::gemm`, `mod.rs`
/// drops its own segment, `bin/foo.rs` → `<dir>::bin::foo`.
fn module_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    // Expect ["crates", <dir>, "src", ...segments..., <file>.rs].
    if parts.len() < 4 || parts[0] != "crates" || parts[2] != "src" {
        return None;
    }
    let mut module = vec![parts[1].clone()];
    for seg in &parts[3..parts.len() - 1] {
        module.push(seg.clone());
    }
    let file = parts[parts.len() - 1].strip_suffix(".rs")?;
    if file != "lib" && file != "mod" && file != "main" {
        module.push(file.to_string());
    }
    Some(module.join("::"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_follow_the_layout() {
        let root = Path::new("/w");
        let cases = [
            ("crates/qdp/src/lib.rs", "qdp"),
            ("crates/qdp/src/calib.rs", "qdp::calib"),
            ("crates/tensor/src/ops/gemm.rs", "tensor::ops::gemm"),
            ("crates/tensor/src/ops/mod.rs", "tensor::ops"),
            ("crates/bench/src/bin/pipeline.rs", "bench::bin::pipeline"),
        ];
        for (rel, want) in cases {
            assert_eq!(
                module_path(root, &root.join(rel)).as_deref(),
                Some(want),
                "{rel}"
            );
        }
    }
}
