//! The squash nonlinearity on capsule-form tensors, with its exact
//! backward pass.
//!
//! Capsule-form tensors here are rank-3 `[C, D, P]`: `C` capsule types,
//! `D` capsule dimensions, `P` positions (spatial sites, or 1 for
//! fully-connected capsules). The squash acts on each `D`-vector:
//!
//! ```text
//! v = s · ‖s‖ / (1 + ‖s‖²)        (direction kept, length in [0, 1))
//! ```

use redcane_tensor::Tensor;

const EPS: f32 = 1e-8;

/// Forward squash along axis 1 of a `[C, D, P]` tensor.
///
/// # Panics
///
/// Panics unless the tensor is rank 3.
pub fn squash_caps(s: &Tensor) -> Tensor {
    assert_eq!(s.ndim(), 3, "squash_caps expects [C, D, P]");
    // lint: allow(panic) — rank was checked by the caller/construction path
    s.squash_axis(1).expect("rank checked")
}

/// Allocation-free squash over raw `[C, D, P]` slices into a scratch
/// output buffer; arithmetic is identical to `Tensor::squash_axis(1)`
/// (the routing hot path relies on that for bitwise stability).
///
/// Public because the quantized datapath's special-function unit must
/// compute exactly the float network's squash.
pub fn squash_slices(sd: &[f32], out: &mut [f32], c_types: usize, d: usize, p: usize) {
    debug_assert_eq!(sd.len(), c_types * d * p);
    debug_assert_eq!(out.len(), sd.len());
    for ci in 0..c_types {
        for pi in 0..p {
            let mut sq = 0.0f32;
            for di in 0..d {
                let v = sd[(ci * d + di) * p + pi];
                sq += v * v;
            }
            let norm = (sq + EPS).sqrt();
            let factor = (sq / (1.0 + sq)) / norm;
            for di in 0..d {
                let off = (ci * d + di) * p + pi;
                out[off] = sd[off] * factor;
            }
        }
    }
}

/// Backward squash: given the pre-squash input `s` and upstream gradient
/// `dv`, returns `ds`.
///
/// With `n = ‖s‖`, `c(n) = n / (1 + n²)` and `v = c(n)·s`:
///
/// ```text
/// ds = c·dv + (c'(n)/n)·(sᵀdv)·s,   c'(n) = (1 − n²) / (1 + n²)²
/// ```
///
/// # Panics
///
/// Panics unless both tensors are rank 3 with identical shapes.
pub fn squash_caps_backward(s: &Tensor, dv: &Tensor) -> Tensor {
    assert_eq!(s.ndim(), 3, "squash_caps_backward expects [C, D, P]");
    assert_eq!(s.shape(), dv.shape(), "gradient shape must match input");
    let (c_types, d, p) = (s.shape()[0], s.shape()[1], s.shape()[2]);
    let mut out = vec![0.0f32; s.len()];
    squash_backward_slices(s.data(), dv.data(), &mut out, c_types, d, p);
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(out, s.shape()).expect("sized")
}

/// Allocation-free form of [`squash_caps_backward`] over raw `[C, D, P]`
/// slices, used by the routing hot path with a scratch output buffer.
/// Arithmetic (and accumulation order) is identical to the tensor form.
pub(crate) fn squash_backward_slices(
    sd: &[f32],
    gd: &[f32],
    out: &mut [f32],
    c_types: usize,
    d: usize,
    p: usize,
) {
    debug_assert_eq!(sd.len(), c_types * d * p);
    debug_assert_eq!(gd.len(), sd.len());
    debug_assert_eq!(out.len(), sd.len());
    for ci in 0..c_types {
        for pi in 0..p {
            // Gather the D-vector at (ci, :, pi).
            let mut n2 = 0.0f32;
            let mut dot = 0.0f32;
            for di in 0..d {
                let off = (ci * d + di) * p + pi;
                n2 += sd[off] * sd[off];
                dot += sd[off] * gd[off];
            }
            let n = (n2 + EPS).sqrt();
            let c = n / (1.0 + n2);
            let c_prime = (1.0 - n2) / (1.0 + n2).powi(2);
            let radial = c_prime / n * dot;
            for di in 0..d {
                let off = (ci * d + di) * p + pi;
                out[off] = c * gd[off] + radial * sd[off];
            }
        }
    }
}

/// Capsule lengths `‖v‖` along axis 1: `[C, D, P] -> [C, P]`.
///
/// # Panics
///
/// Panics unless the tensor is rank 3.
pub fn caps_lengths(v: &Tensor) -> Tensor {
    assert_eq!(v.ndim(), 3, "caps_lengths expects [C, D, P]");
    // lint: allow(panic) — rank was checked by the caller/construction path
    v.norm_axis(1).expect("rank checked")
}

/// Backward of [`caps_lengths`]: given `v` and `d_lengths` (`[C, P]`),
/// returns `dv = d_len · v / ‖v‖`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn caps_lengths_backward(v: &Tensor, d_lengths: &Tensor) -> Tensor {
    assert_eq!(v.ndim(), 3);
    let (c_types, d, p) = (v.shape()[0], v.shape()[1], v.shape()[2]);
    assert_eq!(d_lengths.shape(), [c_types, p], "d_lengths must be [C, P]");
    let vd = v.data();
    let ld = d_lengths.data();
    let mut out = vec![0.0f32; vd.len()];
    for ci in 0..c_types {
        for pi in 0..p {
            let mut n2 = 0.0f32;
            for di in 0..d {
                let off = (ci * d + di) * p + pi;
                n2 += vd[off] * vd[off];
            }
            let n = (n2 + EPS).sqrt();
            let g = ld[ci * p + pi] / n;
            for di in 0..d {
                let off = (ci * d + di) * p + pi;
                out[off] = g * vd[off];
            }
        }
    }
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(out, v.shape()).expect("sized")
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_tensor::TensorRng;

    #[test]
    fn squash_backward_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(110);
        let s = rng.uniform(&[2, 4, 3], -2.0, 2.0);
        let coeffs = rng.uniform(&[2, 4, 3], -1.0, 1.0);
        let loss = |s: &Tensor| squash_caps(s).mul(&coeffs).unwrap().sum();
        let ds = squash_caps_backward(&s, &coeffs);
        let eps = 1e-2f32;
        for idx in [0usize, 5, 11, 17, 23] {
            let mut sp = s.clone();
            sp.data_mut()[idx] += eps;
            let mut sm = s.clone();
            sm.data_mut()[idx] -= eps;
            let num = (loss(&sp) - loss(&sm)) / (2.0 * eps);
            let ana = ds.data()[idx];
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + num.abs()),
                "ds[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn squash_backward_at_near_zero_is_stable() {
        let s = Tensor::full(&[1, 4, 1], 1e-6);
        let dv = Tensor::ones(&[1, 4, 1]);
        let ds = squash_caps_backward(&s, &dv);
        assert!(ds.all_finite());
    }

    #[test]
    fn lengths_shape_and_values() {
        let v = Tensor::from_vec(vec![3.0, 4.0, 0.0, 1.0], &[2, 2, 1]).unwrap();
        let l = caps_lengths(&v);
        assert_eq!(l.shape(), &[2, 1]);
        assert!((l.data()[0] - 5.0).abs() < 1e-5);
        assert!((l.data()[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn lengths_backward_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(111);
        let v = rng.uniform(&[3, 4, 2], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 2], -1.0, 1.0);
        let loss = |v: &Tensor| caps_lengths(v).mul(&coeffs).unwrap().sum();
        let dv = caps_lengths_backward(&v, &coeffs);
        let eps = 1e-2f32;
        for idx in [0usize, 7, 13, 20] {
            let mut vp = v.clone();
            vp.data_mut()[idx] += eps;
            let mut vm = v.clone();
            vm.data_mut()[idx] -= eps;
            let num = (loss(&vp) - loss(&vm)) / (2.0 * eps);
            let ana = dv.data()[idx];
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + num.abs()),
                "dv[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn squash_then_lengths_bounded() {
        let mut rng = TensorRng::from_seed(112);
        let s = rng.uniform(&[4, 8, 5], -10.0, 10.0);
        let l = caps_lengths(&squash_caps(&s));
        assert!(l.data().iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
