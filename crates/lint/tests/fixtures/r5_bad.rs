// Fixture: an unsafe block in an unregistered file must trip R5.
pub fn reinterpret(bytes: &[u8]) -> &str {
    unsafe { std::str::from_utf8_unchecked(bytes) }
}
