//! # redcane-tensor
//!
//! A small, dependency-light, row-major `f32` N-dimensional tensor library.
//! It is the numeric substrate on which the ReD-CaNe reproduction builds its
//! Capsule-Network training and inference stack.
//!
//! The design goals, in order:
//!
//! 1. **Correctness and debuggability** — every shape-sensitive operation
//!    validates its arguments and returns a [`TensorError`] describing the
//!    mismatch; all types implement `Debug`.
//! 2. **Determinism** — all random fills go through [`rng::TensorRng`],
//!    which is seeded explicitly. No global RNG state.
//! 3. **Sufficiency, not generality** — exactly the operations the CapsNet
//!    stack needs (conv via im2col, matmul, axis reductions, activations,
//!    range statistics for the noise model), implemented simply.
//!
//! # Example
//!
//! ```
//! use redcane_tensor::{Tensor, TensorRng};
//!
//! # fn main() -> Result<(), redcane_tensor::TensorError> {
//! let mut rng = TensorRng::from_seed(42);
//! let x = rng.uniform(&[2, 3], -1.0, 1.0);
//! let w = rng.normal(&[3, 4], 0.0, 0.1);
//! let y = x.matmul(&w)?;
//! assert_eq!(y.shape(), &[2, 4]);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

mod error;
mod shape;
mod tensor;

pub mod ops;
pub mod par;
pub mod rng;
pub mod stats;

pub use error::TensorError;
pub use rng::TensorRng;
pub use shape::{strides_for, Shape};
pub use tensor::Tensor;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
