//! # redcane-artifacts
//!
//! Train once, verify everywhere: a content-addressed, versioned store
//! for the expensive, seed-determined products of a training run —
//! trained weights (via the `capsnet::io` codec), calibrated
//! quantization ranges and characterized per-component `(NA, NM)`
//! tables — so every consumer (`pipeline`, `qdp`, `perf`, `probe`,
//! tests, CI) can restore a pinned artifact instead of retraining.
//!
//! ## Keying
//!
//! An artifact is addressed by an [`ArtifactKey`]:
//! `(architecture, dataset, master seed, epochs)` plus a consumer
//! [`fingerprint`] hashing every remaining knob that shapes the
//! artifact's content (sample counts, batch size, learning rate,
//! calibration settings, …). The store schema version
//! ([`STORE_SCHEMA_VERSION`]) is part of both the file name and the
//! header, so a format change can never be silently misread.
//!
//! ## Integrity
//!
//! Every section of the on-disk format carries a length prefix and an
//! FNV-1a checksum; truncated, bit-flipped or wrong-schema entries are
//! rejected with a named [`ArtifactError`] — and [`load_or_train`]
//! falls back to retraining (and rewrites the entry) instead of
//! propagating garbage. Because training is bitwise deterministic at
//! every `REDCANE_THREADS` setting, a restored artifact reproduces the
//! training path bit for bit: downstream JSON artifacts are
//! byte-identical whether the model was trained or restored.
//!
//! ## Invalidation
//!
//! Any change that alters training or calibration numerics must bump
//! [`STORE_SCHEMA_VERSION`]; CI keys its artifact-store cache on it.
//! Stale same-version entries whose configuration changed are already
//! unreachable (the fingerprint is part of the file name), and entries
//! whose tensor shapes no longer match the model are rejected by the
//! weight codec.
#![forbid(unsafe_code)]

mod format;
mod store;

pub use format::{
    fingerprint, ArtifactError, ArtifactKey, ArtifactPayload, ComponentNoise, FaultChar,
    RangeEntry, STORE_SCHEMA_VERSION,
};
pub use store::{load_or_train, ArtifactStore, Provenance, DEFAULT_STORE_DIR, STORE_ENV_VAR};
