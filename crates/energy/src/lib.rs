//! # redcane-energy
//!
//! Power/area accounting for approximate CapsNet designs.
//!
//! Step 6 of the methodology assigns one library component per
//! `(layer, group)` operation; this crate turns that assignment into a
//! whole-design estimate by weighting each assignment with the number
//! of tagged operation sites the Step-1 inventory found for it (a layer
//! whose MACs fire in every routing iteration counts more than a
//! single softmax site), mirroring how the paper reports total
//! multiplier power of the selected design.
#![forbid(unsafe_code)]

use redcane::report::group_slug;
use redcane::{GroupInventory, RedCaNeReport};
use redcane_axmul::library::MultiplierLibrary;

/// One `(layer, group)` row of the design's energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Layer name.
    pub layer: String,
    /// Group slug (`mac_outputs`, …).
    pub group: String,
    /// Selected component name.
    pub component: String,
    /// Number of inventory sites this assignment covers.
    pub sites: usize,
    /// Selected component power, µW per site.
    pub power_uw: f64,
    /// Selected component area, µm² per site.
    pub area_um2: f64,
}

/// The whole-design energy estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Per-assignment rows, in assignment order.
    pub rows: Vec<EnergyRow>,
    /// Site-weighted total power of the approximate design, µW.
    pub total_power_uw: f64,
    /// Site-weighted total power with the exact multiplier everywhere, µW.
    pub exact_total_power_uw: f64,
    /// Site-weighted total area of the approximate design, µm².
    pub total_area_um2: f64,
}

impl EnergyBreakdown {
    /// Fraction of multiplier power saved vs the all-exact design, in
    /// `[0, 1]`; `0.0` when the design has no sites.
    pub fn power_saving(&self) -> f64 {
        if self.exact_total_power_uw <= 0.0 {
            0.0
        } else {
            1.0 - self.total_power_uw / self.exact_total_power_uw
        }
    }
}

fn sites_for(inventory: &GroupInventory, group: redcane::Group, layer: &str) -> usize {
    inventory
        .group_sites(group)
        .iter()
        .filter(|s| s.layer_name == layer)
        .count()
}

/// Builds the site-weighted energy breakdown of a report's design.
///
/// Assignments whose `(layer, group)` has no inventory sites (possible
/// when a report was assembled by hand) count as one site, so every
/// assignment contributes.
pub fn breakdown(report: &RedCaNeReport, library: &MultiplierLibrary) -> EnergyBreakdown {
    let exact_power = library.exact().cost().power_uw;
    let mut rows = Vec::with_capacity(report.design.assignments.len());
    let mut total_power_uw = 0.0;
    let mut exact_total_power_uw = 0.0;
    let mut total_area_um2 = 0.0;
    for a in &report.design.assignments {
        let sites = sites_for(&report.inventory, a.group, &a.layer).max(1);
        total_power_uw += a.power_uw * sites as f64;
        exact_total_power_uw += exact_power * sites as f64;
        total_area_um2 += a.area_um2 * sites as f64;
        rows.push(EnergyRow {
            layer: a.layer.clone(),
            group: group_slug(a.group).to_string(),
            component: a.component.clone(),
            sites,
            power_uw: a.power_uw,
            area_um2: a.area_um2,
        });
    }
    EnergyBreakdown {
        rows,
        total_power_uw,
        exact_total_power_uw,
        total_area_um2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::analysis::{Curve, GroupSweep, SweepPoint};
    use redcane::selection::{ApproxDesign, Assignment, GroupMarking};
    use redcane::Group;
    use redcane_capsnet::inject::OpSite;

    fn fake_report() -> RedCaNeReport {
        let sites = vec![
            (
                Group::MacOutputs,
                vec![
                    OpSite::new(0, "Conv1", Group::MacOutputs.op_kind()),
                    OpSite::routing(2, "ClassCaps", Group::MacOutputs.op_kind(), 0),
                    OpSite::routing(2, "ClassCaps", Group::MacOutputs.op_kind(), 1),
                ],
            ),
            (
                Group::Softmax,
                vec![OpSite::routing(2, "ClassCaps", Group::Softmax.op_kind(), 0)],
            ),
            (Group::Activations, vec![]),
            (Group::LogitsUpdate, vec![]),
        ];
        let assignments = vec![
            Assignment {
                layer: "Conv1".into(),
                group: Group::MacOutputs,
                tolerable_nm: 0.01,
                component: "mul8u_1JFF".into(),
                component_noise: (0.0, 0.0),
                power_uw: 391.0,
                area_um2: 700.0,
            },
            Assignment {
                layer: "ClassCaps".into(),
                group: Group::MacOutputs,
                tolerable_nm: 0.05,
                component: "mul8u_NGR".into(),
                component_noise: (0.0001, 0.004),
                power_uw: 276.0,
                area_um2: 500.0,
            },
            Assignment {
                layer: "ClassCaps".into(),
                group: Group::Softmax,
                tolerable_nm: 0.5,
                component: "mul8u_2P7".into(),
                component_noise: (0.001, 0.05),
                power_uw: 100.0,
                area_um2: 200.0,
            },
        ];
        RedCaNeReport {
            inventory: GroupInventory {
                model_name: "test".into(),
                sites,
            },
            group_sweep: GroupSweep {
                model_name: "test".into(),
                dataset_name: "test".into(),
                baseline_accuracy: 0.9,
                curves: Group::all()
                    .into_iter()
                    .map(|g| Curve {
                        target: g,
                        points: vec![SweepPoint {
                            nm: 0.5,
                            accuracy: 0.8,
                            drop_pp: 10.0,
                        }],
                    })
                    .collect(),
            },
            group_marking: GroupMarking { entries: vec![] },
            layer_sweeps: vec![],
            layer_markings: vec![],
            design: ApproxDesign {
                model_name: "test".into(),
                assignments,
                mean_power_saving: 0.2,
                baseline_accuracy: 0.9,
                predicted_accuracy: 0.88,
                measured_accuracy: None,
            },
        }
    }

    #[test]
    fn breakdown_weights_by_site_count() {
        let report = fake_report();
        let lib = MultiplierLibrary::evo_approx_like();
        let bd = breakdown(&report, &lib);
        assert_eq!(bd.rows.len(), 3);
        assert_eq!(bd.rows[0].sites, 1); // Conv1 MAC
        assert_eq!(bd.rows[1].sites, 2); // ClassCaps MAC, 2 routing iters
        assert_eq!(bd.rows[2].sites, 1); // ClassCaps softmax
        let expected_power = 391.0 + 276.0 * 2.0 + 100.0;
        assert!((bd.total_power_uw - expected_power).abs() < 1e-9);
        let exact = lib.exact().cost().power_uw;
        assert!((bd.exact_total_power_uw - exact * 4.0).abs() < 1e-9);
        assert!((bd.total_area_um2 - (700.0 + 500.0 * 2.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn saving_is_positive_for_cheaper_components() {
        let report = fake_report();
        let lib = MultiplierLibrary::evo_approx_like();
        let bd = breakdown(&report, &lib);
        let exact = lib.exact().cost().power_uw;
        // The fake components are all at or below the exact power.
        assert!(bd.rows.iter().all(|r| r.power_uw <= exact));
        assert!(bd.power_saving() > 0.0);
        assert!(bd.power_saving() < 1.0);
    }

    #[test]
    fn empty_design_saves_nothing() {
        let mut report = fake_report();
        report.design.assignments.clear();
        let bd = breakdown(&report, &MultiplierLibrary::evo_approx_like());
        assert_eq!(bd.rows.len(), 0);
        assert_eq!(bd.power_saving(), 0.0);
    }
}
