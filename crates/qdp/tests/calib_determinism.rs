//! Calibration-range output must be byte-identical across repeated
//! runs.
//!
//! Regression guard for lint rule R1: before the `BTreeMap`
//! conversion, `CalibrationObserver` and `QuantRanges` were backed by
//! `HashMap`s, whose iteration order varies with the per-process
//! hasher seed. The map *contents* were equal across runs, but any
//! consumer iterating them (error attribution, future serializers)
//! could observe a different order per run. This test drives 20
//! fresh calibration sweeps over identical synthetic data and asserts
//! the hand-rendered range JSON — layer, kind, routing flag and
//! quantization parameters per site, in `sites_sorted` order — is the
//! same byte string every time.

use redcane_capsnet::inject::{Injector, OpKind, OpSite};
use redcane_qdp::CalibrationObserver;
use redcane_tensor::Tensor;

/// One deterministic calibration sweep over a synthetic "model" with
/// enough distinct sites that hashed iteration order would almost
/// surely differ between HashMap instances.
fn sweep() -> String {
    let mut obs = CalibrationObserver::with_samples(8);
    let layers = [
        "Conv1",
        "PrimaryCaps",
        "ConvCaps2",
        "ConvCaps3",
        "ClassCaps",
        "Dense1",
        "Dense2",
        "Caps3d",
        "Softmax8",
        "Recon",
    ];
    for (li, layer) in layers.iter().copied().enumerate() {
        for (ki, kind) in [
            OpKind::MacOutput,
            OpKind::MacInput,
            OpKind::Activation,
            OpKind::Softmax,
        ]
        .into_iter()
        .enumerate()
        {
            let lo = -((li + 1) as f32) * 0.5 - ki as f32;
            let hi = (li + 1) as f32 * 0.25 + ki as f32;
            let mut t = Tensor::from_fn(&[32], |i| lo + (hi - lo) * (i as f32 / 31.0));
            obs.inject(&OpSite::new(li, layer, kind), &mut t);
            let mut t2 = Tensor::from_fn(&[32], |i| (lo + i as f32 * 0.01).min(hi));
            obs.inject(&OpSite::routing(li, layer, kind, 1), &mut t2);
        }
    }
    let ranges = obs.ranges(8).expect("sites were observed");
    // Hand-rendered JSON (the serde shim is a marker trait only): one
    // row per site in the deterministic sites_sorted order, plus the
    // sampled operand pool, which also crosses map iteration.
    let mut json = String::from("{\"ranges\":[");
    for (i, (layer, kind, in_routing, p)) in ranges.sites_sorted().into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"layer\":\"{layer}\",\"kind\":\"{kind}\",\"in_routing\":{in_routing},\
             \"min\":{:?},\"max\":{:?},\"bits\":{}}}",
            p.min(),
            p.max(),
            p.bits()
        ));
    }
    json.push_str("],\"codes\":[");
    for (i, c) in obs.sampled_input_codes(&ranges).into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&c.to_string());
    }
    json.push_str("]}");
    json
}

#[test]
fn calibration_range_json_is_identical_across_20_runs() {
    let first = sweep();
    assert!(first.contains("\"layer\":\"Conv1\""));
    assert!(first.contains("\"codes\":["));
    for run in 1..20 {
        let again = sweep();
        assert_eq!(first, again, "run {run} diverged from run 0");
    }
}
