//! The injection interface: tap points at every classified operation.
//!
//! The ReD-CaNe methodology perturbs the output tensors of specific
//! operations during inference. Rather than hard-coding noise into the
//! layers, every tagged operation calls [`Injector::inject`] with an
//! [`OpSite`] describing *where* in the network the tensor was produced.
//! Implementations decide whether and how to perturb it.

use redcane_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The operation taxonomy of the paper's Table III, plus `MacInput`
/// (observed but never noise-injected: it feeds Fig. 11's input
/// distributions and the "real input" component characterization).
///
/// `Ord` follows declaration order; it exists so `(layer, kind,
/// in-routing)` site keys — the currency of calibration ranges and
/// per-site datapath assignments — can key ordered maps and iterate
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Outputs of matrix multiplications / convolutions / vote
    /// accumulations (group #1).
    MacOutput,
    /// Outputs of activation functions — ReLU or squash (group #2).
    Activation,
    /// The routing softmax producing coupling coefficients `k` (group #3).
    Softmax,
    /// The routing logits `b` after their update (group #4).
    LogitsUpdate,
    /// Values *entering* a MAC operation (observation-only tap).
    MacInput,
}

impl OpKind {
    /// The four kinds that form the paper's injection groups (everything
    /// except the observation-only [`OpKind::MacInput`]).
    pub fn injectable() -> [OpKind; 4] {
        [
            OpKind::MacOutput,
            OpKind::Activation,
            OpKind::Softmax,
            OpKind::LogitsUpdate,
        ]
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::MacOutput => "MAC outputs",
            OpKind::Activation => "activations",
            OpKind::Softmax => "softmax",
            OpKind::LogitsUpdate => "logits update",
            OpKind::MacInput => "MAC inputs",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifies one tagged operation instance in a model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpSite {
    /// Index of the producing layer in the model's layer order.
    pub layer_index: usize,
    /// Human-readable layer name (`"Conv2D"`, `"Caps2D7"`, `"ClassCaps"`…).
    pub layer_name: String,
    /// Which classified operation produced the tensor.
    pub kind: OpKind,
    /// Dynamic-routing iteration (0-based) for in-routing operations.
    pub routing_iter: Option<u8>,
}

impl OpSite {
    /// Creates a site outside dynamic routing.
    pub fn new(layer_index: usize, layer_name: impl Into<String>, kind: OpKind) -> Self {
        OpSite {
            layer_index,
            layer_name: layer_name.into(),
            kind,
            routing_iter: None,
        }
    }

    /// Creates a site inside a dynamic-routing iteration.
    pub fn routing(
        layer_index: usize,
        layer_name: impl Into<String>,
        kind: OpKind,
        iter: u8,
    ) -> Self {
        OpSite {
            layer_index,
            layer_name: layer_name.into(),
            kind,
            routing_iter: Some(iter),
        }
    }
}

impl std::fmt::Display for OpSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{} {}", self.layer_name, self.layer_index, self.kind)?;
        if let Some(it) = self.routing_iter {
            write!(f, " (routing iter {it})")?;
        }
        Ok(())
    }
}

/// Receives every tagged tensor during a forward pass and may mutate it.
pub trait Injector {
    /// Called immediately after the operation at `site` produced `tensor`.
    fn inject(&mut self, site: &OpSite, tensor: &mut Tensor);

    /// Whether this injector wants [`OpKind::MacInput`] observation taps.
    ///
    /// Input taps require copying the tensor entering each MAC operation,
    /// so layers skip them unless the injector opts in (recorders do;
    /// noise injectors never perturb inputs and keep the default `false`).
    fn observes_inputs(&self) -> bool {
        false
    }
}

/// The accurate network: a no-op injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInjection;

impl Injector for NoInjection {
    fn inject(&mut self, _site: &OpSite, _tensor: &mut Tensor) {}
}

/// Records every visited site (and optionally sampled values) without
/// perturbing anything. Drives Step 1 of the methodology (group
/// extraction) and the input-distribution studies (Fig. 11, Table IV).
#[derive(Debug, Clone, Default)]
pub struct RecordingInjector {
    /// Sites in visit order (one entry per call).
    pub visits: Vec<OpSite>,
    /// Whether to retain value samples.
    pub keep_values: bool,
    /// Up to `max_values_per_site` values kept per distinct site.
    pub max_values_per_site: usize,
    /// Sampled values, parallel to the distinct sites in `visits`.
    /// Ordered so `values_where` concatenates in site order, never
    /// hasher order (lint rule R1: these reach stable outputs).
    pub values: std::collections::BTreeMap<OpSite, Vec<f32>>,
}

impl RecordingInjector {
    /// Records only site metadata.
    pub fn sites_only() -> Self {
        RecordingInjector::default()
    }

    /// Records site metadata plus up to `max_values_per_site` sampled
    /// values per site.
    pub fn with_values(max_values_per_site: usize) -> Self {
        RecordingInjector {
            keep_values: true,
            max_values_per_site,
            ..Default::default()
        }
    }

    /// Distinct sites in first-visit order.
    pub fn distinct_sites(&self) -> Vec<OpSite> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for s in &self.visits {
            if seen.insert(s.clone()) {
                out.push(s.clone());
            }
        }
        out
    }

    /// All recorded values for sites matching a predicate.
    pub fn values_where(&self, mut pred: impl FnMut(&OpSite) -> bool) -> Vec<f32> {
        let mut out = Vec::new();
        for (site, vals) in &self.values {
            if pred(site) {
                out.extend_from_slice(vals);
            }
        }
        out
    }
}

impl Injector for RecordingInjector {
    fn observes_inputs(&self) -> bool {
        true
    }

    fn inject(&mut self, site: &OpSite, tensor: &mut Tensor) {
        self.visits.push(site.clone());
        if self.keep_values {
            let bucket = self.values.entry(site.clone()).or_default();
            let room = self.max_values_per_site.saturating_sub(bucket.len());
            if room > 0 {
                // Stride so long tensors contribute spread-out samples.
                let stride = (tensor.len() / room.max(1)).max(1);
                bucket.extend(tensor.data().iter().step_by(stride).take(room));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_labels() {
        assert_eq!(OpKind::MacOutput.to_string(), "MAC outputs");
        assert_eq!(OpKind::injectable().len(), 4);
        assert!(!OpKind::injectable().contains(&OpKind::MacInput));
    }

    #[test]
    fn site_display_includes_routing_iter() {
        let s = OpSite::routing(3, "ClassCaps", OpKind::Softmax, 2);
        let txt = s.to_string();
        assert!(txt.contains("ClassCaps"));
        assert!(txt.contains("iter 2"));
    }

    #[test]
    fn no_injection_leaves_tensor_untouched() {
        let mut t = Tensor::from_slice(&[1.0, 2.0]);
        let before = t.clone();
        NoInjection.inject(&OpSite::new(0, "x", OpKind::MacOutput), &mut t);
        assert_eq!(t, before);
    }

    #[test]
    fn recorder_collects_distinct_sites_in_order() {
        let mut rec = RecordingInjector::sites_only();
        let a = OpSite::new(0, "a", OpKind::MacOutput);
        let b = OpSite::new(1, "b", OpKind::Activation);
        let mut t = Tensor::zeros(&[2]);
        rec.inject(&a, &mut t);
        rec.inject(&b, &mut t);
        rec.inject(&a, &mut t);
        assert_eq!(rec.visits.len(), 3);
        let distinct = rec.distinct_sites();
        assert_eq!(distinct.len(), 2);
        assert_eq!(distinct[0], a);
        assert_eq!(distinct[1], b);
    }

    #[test]
    fn recorder_caps_values_per_site() {
        let mut rec = RecordingInjector::with_values(5);
        let site = OpSite::new(0, "conv", OpKind::MacInput);
        let mut t = Tensor::from_fn(&[100], |i| i as f32);
        rec.inject(&site, &mut t);
        rec.inject(&site, &mut t);
        assert_eq!(rec.values[&site].len(), 5);
        let vals = rec.values_where(|s| s.kind == OpKind::MacInput);
        assert_eq!(vals.len(), 5);
    }
}
