//! Dynamic routing-by-agreement (Sabour et al., Procedure 1), shared by
//! the fully-connected `ClassCaps` and the convolutional `Caps3D` layers.
//!
//! The routing state is expressed over a **vote tensor** `[I, J, D, P]`:
//! input capsule `i` casts a `D`-dimensional vote for output capsule type
//! `j` at position `p`. Per iteration:
//!
//! 1. coupling `k = softmax_J(b)` — **Softmax tap** (group #3);
//! 2. `s_j = Σ_i k_ij · û_{j|i}` — **MAC-output tap** (group #1);
//! 3. `v_j = squash(s_j)` — **Activation tap** (group #2);
//! 4. `b_ij += û_{j|i} · v_j` — **LogitsUpdate tap** (group #4).
//!
//! The backward pass is **exact**: gradients flow through every routing
//! iteration — the coupling softmax, the agreement (logits) updates, the
//! weighted sums and the squashes — not just through the final iteration
//! with detached coefficients.
//!
//! # Performance
//!
//! The inner loops are GEMM-shaped slice kernels: row offsets are hoisted
//! once per `(i, j)` pair and the innermost dimension runs over
//! contiguous slices (an axpy over `D` when `P == 1`, an elementwise
//! product over `P` otherwise), so the compiler vectorizes them without
//! per-element index arithmetic or bounds checks. Temporaries live in a
//! [`RoutingScratch`] arena that the owning layer reuses across
//! iterations and samples. Accumulation order is everywhere identical to
//! the original nested loops, keeping seeded runs bit-for-bit stable.

use redcane_tensor::Tensor;

use crate::inject::{Injector, OpKind, OpSite};
use crate::squash::{squash_backward_slices, squash_slices};

/// Per-iteration state recorded by the forward pass (post any injection
/// by the caller, i.e. exactly the values downstream computation saw).
#[derive(Debug, Clone)]
pub struct RoutingIterState {
    /// Coupling coefficients `[I, J, P]` of this iteration.
    pub k: Tensor,
    /// Pre-squash weighted sum `[J, D, P]` of this iteration.
    pub s: Tensor,
    /// Squashed output capsules `[J, D, P]` of this iteration.
    pub v: Tensor,
}

/// Everything the forward pass produces and the backward pass needs.
#[derive(Debug, Clone)]
pub struct RoutingCache {
    /// The votes actually used (post any injection by the caller).
    pub votes: Tensor,
    /// Per-iteration routing state, first iteration first.
    pub history: Vec<RoutingIterState>,
    /// Final output capsules `[J, D, P]`.
    pub v: Tensor,
}

impl RoutingCache {
    /// Final coupling coefficients `[I, J, P]`.
    pub fn k_last(&self) -> &Tensor {
        // lint: allow(panic) — RoutingConfig guarantees at least one iteration, so history is non-empty
        &self.history.last().expect("iterations >= 1").k
    }
}

/// Reusable buffers for the routing loops. Owning one per layer gives
/// the hot path zero per-iteration allocation: the logits tensor and all
/// backward temporaries are grown once to the layer's geometry and then
/// recycled for every sample.
#[derive(Debug, Clone, Default)]
pub struct RoutingScratch {
    /// Routing logits `b` (`[I, J, P]`), reused across samples.
    b: Tensor,
    /// Gradient reaching the current iteration's `v` (`J*D*P`).
    dv_r: Vec<f32>,
    /// Gradient through the squash (`J*D*P`).
    ds: Vec<f32>,
    /// Gradient on the coupling coefficients (`I*J*P`).
    dk: Vec<f32>,
    /// Softmax-backward output and its carry (ping-pong, `I*J*P`).
    db: Vec<f32>,
    db_next: Vec<f32>,
    /// Recycled history buffers (one pool per role), refilled by
    /// [`RoutingScratch::recycle`] when a cache is released.
    pool_k: Vec<Vec<f32>>,
    pool_s: Vec<Vec<f32>>,
    pool_v: Vec<Vec<f32>>,
}

impl RoutingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Releases a routing cache back into the scratch: the per-iteration
    /// history buffers join the pools for the next forward pass, and the
    /// vote buffer is returned so the owning layer can recycle it too.
    pub fn recycle(&mut self, cache: RoutingCache) -> Vec<f32> {
        for it in cache.history {
            self.pool_k.push(it.k.into_vec());
            self.pool_s.push(it.s.into_vec());
            self.pool_v.push(it.v.into_vec());
        }
        cache.votes.into_vec()
    }
}

fn resize(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

/// Pops a pooled buffer resized to `len` (contents unspecified).
fn take_buf(pool: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let mut buf = pool.pop().unwrap_or_default();
    buf.resize(len, 0.0);
    buf
}

/// Softmax over `J` of a `[I, J, P]` slice, written into `out` —
/// arithmetic identical to `Tensor::softmax_axis(1)`.
///
/// Public because the quantized datapath's special-function unit must
/// compute exactly the float routing's coupling softmax.
pub fn softmax_over_j(src: &[f32], out: &mut [f32], i_caps: usize, j_caps: usize, p: usize) {
    for o in 0..i_caps {
        for i in 0..p {
            let mut max = f32::NEG_INFINITY;
            for a in 0..j_caps {
                max = max.max(src[(o * j_caps + a) * p + i]);
            }
            let mut denom = 0.0f32;
            for a in 0..j_caps {
                let e = (src[(o * j_caps + a) * p + i] - max).exp();
                out[(o * j_caps + a) * p + i] = e;
                denom += e;
            }
            if denom > 0.0 {
                for a in 0..j_caps {
                    out[(o * j_caps + a) * p + i] /= denom;
                }
            }
        }
    }
}

/// Runs `iterations` rounds of routing-by-agreement over `votes`
/// (`[I, J, D, P]`), calling `injector` at every tagged operation.
/// Convenience wrapper over [`dynamic_routing_scratched`] with a
/// throwaway scratch.
///
/// # Panics
///
/// Panics unless `votes` is rank 4 and `iterations >= 1`.
pub fn dynamic_routing(
    votes: Tensor,
    iterations: usize,
    layer_index: usize,
    layer_name: &str,
    injector: &mut dyn Injector,
) -> RoutingCache {
    let mut scratch = RoutingScratch::new();
    dynamic_routing_scratched(
        &mut scratch,
        votes,
        iterations,
        layer_index,
        layer_name,
        injector,
    )
}

/// [`dynamic_routing`] against a caller-owned [`RoutingScratch`], the
/// form the layers use so buffers persist across samples.
///
/// # Panics
///
/// Panics unless `votes` is rank 4 and `iterations >= 1`.
pub fn dynamic_routing_scratched(
    scratch: &mut RoutingScratch,
    votes: Tensor,
    iterations: usize,
    layer_index: usize,
    layer_name: &str,
    injector: &mut dyn Injector,
) -> RoutingCache {
    assert_eq!(votes.ndim(), 4, "votes must be [I, J, D, P]");
    assert!(iterations >= 1, "routing needs at least one iteration");
    let (i_caps, j_caps, d, p) = (
        votes.shape()[0],
        votes.shape()[1],
        votes.shape()[2],
        votes.shape()[3],
    );
    if scratch.b.shape() != [i_caps, j_caps, p] {
        scratch.b = Tensor::zeros(&[i_caps, j_caps, p]);
    } else {
        scratch.b.data_mut().fill(0.0);
    }
    let b = &mut scratch.b;
    let mut history: Vec<RoutingIterState> = Vec::with_capacity(iterations);
    let vd = votes.data();
    for r in 0..iterations {
        let iter = r as u8;
        // 1. Coupling coefficients, into a recycled buffer. Iteration 0
        // always sees b == 0, for which the softmax is exactly uniform:
        // exp(0 − 0) = 1.0 and the denominator is the exact integer J,
        // so filling 1/J reproduces the computed softmax bit for bit
        // without J·I·P exp calls.
        let mut kbuf = take_buf(&mut scratch.pool_k, i_caps * j_caps * p);
        if r == 0 {
            kbuf.fill(1.0 / j_caps as f32);
        } else {
            softmax_over_j(b.data(), &mut kbuf, i_caps, j_caps, p);
        }
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let mut k = Tensor::from_vec(kbuf, &[i_caps, j_caps, p]).expect("sized");
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::Softmax, iter),
            &mut k,
        );
        // 2. Weighted vote sum s_j = sum_i k_ij * votes_ij.
        let mut sbuf = take_buf(&mut scratch.pool_s, j_caps * d * p);
        sbuf.fill(0.0);
        weighted_vote_sum(vd, k.data(), &mut sbuf, i_caps, j_caps, d, p);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let mut s = Tensor::from_vec(sbuf, &[j_caps, d, p]).expect("sized");
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::MacOutput, iter),
            &mut s,
        );
        // 3. Squash, into a recycled buffer.
        let mut vbuf = take_buf(&mut scratch.pool_v, j_caps * d * p);
        squash_slices(s.data(), &mut vbuf, j_caps, d, p);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        let mut v = Tensor::from_vec(vbuf, &[j_caps, d, p]).expect("sized");
        injector.inject(
            &OpSite::routing(layer_index, layer_name, OpKind::Activation, iter),
            &mut v,
        );
        // 4. Agreement update (skipped after the last iteration).
        if r + 1 < iterations {
            agreement_update(vd, v.data(), b.data_mut(), i_caps, j_caps, d, p);
            injector.inject(
                &OpSite::routing(layer_index, layer_name, OpKind::LogitsUpdate, iter),
                b,
            );
        }
        history.push(RoutingIterState { k, s, v });
    }
    // lint: allow(panic) — RoutingConfig guarantees at least one iteration, so history is non-empty
    let v = history.last().expect("iterations >= 1").v.clone();
    RoutingCache { votes, history, v }
}

/// `s[j,d,p] += Σ_i k[i,j,p] · votes[i,j,d,p]`, `i` ascending.
fn weighted_vote_sum(
    votes: &[f32],
    k: &[f32],
    s: &mut [f32],
    i_caps: usize,
    j_caps: usize,
    d: usize,
    p: usize,
) {
    if p == 1 {
        // One coupling scalar per (i, j); the D-vector is contiguous.
        for i in 0..i_caps {
            let krow = &k[i * j_caps..(i + 1) * j_caps];
            let vbase = i * j_caps * d;
            for (j, &kv) in krow.iter().enumerate() {
                let vrow = &votes[vbase + j * d..vbase + (j + 1) * d];
                let srow = &mut s[j * d..(j + 1) * d];
                for (o, &vv) in srow.iter_mut().zip(vrow) {
                    *o += kv * vv;
                }
            }
        }
        return;
    }
    for i in 0..i_caps {
        for j in 0..j_caps {
            let krow = &k[(i * j_caps + j) * p..(i * j_caps + j + 1) * p];
            for di in 0..d {
                let vrow =
                    &votes[((i * j_caps + j) * d + di) * p..((i * j_caps + j) * d + di + 1) * p];
                let srow = &mut s[(j * d + di) * p..(j * d + di + 1) * p];
                for ((o, &kv), &vv) in srow.iter_mut().zip(krow).zip(vrow) {
                    *o += kv * vv;
                }
            }
        }
    }
}

/// `b[i,j,p] += Σ_d votes[i,j,d,p] · v[j,d,p]`, `d` ascending.
fn agreement_update(
    votes: &[f32],
    v: &[f32],
    b: &mut [f32],
    i_caps: usize,
    j_caps: usize,
    d: usize,
    p: usize,
) {
    if p == 1 {
        for i in 0..i_caps {
            let brow = &mut b[i * j_caps..(i + 1) * j_caps];
            let vbase = i * j_caps * d;
            for (j, o) in brow.iter_mut().enumerate() {
                let vrow = &votes[vbase + j * d..vbase + (j + 1) * d];
                let urow = &v[j * d..(j + 1) * d];
                let mut dot = 0.0f32;
                for (&a, &u) in vrow.iter().zip(urow) {
                    dot += a * u;
                }
                *o += dot;
            }
        }
        return;
    }
    // The D-dot folds locally before touching `b`, matching the
    // reference accumulation order exactly.
    for i in 0..i_caps {
        for j in 0..j_caps {
            let brow = &mut b[(i * j_caps + j) * p..(i * j_caps + j + 1) * p];
            let vbase = (i * j_caps + j) * d * p;
            let ubase = j * d * p;
            for (pi, o) in brow.iter_mut().enumerate() {
                let mut dot = 0.0f32;
                for di in 0..d {
                    dot += votes[vbase + di * p + pi] * v[ubase + di * p + pi];
                }
                *o += dot;
            }
        }
    }
}

/// Exact backward pass through the whole routing procedure: given `dv`
/// on the routing output, returns `d_votes` (`[I, J, D, P]`).
/// Convenience wrapper over [`dynamic_routing_backward_scratched`].
///
/// # Panics
///
/// Panics if `dv`'s shape differs from the cached output.
pub fn dynamic_routing_backward(cache: &RoutingCache, dv: &Tensor) -> Tensor {
    let mut scratch = RoutingScratch::new();
    dynamic_routing_backward_scratched(&mut scratch, cache, dv)
}

/// [`dynamic_routing_backward`] against a caller-owned scratch.
///
/// Walks the recorded iterations in reverse, propagating through each
/// squash, weighted sum, coupling softmax and agreement update, so the
/// returned gradient is the true derivative of the routing output with
/// respect to the votes.
///
/// # Panics
///
/// Panics if `dv`'s shape differs from the cached output.
pub fn dynamic_routing_backward_scratched(
    scratch: &mut RoutingScratch,
    cache: &RoutingCache,
    dv: &Tensor,
) -> Tensor {
    assert_eq!(dv.shape(), cache.v.shape(), "dv must match routing output");
    let (i_caps, j_caps, d, p) = (
        cache.votes.shape()[0],
        cache.votes.shape()[1],
        cache.votes.shape()[2],
        cache.votes.shape()[3],
    );
    let vd = cache.votes.data();
    let iters = cache.history.len();
    let mut dvotes = vec![0.0f32; i_caps * j_caps * d * p];
    resize(&mut scratch.dv_r, j_caps * d * p);
    resize(&mut scratch.ds, j_caps * d * p);
    resize(&mut scratch.dk, i_caps * j_caps * p);
    resize(&mut scratch.db, i_caps * j_caps * p);
    resize(&mut scratch.db_next, i_caps * j_caps * p);
    // Whether `db_next` currently carries the gradient w.r.t. b_{r+1}.
    let mut have_db = false;
    for r in (0..iters).rev() {
        let it = &cache.history[r];
        // Gradient reaching v_r: the caller's dv on the last iteration;
        // for earlier iterations, v_r only feeds the agreement update
        // b_{r+1}[i,j,p] += Σ_d votes[i,j,d,p] · v_r[j,d,p].
        let dv_r = &mut scratch.dv_r;
        if r + 1 == iters {
            dv_r.copy_from_slice(dv.data());
        } else {
            dv_r.fill(0.0);
        }
        if have_db {
            agreement_backward(
                vd,
                it.v.data(),
                &scratch.db_next,
                dv_r,
                &mut dvotes,
                i_caps,
                j_caps,
                d,
                p,
            );
        }
        // Through the squash: ds_r.
        squash_backward_slices(it.s.data(), dv_r, &mut scratch.ds, j_caps, d, p);
        // Through the weighted sum s_r = Σ_i k_r · votes: contributions to
        // both the votes and the coupling coefficients.
        // b_0 is the zero constant, so the softmax/logits gradient of the
        // first iteration would only be discarded — skip computing it.
        let need_db = r > 0;
        weighted_sum_backward(
            vd,
            it.k.data(),
            &scratch.ds,
            &mut dvotes,
            if need_db { Some(&mut scratch.dk) } else { None },
            i_caps,
            j_caps,
            d,
            p,
        );
        if !need_db {
            break;
        }
        // Through the coupling softmax over J:
        // db[i,j,p] = k[i,j,p] · (dk[i,j,p] − Σ_j' k[i,j',p] · dk[i,j',p]).
        softmax_backward(it.k.data(), &scratch.dk, &mut scratch.db, i_caps, j_caps, p);
        // Identity path of the additive update b_{r+1} = b_r + agreement.
        if have_db {
            for (o, &g) in scratch.db.iter_mut().zip(&scratch.db_next) {
                *o += g;
            }
        }
        std::mem::swap(&mut scratch.db, &mut scratch.db_next);
        have_db = true;
    }
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(dvotes, cache.votes.shape()).expect("sized")
}

/// Backward of [`agreement_update`]: given `db` on `b_{r+1}`, adds
/// `db·votes` into `dv_r` and `db·v_r` into `dvotes`.
#[allow(clippy::too_many_arguments)]
fn agreement_backward(
    votes: &[f32],
    v_r: &[f32],
    db: &[f32],
    dv_r: &mut [f32],
    dvotes: &mut [f32],
    i_caps: usize,
    j_caps: usize,
    d: usize,
    p: usize,
) {
    if p == 1 {
        for i in 0..i_caps {
            let dbrow = &db[i * j_caps..(i + 1) * j_caps];
            let vbase = i * j_caps * d;
            for (j, &g) in dbrow.iter().enumerate() {
                let vrow = &votes[vbase + j * d..vbase + (j + 1) * d];
                let wrow = &mut dvotes[vbase + j * d..vbase + (j + 1) * d];
                let urow = &v_r[j * d..(j + 1) * d];
                let orow = &mut dv_r[j * d..(j + 1) * d];
                for ((o, &vv), (w, &u)) in orow.iter_mut().zip(vrow).zip(wrow.iter_mut().zip(urow))
                {
                    *o += g * vv;
                    *w += g * u;
                }
            }
        }
        return;
    }
    for i in 0..i_caps {
        for j in 0..j_caps {
            let dbrow = &db[(i * j_caps + j) * p..(i * j_caps + j + 1) * p];
            for di in 0..d {
                let voff = ((i * j_caps + j) * d + di) * p;
                let ooff = (j * d + di) * p;
                for pi in 0..p {
                    dv_r[ooff + pi] += dbrow[pi] * votes[voff + pi];
                    dvotes[voff + pi] += dbrow[pi] * v_r[ooff + pi];
                }
            }
        }
    }
}

/// Backward of [`weighted_vote_sum`]: `dvotes += k·ds` and (when wanted)
/// `dk = votes·ds` with `d` ascending.
#[allow(clippy::too_many_arguments)]
fn weighted_sum_backward(
    votes: &[f32],
    k: &[f32],
    ds: &[f32],
    dvotes: &mut [f32],
    dk: Option<&mut Vec<f32>>,
    i_caps: usize,
    j_caps: usize,
    d: usize,
    p: usize,
) {
    match dk {
        Some(dk) => {
            dk.fill(0.0);
            if p == 1 {
                for i in 0..i_caps {
                    let krow = &k[i * j_caps..(i + 1) * j_caps];
                    let dkrow = &mut dk[i * j_caps..(i + 1) * j_caps];
                    let vbase = i * j_caps * d;
                    for j in 0..j_caps {
                        let vrow = &votes[vbase + j * d..vbase + (j + 1) * d];
                        let wrow = &mut dvotes[vbase + j * d..vbase + (j + 1) * d];
                        let srow = &ds[j * d..(j + 1) * d];
                        let kv = krow[j];
                        let mut dot = 0.0f32;
                        for ((w, &sv), &vv) in wrow.iter_mut().zip(srow).zip(vrow) {
                            *w += kv * sv;
                            dot += vv * sv;
                        }
                        dkrow[j] += dot;
                    }
                }
            } else {
                for i in 0..i_caps {
                    for j in 0..j_caps {
                        let koff = (i * j_caps + j) * p;
                        for di in 0..d {
                            let voff = ((i * j_caps + j) * d + di) * p;
                            let soff = (j * d + di) * p;
                            for pi in 0..p {
                                dvotes[voff + pi] += k[koff + pi] * ds[soff + pi];
                                dk[koff + pi] += votes[voff + pi] * ds[soff + pi];
                            }
                        }
                    }
                }
            }
        }
        None => {
            if p == 1 {
                for i in 0..i_caps {
                    let krow = &k[i * j_caps..(i + 1) * j_caps];
                    let vbase = i * j_caps * d;
                    for (j, &kv) in krow.iter().enumerate() {
                        let wrow = &mut dvotes[vbase + j * d..vbase + (j + 1) * d];
                        let srow = &ds[j * d..(j + 1) * d];
                        for (w, &sv) in wrow.iter_mut().zip(srow) {
                            *w += kv * sv;
                        }
                    }
                }
            } else {
                for i in 0..i_caps {
                    for j in 0..j_caps {
                        let koff = (i * j_caps + j) * p;
                        for di in 0..d {
                            let voff = ((i * j_caps + j) * d + di) * p;
                            let soff = (j * d + di) * p;
                            for pi in 0..p {
                                dvotes[voff + pi] += k[koff + pi] * ds[soff + pi];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Softmax-over-`J` backward: `db = k · (dk − Σ_j k·dk)` per `(i, p)`.
fn softmax_backward(k: &[f32], dk: &[f32], db: &mut [f32], i_caps: usize, j_caps: usize, p: usize) {
    for i in 0..i_caps {
        for pi in 0..p {
            let mut weighted = 0.0f32;
            for j in 0..j_caps {
                let off = (i * j_caps + j) * p + pi;
                weighted += k[off] * dk[off];
            }
            for j in 0..j_caps {
                let off = (i * j_caps + j) * p + pi;
                db[off] = k[off] * (dk[off] - weighted);
            }
        }
    }
}

/// The original nested-loop routing kernels, kept as the correctness
/// oracle for the slice-based hot path (tests assert bitwise equality;
/// the `perf` benchmark reports speedups against them). Never used on a
/// hot path.
pub mod reference {
    use super::{RoutingCache, RoutingIterState};
    use crate::inject::{Injector, OpKind, OpSite};
    use crate::squash::{squash_caps, squash_caps_backward};
    use redcane_tensor::Tensor;

    /// Naive-loop twin of [`super::dynamic_routing`].
    ///
    /// # Panics
    ///
    /// Panics unless `votes` is rank 4 and `iterations >= 1`.
    pub fn dynamic_routing(
        votes: Tensor,
        iterations: usize,
        layer_index: usize,
        layer_name: &str,
        injector: &mut dyn Injector,
    ) -> RoutingCache {
        assert_eq!(votes.ndim(), 4, "votes must be [I, J, D, P]");
        assert!(iterations >= 1, "routing needs at least one iteration");
        let (i_caps, j_caps, d, p) = (
            votes.shape()[0],
            votes.shape()[1],
            votes.shape()[2],
            votes.shape()[3],
        );
        let mut b = Tensor::zeros(&[i_caps, j_caps, p]);
        let mut history: Vec<RoutingIterState> = Vec::with_capacity(iterations);
        let mut v = Tensor::zeros(&[j_caps, d, p]);
        let vd = votes.data();
        for r in 0..iterations {
            let iter = r as u8;
            // lint: allow(panic) — rank was checked by the caller/construction path
            let mut k = b.softmax_axis(1).expect("rank-3 softmax over J");
            injector.inject(
                &OpSite::routing(layer_index, layer_name, OpKind::Softmax, iter),
                &mut k,
            );
            let kd = k.data();
            let mut s = Tensor::zeros(&[j_caps, d, p]);
            {
                let sd = s.data_mut();
                for i in 0..i_caps {
                    for j in 0..j_caps {
                        for di in 0..d {
                            let vrow = ((i * j_caps + j) * d + di) * p;
                            let krow = (i * j_caps + j) * p;
                            let srow = (j * d + di) * p;
                            for pi in 0..p {
                                sd[srow + pi] += kd[krow + pi] * vd[vrow + pi];
                            }
                        }
                    }
                }
            }
            injector.inject(
                &OpSite::routing(layer_index, layer_name, OpKind::MacOutput, iter),
                &mut s,
            );
            v = squash_caps(&s);
            injector.inject(
                &OpSite::routing(layer_index, layer_name, OpKind::Activation, iter),
                &mut v,
            );
            history.push(RoutingIterState { k, s, v: v.clone() });
            if r + 1 < iterations {
                let vd2 = v.data();
                {
                    let bd = b.data_mut();
                    for i in 0..i_caps {
                        for j in 0..j_caps {
                            for pi in 0..p {
                                let mut dot = 0.0f32;
                                for di in 0..d {
                                    dot += vd[((i * j_caps + j) * d + di) * p + pi]
                                        * vd2[(j * d + di) * p + pi];
                                }
                                bd[(i * j_caps + j) * p + pi] += dot;
                            }
                        }
                    }
                }
                injector.inject(
                    &OpSite::routing(layer_index, layer_name, OpKind::LogitsUpdate, iter),
                    &mut b,
                );
            }
        }
        RoutingCache { votes, history, v }
    }

    /// Naive-loop twin of [`super::dynamic_routing_backward`].
    ///
    /// # Panics
    ///
    /// Panics if `dv`'s shape differs from the cached output.
    pub fn dynamic_routing_backward(cache: &RoutingCache, dv: &Tensor) -> Tensor {
        assert_eq!(dv.shape(), cache.v.shape(), "dv must match routing output");
        let (i_caps, j_caps, d, p) = (
            cache.votes.shape()[0],
            cache.votes.shape()[1],
            cache.votes.shape()[2],
            cache.votes.shape()[3],
        );
        let vd = cache.votes.data();
        let iters = cache.history.len();
        let mut dvotes = vec![0.0f32; i_caps * j_caps * d * p];
        let mut db_next: Option<Tensor> = None;
        for r in (0..iters).rev() {
            let it = &cache.history[r];
            let mut dv_r = if r + 1 == iters {
                dv.clone()
            } else {
                Tensor::zeros(&[j_caps, d, p])
            };
            if let Some(db) = &db_next {
                let dbd = db.data();
                let vrd = it.v.data();
                let dvd = dv_r.data_mut();
                for i in 0..i_caps {
                    for j in 0..j_caps {
                        for di in 0..d {
                            let vrow = ((i * j_caps + j) * d + di) * p;
                            let brow = (i * j_caps + j) * p;
                            let orow = (j * d + di) * p;
                            for pi in 0..p {
                                dvd[orow + pi] += dbd[brow + pi] * vd[vrow + pi];
                                dvotes[vrow + pi] += dbd[brow + pi] * vrd[orow + pi];
                            }
                        }
                    }
                }
            }
            let ds = squash_caps_backward(&it.s, &dv_r);
            let dsd = ds.data();
            let kd = it.k.data();
            let need_db = r > 0;
            let mut dk = vec![0.0f32; if need_db { i_caps * j_caps * p } else { 0 }];
            for i in 0..i_caps {
                for j in 0..j_caps {
                    for di in 0..d {
                        let vrow = ((i * j_caps + j) * d + di) * p;
                        let krow = (i * j_caps + j) * p;
                        let srow = (j * d + di) * p;
                        for pi in 0..p {
                            dvotes[vrow + pi] += kd[krow + pi] * dsd[srow + pi];
                            if need_db {
                                dk[krow + pi] += vd[vrow + pi] * dsd[srow + pi];
                            }
                        }
                    }
                }
            }
            if !need_db {
                break;
            }
            let mut db_r = Tensor::zeros(&[i_caps, j_caps, p]);
            {
                let dbd = db_r.data_mut();
                for i in 0..i_caps {
                    for pi in 0..p {
                        let mut weighted = 0.0f32;
                        for j in 0..j_caps {
                            let off = (i * j_caps + j) * p + pi;
                            weighted += kd[off] * dk[off];
                        }
                        for j in 0..j_caps {
                            let off = (i * j_caps + j) * p + pi;
                            dbd[off] = kd[off] * (dk[off] - weighted);
                        }
                    }
                }
            }
            if let Some(db) = &db_next {
                let dbd = db_r.data_mut();
                for (o, g) in dbd.iter_mut().zip(db.data()) {
                    *o += g;
                }
            }
            db_next = Some(db_r);
        }
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(dvotes, cache.votes.shape()).expect("sized")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};
    use redcane_tensor::TensorRng;

    /// The slice-kernel hot path must be bit-identical to the original
    /// nested loops (the reference oracle) — forward and backward.
    #[test]
    fn hot_path_bitwise_matches_reference() {
        let mut rng = TensorRng::from_seed(127);
        for &(i, j, d, p) in &[(6, 3, 4, 2), (72, 10, 8, 1), (4, 2, 3, 5), (1, 1, 1, 1)] {
            let votes = rng.uniform(&[i, j, d, p], -1.0, 1.0);
            let coeffs = rng.uniform(&[j, d, p], -1.0, 1.0);
            let fast = dynamic_routing(votes.clone(), 3, 0, "T", &mut NoInjection);
            let naive = reference::dynamic_routing(votes, 3, 0, "T", &mut NoInjection);
            assert_eq!(fast.v, naive.v, "forward {i}x{j}x{d}x{p}");
            for (a, b) in fast.history.iter().zip(&naive.history) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.s, b.s);
                assert_eq!(a.v, b.v);
            }
            let dfast = dynamic_routing_backward(&fast, &coeffs);
            let dnaive = reference::dynamic_routing_backward(&naive, &coeffs);
            assert_eq!(dfast, dnaive, "backward {i}x{j}x{d}x{p}");
        }
    }

    #[test]
    fn output_shape_and_length_bounds() {
        let mut rng = TensorRng::from_seed(120);
        let votes = rng.uniform(&[6, 3, 4, 2], -1.0, 1.0);
        let cache = dynamic_routing(votes, 3, 7, "TestCaps", &mut NoInjection);
        assert_eq!(cache.v.shape(), &[3, 4, 2]);
        let lengths = crate::squash::caps_lengths(&cache.v);
        assert!(lengths.data().iter().all(|&l| (0.0..1.0).contains(&l)));
    }

    #[test]
    fn coupling_coefficients_are_probabilities_over_j() {
        let mut rng = TensorRng::from_seed(121);
        let votes = rng.uniform(&[5, 4, 3, 2], -1.0, 1.0);
        let cache = dynamic_routing(votes, 3, 0, "TestCaps", &mut NoInjection);
        let sums = cache.k_last().sum_axis(1).unwrap();
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-4, "k must sum to 1 over J: {s}");
        }
    }

    #[test]
    fn one_iteration_is_uniform_coupling() {
        let mut rng = TensorRng::from_seed(122);
        let votes = rng.uniform(&[4, 2, 3, 1], -1.0, 1.0);
        let cache = dynamic_routing(votes, 1, 0, "TestCaps", &mut NoInjection);
        for &k in cache.k_last().data() {
            assert!((k - 0.5).abs() < 1e-5, "uniform over 2 types: {k}");
        }
    }

    /// A scratch reused across samples of different geometry must behave
    /// exactly like a fresh one.
    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let mut rng = TensorRng::from_seed(126);
        let mut scratch = RoutingScratch::new();
        for &(i, j, d, p) in &[(6, 3, 4, 2), (4, 2, 3, 1), (6, 3, 4, 2), (5, 4, 3, 2)] {
            let votes = rng.uniform(&[i, j, d, p], -1.0, 1.0);
            let coeffs = rng.uniform(&[j, d, p], -1.0, 1.0);
            let reused =
                dynamic_routing_scratched(&mut scratch, votes.clone(), 3, 0, "T", &mut NoInjection);
            let fresh = dynamic_routing(votes, 3, 0, "T", &mut NoInjection);
            assert_eq!(reused.v, fresh.v);
            let dr = dynamic_routing_backward_scratched(&mut scratch, &reused, &coeffs);
            let df = dynamic_routing_backward(&fresh, &coeffs);
            assert_eq!(dr, df);
        }
    }

    #[test]
    fn routing_sharpens_agreement() {
        // Construct votes where inputs agree strongly with output type 0
        // and are random for type 1: routing must shift coupling toward 0.
        let mut rng = TensorRng::from_seed(123);
        let (i_caps, j_caps, d, p) = (8, 2, 4, 1);
        let shared = rng.uniform(&[d], 0.5, 1.0);
        let mut votes = Tensor::zeros(&[i_caps, j_caps, d, p]);
        for i in 0..i_caps {
            for di in 0..d {
                votes
                    .set(
                        &[i, 0, di, 0],
                        shared.data()[di] + rng.next_uniform(-0.05, 0.05),
                    )
                    .unwrap();
                votes
                    .set(&[i, 1, di, 0], rng.next_uniform(-1.0, 1.0))
                    .unwrap();
            }
        }
        let cache = dynamic_routing(votes, 3, 0, "TestCaps", &mut NoInjection);
        // Flat-slice read of k[i, 0, 0] over the [I, J, P] layout.
        let kd = cache.k_last().data();
        let k_to_0: f32 = (0..i_caps).map(|i| kd[i * j_caps * p]).sum::<f32>() / i_caps as f32;
        assert!(
            k_to_0 > 0.55,
            "agreed type should attract coupling: {k_to_0}"
        );
    }

    #[test]
    fn taps_fire_in_expected_pattern() {
        let mut rng = TensorRng::from_seed(124);
        let votes = rng.uniform(&[3, 2, 2, 1], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let _ = dynamic_routing(votes, 3, 5, "Caps3D", &mut rec);
        let softmax = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::Softmax)
            .count();
        let mac = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::MacOutput)
            .count();
        let act = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::Activation)
            .count();
        let upd = rec
            .visits
            .iter()
            .filter(|s| s.kind == OpKind::LogitsUpdate)
            .count();
        assert_eq!(softmax, 3);
        assert_eq!(mac, 3);
        assert_eq!(act, 3);
        assert_eq!(upd, 2, "updates happen between iterations");
        assert!(rec.visits.iter().all(|s| s.layer_index == 5));
        assert!(rec.visits.iter().all(|s| s.routing_iter.is_some()));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(125);
        let votes = rng.uniform(&[4, 3, 3, 2], -1.0, 1.0);
        let coeffs = rng.uniform(&[3, 3, 2], -1.0, 1.0);
        // The backward pass is exact, so the analytic gradient must match
        // central differences of the FULL routing loss — coupling
        // coefficient dependence on the votes included.
        let base = dynamic_routing(votes.clone(), 3, 0, "T", &mut NoInjection);
        let dvotes = dynamic_routing_backward(&base, &coeffs);
        let loss = |votes: &Tensor| -> f32 {
            dynamic_routing(votes.clone(), 3, 0, "T", &mut NoInjection)
                .v
                .mul(&coeffs)
                .unwrap()
                .sum()
        };
        let eps = 1e-2f32;
        for idx in 0..votes.len() {
            let mut vp = votes.clone();
            vp.data_mut()[idx] += eps;
            let mut vm = votes.clone();
            vm.data_mut()[idx] -= eps;
            let num = (loss(&vp) - loss(&vm)) / (2.0 * eps);
            let ana = dvotes.data()[idx];
            assert!(
                (num - ana).abs() < 5e-3 * (1.0 + num.abs()),
                "dvotes[{idx}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_iterations() {
        let votes = Tensor::zeros(&[2, 2, 2, 1]);
        let _ = dynamic_routing(votes, 0, 0, "T", &mut NoInjection);
    }
}
