// Fixture: safe code passes R5 anywhere; the word "unsafe" in strings
// and comments ("unsafe") must not trip the lexer-backed rule.
pub fn describe() -> &'static str {
    "this crate is unsafe-free"
}
