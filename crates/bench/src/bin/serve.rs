//! Open-loop serving benchmark over `redcane-serve`'s dynamic
//! batcher, for both of the paper's architectures.
//!
//! Trains (or restores — the trained-artifact key is shared with the
//! `qdp`/`faults` benches) the small CapsNet and DeepCaps, builds one
//! serving engine per architecture over up to three datapath
//! assignments (exact / cheapest library component / Step-6
//! heterogeneous design), then drives it with a seeded open-loop
//! client load and reports p50/p99/max latency, throughput, batch
//! statistics and queue depth per (arch × assignment). One JSON line
//! per assignment, to stdout (progress goes to stderr). Usage:
//!
//! ```text
//! serve [--quick] [--benchmark mnist|fashion|svhn|cifar] [--seed N]
//!       [--arch capsnet|deepcaps|both] [--requests N] [--clients N]
//!       [--workers N] [--max-batch N] [--max-wait-us N] [--rate RPS]
//!       [--step6|--no-step6] [--out PATH] [--stable-out PATH]
//!       [--budget-s S] [--threads N] [--artifacts DIR] [--no-cache]
//!       [--profile PATH] [--profile-counters PATH]
//!       [--profile-folded PATH]
//! ```
//!
//! `--stable-out` writes only the timing-free fields (request counts,
//! correctness, prediction checksums) — byte-identical at every
//! `REDCANE_THREADS` setting, which is what CI `cmp`s. `--budget-s`
//! fails the run when the serving sessions (training excluded) exceed
//! the budget: the latency-regression tripwire.

use std::process::ExitCode;

use redcane::report::json::Value;
use redcane_artifacts::ArtifactStore;
use redcane_bench::cli::{next_parsed, next_value, require_nonzero};
use redcane_bench::profile::ProfileArgs;
use redcane_bench::qdp::QdpArch;
use redcane_bench::serve::{
    run_serve, serve_to_json_lines, serve_to_json_lines_stable, ServeBenchConfig,
};
use redcane_datasets::Benchmark;

fn main() -> ExitCode {
    let mut cfg = ServeBenchConfig::smoke();
    let mut out_path: Option<String> = None;
    let mut stable_out_path: Option<String> = None;
    let mut budget_s: Option<f64> = None;
    let mut artifacts_flag: Option<String> = None;
    let mut no_cache = false;
    let mut profile = ProfileArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let parsed: Result<(), String> = match flag.as_str() {
            "--quick" => {
                // Keep any --seed/--benchmark/--arch given before the
                // flag; --quick only rescales the run.
                cfg = ServeBenchConfig {
                    benchmark: cfg.benchmark,
                    seed: cfg.seed,
                    archs: cfg.archs,
                    ..ServeBenchConfig::quick()
                };
                Ok(())
            }
            "--benchmark" => next_value(&mut args, "--benchmark").and_then(|v| match v.as_str() {
                "mnist" => {
                    cfg.benchmark = Benchmark::MnistLike;
                    Ok(())
                }
                "fashion" => {
                    cfg.benchmark = Benchmark::FashionLike;
                    Ok(())
                }
                "svhn" => {
                    cfg.benchmark = Benchmark::SvhnLike;
                    Ok(())
                }
                "cifar" => {
                    cfg.benchmark = Benchmark::Cifar10Like;
                    Ok(())
                }
                other => Err(format!("unknown benchmark '{other}'")),
            }),
            "--arch" => next_value(&mut args, "--arch").and_then(|v| match v.as_str() {
                "capsnet" => {
                    cfg.archs = vec![QdpArch::CapsNet];
                    Ok(())
                }
                "deepcaps" => {
                    cfg.archs = vec![QdpArch::DeepCaps];
                    Ok(())
                }
                "both" => {
                    cfg.archs = vec![QdpArch::CapsNet, QdpArch::DeepCaps];
                    Ok(())
                }
                other => Err(format!("unknown arch '{other}'")),
            }),
            "--seed" => next_parsed(&mut args, "--seed").map(|v| cfg.seed = v),
            "--requests" => next_parsed(&mut args, "--requests")
                .and_then(|v| require_nonzero(v, "--requests"))
                .map(|v| cfg.requests = v),
            "--clients" => next_parsed(&mut args, "--clients")
                .and_then(|v| require_nonzero(v, "--clients"))
                .map(|v| cfg.clients = v),
            "--workers" => next_parsed(&mut args, "--workers")
                .and_then(|v| require_nonzero(v, "--workers"))
                .map(|v| cfg.workers = Some(v)),
            "--max-batch" => next_parsed(&mut args, "--max-batch")
                .and_then(|v| require_nonzero(v, "--max-batch"))
                .map(|v| cfg.max_batch = v),
            "--max-wait-us" => {
                next_parsed(&mut args, "--max-wait-us").map(|v: u64| cfg.max_wait_us = Some(v))
            }
            "--rate" => next_parsed(&mut args, "--rate").map(|v: f64| cfg.arrival_rate_rps = v),
            "--step6" => {
                cfg.step6 = true;
                Ok(())
            }
            "--no-step6" => {
                cfg.step6 = false;
                Ok(())
            }
            "--out" => next_value(&mut args, "--out").map(|v| out_path = Some(v)),
            "--stable-out" => {
                next_value(&mut args, "--stable-out").map(|v| stable_out_path = Some(v))
            }
            "--budget-s" => next_parsed(&mut args, "--budget-s").map(|v: f64| budget_s = Some(v)),
            "--artifacts" => next_value(&mut args, "--artifacts").map(|v| artifacts_flag = Some(v)),
            "--no-cache" => {
                no_cache = true;
                Ok(())
            }
            "--threads" => next_parsed(&mut args, "--threads")
                .map(|v: usize| redcane_tensor::par::set_threads(v)),
            "--help" | "-h" => {
                eprintln!(
                    "serve: open-loop dynamic-batching serving benchmark over the \
                     quantized datapath\n\
                     flags: --quick, --benchmark mnist|fashion|svhn|cifar, --seed N, \
                     --arch capsnet|deepcaps|both, --requests N, --clients N, \
                     --workers N, --max-batch N, --max-wait-us N, --rate RPS, \
                     --step6, --no-step6, --out PATH, --stable-out PATH, \
                     --budget-s S, --threads N, --artifacts DIR, --no-cache, \
                     --profile PATH, --profile-counters PATH, --profile-folded PATH"
                );
                return ExitCode::SUCCESS;
            }
            other => profile
                .match_flag(other, &mut args)
                .unwrap_or_else(|| Err(format!("unknown flag '{other}'"))),
        };
        if let Err(msg) = parsed {
            eprintln!("serve: {msg}");
            return ExitCode::FAILURE;
        }
    }

    cfg.artifacts = ArtifactStore::resolve_dir(artifacts_flag.as_deref(), no_cache);
    profile.enable_if_requested();
    let outcome = run_serve(&cfg);
    let lines: Vec<String> = serve_to_json_lines(&outcome)
        .iter()
        .map(|v| v.dump())
        .collect();
    for line in &lines {
        println!("{line}");
    }
    for arch in &outcome.archs {
        eprintln!(
            "[serve] {}: {} ({} assignment(s), {} request(s), {:.2}s serving)",
            arch.arch.label(),
            arch.provenance.label(),
            arch.assignments.len(),
            arch.assignments.iter().map(|a| a.requests).sum::<usize>(),
            arch.serve_s
        );
    }
    eprintln!(
        "[serve] total {:.2}s ({:.2}s serving)",
        outcome.total_s, outcome.serve_s
    );
    if let Some(path) = out_path {
        let body = lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = stable_out_path {
        let body = serve_to_json_lines_stable(&outcome)
            .iter()
            .map(|v| v.dump())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let meta = vec![(
        "provenance".to_string(),
        Value::Obj(
            outcome
                .archs
                .iter()
                .map(|a| {
                    (
                        a.arch.label().to_string(),
                        Value::from(a.provenance.label()),
                    )
                })
                .collect(),
        ),
    )];
    if let Err(msg) = profile.write("serve", meta, true) {
        eprintln!("serve: {msg}");
        return ExitCode::FAILURE;
    }
    // The regression tripwire: serving time only, so cold (train) and
    // warm (restore) CI runs trip identically.
    if let Some(budget) = budget_s {
        if outcome.serve_s > budget {
            eprintln!(
                "serve: serving sessions took {:.2}s, over the --budget-s {budget:.2}s tripwire",
                outcome.serve_s
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
