//! `lint-allow.toml` — the checked-in rule configuration.
//!
//! Parsed by hand (the workspace builds offline; no toml crate). The
//! accepted subset is exactly what the file uses: `[section]` headers
//! and `key = [ "…", "…" ]` string arrays, which may span lines.

/// One `[traced]` rule: functions in `module` matching any pattern in
/// `functions` (`*`, `prefix*`, or an exact name) must carry a hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedRule {
    /// Exact module path (`tensor::ops::gemm`).
    pub module: String,
    /// Name patterns; `*` matches everything, `qgemm*` a prefix.
    pub functions: Vec<String>,
}

/// Parsed lint configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// R1: modules whose map iteration feeds stable output.
    pub stable_modules: Vec<String>,
    /// R2: modules allowed to read wall clocks.
    pub clock_modules: Vec<String>,
    /// R3: crates exempt from the panic rule (bench binaries).
    pub panic_exempt_crates: Vec<String>,
    /// R4: entry points that must carry trace hooks.
    pub traced: Vec<TracedRule>,
    /// R4: fully-qualified functions exempted from tracing.
    pub trace_exempt: Vec<String>,
    /// R4: callee names that count as hooks (traced executors).
    pub trace_delegates: Vec<String>,
    /// R5: files registered as allowed to contain `unsafe`.
    pub unsafe_files: Vec<String>,
}

/// A malformed `lint-allow.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `[section]` or `key = [...]`, got `{line}`"),
                });
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Arrays may span lines: keep consuming until `]` closes.
            while !value.contains(']') {
                match lines.next() {
                    Some((_, next)) => {
                        value.push(' ');
                        value.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unterminated array for key `{key}`"),
                        });
                    }
                }
            }
            let items = parse_array(&value, lineno)?;
            apply(&mut cfg, &section, &key, items, lineno)?;
        }
        Ok(cfg)
    }
}

/// Strips a trailing `# comment` (the file has no `#` inside strings).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(at) => &line[..at],
        None => line,
    }
}

/// Parses `[ "a", "b" ]` into its string items.
fn parse_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.trim_end().strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected a `[...]` array, got `{value}`"),
        })?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let unquoted = piece
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("array items must be double-quoted strings, got `{piece}`"),
            })?;
        items.push(unquoted.to_string());
    }
    Ok(items)
}

/// Routes one parsed `key = [...]` into the config.
fn apply(
    cfg: &mut Config,
    section: &str,
    key: &str,
    items: Vec<String>,
    lineno: usize,
) -> Result<(), ConfigError> {
    match (section, key) {
        ("determinism", "modules") => cfg.stable_modules = items,
        ("clocks", "modules") => cfg.clock_modules = items,
        ("panics", "exempt_crates") => cfg.panic_exempt_crates = items,
        ("traced", "rules") => {
            for item in items {
                let Some((module, pats)) = item.split_once('=') else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("traced rule must be `module = patterns`, got `{item}`"),
                    });
                };
                cfg.traced.push(TracedRule {
                    module: module.trim().to_string(),
                    functions: pats.split_whitespace().map(str::to_string).collect(),
                });
            }
        }
        ("traced", "exempt") => cfg.trace_exempt = items,
        ("traced", "delegates") => cfg.trace_delegates = items,
        ("unsafe", "files") => cfg.unsafe_files = items,
        _ => {
            return Err(ConfigError {
                line: lineno,
                message: format!("unknown key `{key}` in section `[{section}]`"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let src = r#"
# comment
[determinism]
modules = ["qdp::calib", "core::report"]

[traced]
rules = [
    "tensor::ops::gemm = *",
    "qdp::kernels = qgemm*",
]
delegates = ["forward_batch_resolved"]

[unsafe]
files = ["crates/core/src/report/json.rs"]
"#;
        let cfg = match Config::parse(src) {
            Ok(c) => c,
            Err(e) => unreachable!("parse failed: {e}"),
        };
        assert_eq!(cfg.stable_modules, vec!["qdp::calib", "core::report"]);
        assert_eq!(cfg.traced.len(), 2);
        assert_eq!(cfg.traced[0].module, "tensor::ops::gemm");
        assert_eq!(cfg.traced[0].functions, vec!["*"]);
        assert_eq!(cfg.traced[1].functions, vec!["qgemm*"]);
        assert_eq!(cfg.unsafe_files.len(), 1);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_arrays() {
        assert!(Config::parse("[determinism]\nbogus = []").is_err());
        assert!(Config::parse("[determinism]\nmodules = [unquoted]").is_err());
        assert!(Config::parse("[determinism]\nmodules = [\"a\"").is_err());
    }
}
