//! CIFAR-10-like renderer: ten colored shape/texture classes with heavy
//! per-sample variation — the hardest of the four synthetic benchmarks,
//! mirroring CIFAR-10's position in the paper's evaluation.
//!
//! Classes: 0 disc, 1 ring, 2 triangle, 3 square, 4 cross,
//! 5 horizontal stripes, 6 vertical stripes, 7 checkerboard,
//! 8 diagonal gradient, 9 radial blob.

use redcane_tensor::{Tensor, TensorRng};

use crate::canvas::{stack_rgb, Canvas};

/// Renders texture/shape class `0..=9` onto a `[3, h, w]` tensor.
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn render(class: usize, h: usize, w: usize, rng: &mut TensorRng) -> Tensor {
    assert!(class <= 9, "cifar-like classes are 0..=9");
    let hf = h as f32;
    let wf = w as f32;
    // Background color (dim) and foreground color (brighter), random hues.
    let bg = [
        rng.next_uniform(0.05, 0.35),
        rng.next_uniform(0.05, 0.35),
        rng.next_uniform(0.05, 0.35),
    ];
    let fg = [
        rng.next_uniform(0.45, 1.0),
        rng.next_uniform(0.45, 1.0),
        rng.next_uniform(0.45, 1.0),
    ];
    // A grayscale structure mask, colored later.
    let mut mask = Canvas::new(h, w);
    let cy = hf * 0.5 + rng.next_uniform(-1.5, 1.5);
    let cx = wf * 0.5 + rng.next_uniform(-1.5, 1.5);
    let r = hf * rng.next_uniform(0.24, 0.36);
    match class {
        0 => mask.fill_ellipse(cy, cx, r, r, 1.0),
        1 => mask.ellipse_outline(cy, cx, r, r, 1.8, 1.0),
        2 => {
            // Triangle via three thick edges + interior scanline fill.
            let (ay, ax) = (cy - r, cx);
            let (by, bx) = (cy + r * 0.8, cx - r);
            let (gy, gx) = (cy + r * 0.8, cx + r);
            let steps = (2.0 * r) as usize + 2;
            for i in 0..=steps {
                let t = i as f32 / steps as f32;
                let ly = ay + (by - ay) * t;
                let lx = ax + (bx - ax) * t;
                let ry2 = ay + (gy - ay) * t;
                let rx2 = ax + (gx - ax) * t;
                mask.line(ly, lx, ry2, rx2, 1.0, 1.0);
            }
        }
        3 => mask.fill_rect(cy - r, cx - r, cy + r, cx + r, 1.0),
        4 => {
            let arm = r * 0.45;
            mask.fill_rect(cy - r, cx - arm, cy + r, cx + arm, 1.0);
            mask.fill_rect(cy - arm, cx - r, cy + arm, cx + r, 1.0);
        }
        5 => {
            let period = rng.next_uniform(3.0, 4.5);
            let phase = rng.next_uniform(0.0, period);
            for y in 0..h {
                if (((y as f32 + phase) / period) as usize).is_multiple_of(2) {
                    mask.fill_rect(y as f32, 0.0, y as f32, wf - 1.0, 1.0);
                }
            }
        }
        6 => {
            let period = rng.next_uniform(3.0, 4.5);
            let phase = rng.next_uniform(0.0, period);
            for x in 0..w {
                if (((x as f32 + phase) / period) as usize).is_multiple_of(2) {
                    mask.fill_rect(0.0, x as f32, hf - 1.0, x as f32, 1.0);
                }
            }
        }
        7 => {
            let cell = rng.next_uniform(2.5, 4.0);
            for y in 0..h {
                for x in 0..w {
                    let cyi = (y as f32 / cell) as usize;
                    let cxi = (x as f32 / cell) as usize;
                    if (cyi + cxi).is_multiple_of(2) {
                        mask.stamp(y as isize, x as isize, 1.0);
                    }
                }
            }
        }
        8 => {
            let flip = rng.next_bool(0.5);
            for y in 0..h {
                for x in 0..w {
                    let t = (y + if flip { w - 1 - x } else { x }) as f32 / (h + w - 2) as f32;
                    mask.stamp(y as isize, x as isize, t);
                }
            }
        }
        9 => {
            for y in 0..h {
                for x in 0..w {
                    let dy = (y as f32 - cy) / r.max(1.0);
                    let dx = (x as f32 - cx) / r.max(1.0);
                    let d2 = dy * dy + dx * dx;
                    mask.stamp(y as isize, x as isize, (-d2).exp());
                }
            }
        }
        // lint: allow(panic) — unreachable: the class index was validated by the preceding check
        _ => unreachable!("class checked above"),
    }
    // Colorize: out = bg + mask * (fg - bg), per channel, plus noise.
    let mut channels = [Canvas::new(h, w), Canvas::new(h, w), Canvas::new(h, w)];
    for (ci, canvas) in channels.iter_mut().enumerate() {
        for y in 0..h {
            for x in 0..w {
                let m = mask.get(y as isize, x as isize);
                let v = bg[ci] + m * (fg[ci] - bg[ci]);
                canvas.stamp(y as isize, x as isize, v);
            }
        }
        canvas.add_noise(0.06, rng);
    }
    stack_rgb(&channels[0], &channels[1], &channels[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_classes() {
        let mut rng = TensorRng::from_seed(100);
        for cl in 0..10 {
            let t = render(cl, 20, 20, &mut rng);
            assert_eq!(t.shape(), &[3, 20, 20]);
            assert!(t.all_finite());
            assert!(t.range() > 0.1, "class {cl} should have contrast");
        }
    }

    #[test]
    fn stripes_have_directional_structure() {
        let mut rng = TensorRng::from_seed(101);
        // Horizontal stripes: row variance across rows >> within rows.
        let t = render(5, 20, 20, &mut rng);
        let row_means: Vec<f32> = (0..20)
            .map(|y| (0..20).map(|x| t.get(&[0, y, x]).unwrap()).sum::<f32>() / 20.0)
            .collect();
        let col_means: Vec<f32> = (0..20)
            .map(|x| (0..20).map(|y| t.get(&[0, y, x]).unwrap()).sum::<f32>() / 20.0)
            .collect();
        let var = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
        };
        assert!(
            var(&row_means) > var(&col_means) * 3.0,
            "horizontal stripes: row var {} col var {}",
            var(&row_means),
            var(&col_means)
        );
    }

    #[test]
    fn disc_and_ring_differ_in_center() {
        let mut rng = TensorRng::from_seed(102);
        // Use the green channel relative contrast at center vs edge ring.
        let disc = render(0, 20, 20, &mut rng);
        let ring = render(1, 20, 20, &mut rng);
        // For a disc, the center belongs to the shape; for a ring it does
        // not. Compare center intensity to the image mean.
        let c_disc = disc.get(&[1, 10, 10]).unwrap() / disc.mean().max(1e-3);
        let c_ring = ring.get(&[1, 10, 10]).unwrap() / ring.mean().max(1e-3);
        assert!(c_disc > c_ring * 0.9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_class() {
        let mut rng = TensorRng::from_seed(103);
        let _ = render(12, 20, 20, &mut rng);
    }
}
