//! # redcane-axmul
//!
//! A behavioral library of **8-bit unsigned approximate multipliers** (and
//! approximate adders), standing in for the EvoApprox8B library used by the
//! ReD-CaNe paper (Mrazek et al., DATE 2017).
//!
//! The paper treats each approximate component as a black box characterized
//! by three things: its **power**, its **area**, and the **distribution of
//! its arithmetic error** `ΔP = P'(a,b) − P(a,b)` over a representative
//! input set (Eq. 2). This crate provides exactly that interface:
//!
//! - [`Multiplier8`]: the behavioral contract `(u8, u8) -> u16`;
//! - concrete approximation families in [`mult`]: truncation, broken-array,
//!   Kulkarni 2×2 underdesigned blocks, Mitchell logarithmic, DRUM,
//!   partial-product perforation, and approximate column compressors;
//! - [`adder`]: exact and lower-part-OR (LOA) 16-bit adders (the paper's
//!   `5LT` stand-in);
//! - [`library::MultiplierLibrary`]: 35 named components. The 15 named
//!   after the paper's Table IV (`mul8u_1JFF`, `mul8u_NGR`, `mul8u_DM1`, …)
//!   carry that table's power/area numbers as calibration metadata and are
//!   mapped onto behavioral models whose *measured* error magnitude tracks
//!   the table; the rest are parametric family members filling out the
//!   power/error Pareto front;
//! - [`lut`]: any model tabulated into a 64 KiB [`MulLut`] truth table,
//!   and [`LutCache`] — one shared table per distinct component of a
//!   heterogeneous datapath assignment;
//! - [`error_stats`]: error profiling (mean/std/histogram), MAC-chain
//!   accumulation (1, 9, 81 multiply-accumulates, as in Fig. 6), Gaussian
//!   fits, and the paper's `NM`/`NA` noise parameters (Sec. III-B);
//! - [`power`]: a structural power/area estimator used for the parametric
//!   components and for sanity-checking monotonicity.
//!
//! # Example
//!
//! ```
//! use redcane_axmul::library::MultiplierLibrary;
//! use redcane_axmul::error_stats::{profile_multiplier, InputDistribution};
//!
//! let lib = MultiplierLibrary::evo_approx_like();
//! let ngr = lib.find("mul8u_NGR").expect("library component");
//! let profile = profile_multiplier(
//!     ngr.model(),
//!     &InputDistribution::Uniform,
//!     10_000,
//!     42,
//! );
//! // The NGR-like component is a mild approximation: its error is small
//! // relative to the 16-bit product range.
//! assert!(profile.noise_params().nm < 0.01);
//! ```
#![forbid(unsafe_code)]

pub mod adder;
pub mod error_stats;
pub mod library;
pub mod lut;
pub mod mult;
pub mod power;

pub use adder::{Adder16, ExactAdder, LowerOrAdder};
pub use error_stats::{ErrorProfile, InputDistribution, NoiseParams};
pub use library::{ComponentEntry, MultiplierLibrary};
pub use lut::{LutCache, MulLut, UnknownComponent};
pub use mult::{ExactMultiplier, LutMultiplier, Multiplier8};

/// The largest accurate 8×8 product (`255 * 255`); the natural scale for
/// multiplier error magnitudes.
pub const MAX_PRODUCT: u16 = 255 * 255;
