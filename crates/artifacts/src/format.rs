//! The on-disk artifact format: a keyed header followed by
//! length-prefixed, individually checksummed sections.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "RCAS" | u32 schema | u64 seed | u32 epochs | u64 fingerprint
//! | str arch | str dataset | u32 section count
//! | sections…: tag[4] | u64 len | payload | u64 fnv1a(payload)
//! ```
//!
//! Sections appear in a fixed order: trained weights (the raw
//! `capsnet::io` codec bytes), training metadata, quantization ranges,
//! the `(NA, NM)` component table, the empirical activation-code
//! pool, and the fault-characterization table. Every decode failure is
//! a named [`ArtifactError`]; nothing is ever guessed past.

use std::io;

use bytes::{Buf, BufMut, BytesMut};
use redcane_capsnet::inject::OpKind;
use redcane_fxp::QuantParams;

/// Version of the on-disk store format **and** of the trained content
/// it caches. Bump on any change to this codec *or* to training /
/// calibration numerics — restored artifacts must always reproduce
/// what retraining would produce, bit for bit.
pub const STORE_SCHEMA_VERSION: u32 = 2;

const MAGIC: &[u8; 4] = b"RCAS";
const SECTION_TAGS: [&[u8; 4]; 6] = [b"WGHT", b"TMET", b"RNGS", b"NANM", b"APOL", b"FCHR"];

/// Addresses one artifact: the seed-determined identity of a training
/// run plus a fingerprint of every remaining configuration knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactKey {
    /// Architecture family tag (`capsnet`, `deepcaps`, …).
    pub arch: String,
    /// Dataset / benchmark name (`mnist-like`, …).
    pub dataset: String,
    /// Master seed the run derives everything from.
    pub seed: u64,
    /// Training epochs.
    pub epochs: usize,
    /// [`fingerprint`] of the consumer's full remaining configuration
    /// (sample counts, batch size, learning rate, calibration knobs…).
    pub fingerprint: u64,
}

impl ArtifactKey {
    /// Builds a key; `arch` and `dataset` should be short stable tags.
    pub fn new(arch: &str, dataset: &str, seed: u64, epochs: usize, fingerprint: u64) -> Self {
        ArtifactKey {
            arch: arch.to_string(),
            dataset: dataset.to_string(),
            seed,
            epochs,
            fingerprint,
        }
    }

    /// The store-relative file name this key addresses. Contains every
    /// key field (fingerprint and schema version included), so distinct
    /// configurations coexist instead of overwriting each other.
    pub fn file_name(&self) -> String {
        let sanitize = |s: &str| {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect::<String>()
        };
        format!(
            "{}_{}_s{}_e{}_f{:016x}.v{}.rca",
            sanitize(&self.arch),
            sanitize(&self.dataset),
            self.seed,
            self.epochs,
            self.fingerprint,
            STORE_SCHEMA_VERSION
        )
    }
}

/// FNV-1a 64-bit hash of a canonical configuration string — the
/// fingerprint half of an [`ArtifactKey`]. Consumers concatenate every
/// knob that shapes the artifact (in a fixed order, with exact float
/// bits) so any config change addresses a different artifact.
pub fn fingerprint(canonical: &str) -> u64 {
    fnv1a(canonical.as_bytes())
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One calibrated quantization range, keyed like the calibration
/// observer tracks it: `(layer, operation kind, in-routing?)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeEntry {
    /// Layer the site belongs to.
    pub layer: String,
    /// Operation kind at the site.
    pub kind: OpKind,
    /// Whether the site lies inside dynamic routing.
    pub in_routing: bool,
    /// The fixed quantization parameters.
    pub params: QuantParams,
}

/// One component's characterized noise statistics over the empirical
/// operand distribution of the run that produced the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentNoise {
    /// Library component name (`mul8u_…`).
    pub component: String,
    /// Characterization sample count the statistics were measured with.
    pub samples: u64,
    /// Noise average `NA`.
    pub na: f64,
    /// Noise magnitude `NM`.
    pub nm: f64,
}

/// One fault specification's characterized product-error statistics
/// over the empirical operand distribution of the run that produced
/// the artifact — the discrete-fault analogue of [`ComponentNoise`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultChar {
    /// Compact fault spec (`target:model`, e.g.
    /// `multiplier:stuck1(0x08)`), as `SiteFault::spec` prints it.
    pub spec: String,
    /// Characterization sample count the statistics were measured with.
    pub samples: u64,
    /// Mean product error, normalized by the full 16-bit product range.
    pub mean_err: f64,
    /// RMS product error, normalized the same way.
    pub rms_err: f64,
}

/// Everything an artifact persists besides the weights themselves
/// (which are applied straight into the model on load).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArtifactPayload {
    /// Mean margin loss per training epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub train_accuracy: f64,
    /// Calibrated quantization ranges (empty when the consumer does not
    /// calibrate, e.g. `probe`).
    pub ranges: Vec<RangeEntry>,
    /// Characterized `(NA, NM)` per library component (empty when the
    /// consumer does not characterize).
    pub noise_table: Vec<ComponentNoise>,
    /// Empirical activation-code pool for operand characterization
    /// (empty when the consumer does not sample operands).
    pub activation_codes: Vec<u8>,
    /// Characterized error statistics per fault specification (empty
    /// when the consumer does not run fault characterization).
    pub fault_table: Vec<FaultChar>,
}

/// Why loading (or saving) an artifact failed. Every variant names
/// what was wrong; [`crate::load_or_train`] treats all of them as a
/// cache miss and retrains.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem error (missing entry, unreadable store, …).
    Io(io::Error),
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The file was written by a different store schema version.
    SchemaVersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// A header key field disagrees with the requested key (a file
    /// placed under the wrong name).
    KeyMismatch {
        /// Which key field disagreed.
        field: &'static str,
        /// Value found in the file header.
        found: String,
        /// Value the requested key expects.
        expected: String,
    },
    /// A section's checksum does not match its payload (bit rot or a
    /// torn write).
    ChecksumMismatch {
        /// The section whose checksum failed.
        section: &'static str,
    },
    /// The file ends before a section it promises.
    Truncated {
        /// The section (or header part) that was cut short.
        section: &'static str,
    },
    /// A section decoded to structurally invalid content (bad UTF-8,
    /// unknown op-kind code, invalid quantization range, wrong tag, or
    /// weights the model rejected).
    Corrupt {
        /// Description of what failed to decode.
        what: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact store I/O error: {e}"),
            ArtifactError::BadMagic => write!(f, "not an artifact file (bad magic)"),
            ArtifactError::SchemaVersionMismatch { found, expected } => write!(
                f,
                "artifact store schema v{found}, this build reads v{expected}"
            ),
            ArtifactError::KeyMismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "artifact key mismatch: {field} is {found}, expected {expected}"
            ),
            ArtifactError::ChecksumMismatch { section } => {
                write!(f, "artifact section {section} failed its checksum")
            }
            ArtifactError::Truncated { section } => {
                write!(f, "artifact truncated in section {section}")
            }
            ArtifactError::Corrupt { what } => write!(f, "artifact corrupt: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// `true` when the error is a plain missing-file miss rather than a
/// rejected (corrupt / stale / mismatched) entry worth warning about.
pub(crate) fn is_not_found(err: &ArtifactError) -> bool {
    matches!(err, ArtifactError::Io(e) if e.kind() == io::ErrorKind::NotFound)
}

fn kind_code(kind: OpKind) -> u8 {
    match kind {
        OpKind::MacOutput => 0,
        OpKind::Activation => 1,
        OpKind::Softmax => 2,
        OpKind::LogitsUpdate => 3,
        OpKind::MacInput => 4,
    }
}

fn kind_from_code(code: u8) -> Result<OpKind, ArtifactError> {
    Ok(match code {
        0 => OpKind::MacOutput,
        1 => OpKind::Activation,
        2 => OpKind::Softmax,
        3 => OpKind::LogitsUpdate,
        4 => OpKind::MacInput,
        other => {
            return Err(ArtifactError::Corrupt {
                what: format!("unknown op-kind code {other}"),
            })
        }
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8], section: &'static str) -> Result<String, ArtifactError> {
    if buf.remaining() < 4 {
        return Err(ArtifactError::Truncated { section });
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(ArtifactError::Truncated { section });
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ArtifactError::Corrupt {
        what: format!("non-UTF-8 string in section {section}"),
    })
}

fn encode_meta(payload: &ArtifactPayload) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(payload.epoch_losses.len() as u32);
    for &loss in &payload.epoch_losses {
        buf.put_f32_le(loss);
    }
    buf.put_f64_le(payload.train_accuracy);
    buf
}

fn encode_ranges(entries: &[RangeEntry]) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        put_str(&mut buf, &e.layer);
        buf.put_u8(kind_code(e.kind));
        buf.put_u8(u8::from(e.in_routing));
        buf.put_u8(e.params.bits());
        buf.put_f32_le(e.params.min());
        buf.put_f32_le(e.params.max());
    }
    buf
}

fn encode_noise(entries: &[ComponentNoise]) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        put_str(&mut buf, &e.component);
        buf.put_u64_le(e.samples);
        buf.put_f64_le(e.na);
        buf.put_f64_le(e.nm);
    }
    buf
}

fn encode_faults(entries: &[FaultChar]) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        put_str(&mut buf, &e.spec);
        buf.put_u64_le(e.samples);
        buf.put_f64_le(e.mean_err);
        buf.put_f64_le(e.rms_err);
    }
    buf
}

fn decode_faults(mut buf: &[u8]) -> Result<Vec<FaultChar>, ArtifactError> {
    const S: &str = "FCHR";
    if buf.remaining() < 4 {
        return Err(ArtifactError::Truncated { section: S });
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let spec = take_str(&mut buf, S)?;
        if buf.remaining() < 24 {
            return Err(ArtifactError::Truncated { section: S });
        }
        out.push(FaultChar {
            spec,
            samples: buf.get_u64_le(),
            mean_err: buf.get_f64_le(),
            rms_err: buf.get_f64_le(),
        });
    }
    Ok(out)
}

fn decode_meta(mut buf: &[u8]) -> Result<(Vec<f32>, f64), ArtifactError> {
    const S: &str = "TMET";
    if buf.remaining() < 4 {
        return Err(ArtifactError::Truncated { section: S });
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 + 8 {
        return Err(ArtifactError::Truncated { section: S });
    }
    let losses = (0..n).map(|_| buf.get_f32_le()).collect();
    Ok((losses, buf.get_f64_le()))
}

fn decode_ranges(mut buf: &[u8]) -> Result<Vec<RangeEntry>, ArtifactError> {
    const S: &str = "RNGS";
    if buf.remaining() < 4 {
        return Err(ArtifactError::Truncated { section: S });
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let layer = take_str(&mut buf, S)?;
        if buf.remaining() < 3 + 8 {
            return Err(ArtifactError::Truncated { section: S });
        }
        let kind = kind_from_code(buf.get_u8())?;
        let in_routing = match buf.get_u8() {
            0 => false,
            1 => true,
            other => {
                return Err(ArtifactError::Corrupt {
                    what: format!("bad in-routing flag {other}"),
                })
            }
        };
        let bits = buf.get_u8();
        let (min, max) = (buf.get_f32_le(), buf.get_f32_le());
        let params =
            QuantParams::from_range(min, max, bits).map_err(|e| ArtifactError::Corrupt {
                what: format!("invalid quantization range for site ({layer}): {e}"),
            })?;
        out.push(RangeEntry {
            layer,
            kind,
            in_routing,
            params,
        });
    }
    Ok(out)
}

fn decode_noise(mut buf: &[u8]) -> Result<Vec<ComponentNoise>, ArtifactError> {
    const S: &str = "NANM";
    if buf.remaining() < 4 {
        return Err(ArtifactError::Truncated { section: S });
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let component = take_str(&mut buf, S)?;
        if buf.remaining() < 24 {
            return Err(ArtifactError::Truncated { section: S });
        }
        out.push(ComponentNoise {
            component,
            samples: buf.get_u64_le(),
            na: buf.get_f64_le(),
            nm: buf.get_f64_le(),
        });
    }
    Ok(out)
}

/// Serializes a complete artifact file: header + the six checksummed
/// sections. `weights` is the raw `capsnet::io` weight-codec buffer.
pub(crate) fn encode_artifact(
    key: &ArtifactKey,
    weights: &[u8],
    payload: &ArtifactPayload,
) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(weights.len() + 4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(STORE_SCHEMA_VERSION);
    buf.put_u64_le(key.seed);
    buf.put_u32_le(key.epochs as u32);
    buf.put_u64_le(key.fingerprint);
    put_str(&mut buf, &key.arch);
    put_str(&mut buf, &key.dataset);
    buf.put_u32_le(SECTION_TAGS.len() as u32);
    let sections: [&[u8]; 6] = [
        weights,
        &encode_meta(payload),
        &encode_ranges(&payload.ranges),
        &encode_noise(&payload.noise_table),
        &payload.activation_codes,
        &encode_faults(&payload.fault_table),
    ];
    for (tag, body) in SECTION_TAGS.iter().zip(sections) {
        buf.put_slice(*tag);
        buf.put_u64_le(body.len() as u64);
        buf.put_slice(body);
        buf.put_u64_le(fnv1a(body));
    }
    buf.freeze().to_vec()
}

/// Parses and integrity-checks an artifact file against `key`,
/// returning the raw weight-codec bytes and the decoded payload.
pub(crate) fn decode_artifact(
    key: &ArtifactKey,
    data: &[u8],
) -> Result<(Vec<u8>, ArtifactPayload), ArtifactError> {
    let mut buf = data;
    if buf.remaining() < 8 {
        return Err(ArtifactError::Truncated { section: "header" });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let found = buf.get_u32_le();
    if found != STORE_SCHEMA_VERSION {
        return Err(ArtifactError::SchemaVersionMismatch {
            found,
            expected: STORE_SCHEMA_VERSION,
        });
    }
    if buf.remaining() < 20 {
        return Err(ArtifactError::Truncated { section: "header" });
    }
    let mismatch = |field, found: String, expected: String| {
        Err(ArtifactError::KeyMismatch {
            field,
            found,
            expected,
        })
    };
    let seed = buf.get_u64_le();
    if seed != key.seed {
        return mismatch("seed", seed.to_string(), key.seed.to_string());
    }
    let epochs = buf.get_u32_le() as usize;
    if epochs != key.epochs {
        return mismatch("epochs", epochs.to_string(), key.epochs.to_string());
    }
    let fp = buf.get_u64_le();
    if fp != key.fingerprint {
        return mismatch(
            "fingerprint",
            format!("{fp:016x}"),
            format!("{:016x}", key.fingerprint),
        );
    }
    let arch = take_str(&mut buf, "header")?;
    if arch != key.arch {
        return mismatch("arch", arch, key.arch.clone());
    }
    let dataset = take_str(&mut buf, "header")?;
    if dataset != key.dataset {
        return mismatch("dataset", dataset, key.dataset.clone());
    }
    if buf.remaining() < 4 {
        return Err(ArtifactError::Truncated { section: "header" });
    }
    let count = buf.get_u32_le() as usize;
    if count != SECTION_TAGS.len() {
        return Err(ArtifactError::Corrupt {
            what: format!("{count} sections, expected {}", SECTION_TAGS.len()),
        });
    }

    let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(SECTION_TAGS.len());
    for expected_tag in SECTION_TAGS {
        // lint: allow(panic) — the section tag constants are 4-byte ASCII literals
        let section: &'static str = std::str::from_utf8(expected_tag).expect("tags are ASCII");
        if buf.remaining() < 12 {
            return Err(ArtifactError::Truncated { section });
        }
        let mut tag = [0u8; 4];
        buf.copy_to_slice(&mut tag);
        if &tag != expected_tag {
            return Err(ArtifactError::Corrupt {
                what: format!(
                    "section tag {:?}, expected {section}",
                    String::from_utf8_lossy(&tag)
                ),
            });
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len + 8 {
            return Err(ArtifactError::Truncated { section });
        }
        let mut body = vec![0u8; len];
        buf.copy_to_slice(&mut body);
        if buf.get_u64_le() != fnv1a(&body) {
            return Err(ArtifactError::ChecksumMismatch { section });
        }
        bodies.push(body);
    }
    // lint: allow(panic) — section count was validated against the header immediately above
    let fault_table = decode_faults(&bodies.pop().expect("six sections"))?;
    // lint: allow(panic) — section count was validated against the header immediately above
    let activation_codes = bodies.pop().expect("six sections");
    // lint: allow(panic) — section count was validated against the header immediately above
    let noise_table = decode_noise(&bodies.pop().expect("six sections"))?;
    // lint: allow(panic) — section count was validated against the header immediately above
    let ranges = decode_ranges(&bodies.pop().expect("six sections"))?;
    // lint: allow(panic) — section count was validated against the header immediately above
    let (epoch_losses, train_accuracy) = decode_meta(&bodies.pop().expect("six sections"))?;
    // lint: allow(panic) — section count was validated against the header immediately above
    let weights = bodies.pop().expect("six sections");
    Ok((
        weights,
        ArtifactPayload {
            epoch_losses,
            train_accuracy,
            ranges,
            noise_table,
            activation_codes,
            fault_table,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> ArtifactKey {
        ArtifactKey::new("capsnet", "mnist-like", 42, 6, fingerprint("cfg"))
    }

    fn sample_payload() -> ArtifactPayload {
        ArtifactPayload {
            epoch_losses: vec![0.9, 0.4, 0.2],
            train_accuracy: 0.875,
            ranges: vec![
                RangeEntry {
                    layer: "Conv1".into(),
                    kind: OpKind::MacOutput,
                    in_routing: false,
                    params: QuantParams::from_range(-1.5, 2.5, 8).unwrap(),
                },
                RangeEntry {
                    layer: "ClassCaps".into(),
                    kind: OpKind::Softmax,
                    in_routing: true,
                    params: QuantParams::from_range(0.0, 1.0, 8).unwrap(),
                },
            ],
            noise_table: vec![ComponentNoise {
                component: "mul8u_NGR".into(),
                samples: 4000,
                na: -1.25e-4,
                nm: 3.5e-3,
            }],
            activation_codes: vec![0, 7, 255, 128],
            fault_table: vec![
                FaultChar {
                    spec: "multiplier:stuck1(0x08)".into(),
                    samples: 2000,
                    mean_err: 2.4e-3,
                    rms_err: 7.1e-3,
                },
                FaultChar {
                    spec: "weight_codes:bitflip(0.001)".into(),
                    samples: 2000,
                    mean_err: -4.0e-5,
                    rms_err: 1.9e-3,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let key = sample_key();
        let payload = sample_payload();
        let weights = b"RCW1-not-really-weights".to_vec();
        let file = encode_artifact(&key, &weights, &payload);
        let (w, p) = decode_artifact(&key, &file).unwrap();
        assert_eq!(w, weights);
        assert_eq!(p, payload);
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let key = sample_key();
        let file = encode_artifact(&key, b"weights", &sample_payload());
        for len in 0..file.len() {
            let err = decode_artifact(&key, &file[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
                ),
                "prefix of {len} bytes gave {err}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let key = sample_key();
        let payload = sample_payload();
        let file = encode_artifact(&key, b"weights", &payload);
        // Flip one bit in every byte; decode must either fail or (for
        // flips inside a section payload whose checksum would then also
        // have to collide) never silently return different content.
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x10;
            match decode_artifact(&key, &bad) {
                Err(_) => {}
                Ok((w, p)) => {
                    assert_eq!(w, b"weights");
                    assert_eq!(p, payload);
                }
            }
        }
    }

    #[test]
    fn fault_section_round_trips_and_rejects_corruption() {
        let key = sample_key();
        let payload = sample_payload();
        let file = encode_artifact(&key, b"weights", &payload);
        let (_, p) = decode_artifact(&key, &file).unwrap();
        assert_eq!(p.fault_table, payload.fault_table);
        assert_eq!(p.fault_table.len(), 2);
        assert_eq!(p.fault_table[0].spec, "multiplier:stuck1(0x08)");

        // The FCHR body is the last section; flipping a bit inside it
        // must fail its checksum, and truncating mid-section must be
        // named as FCHR.
        let mut bad = file.clone();
        let last = bad.len() - 12; // inside the FCHR payload, before its checksum
        bad[last] ^= 0x01;
        assert!(matches!(
            decode_artifact(&key, &bad).unwrap_err(),
            ArtifactError::ChecksumMismatch { .. } | ArtifactError::Corrupt { .. }
        ));
        let err = decode_artifact(&key, &file[..file.len() - 4]).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Truncated { section: "FCHR" }),
            "{err}"
        );

        // An empty fault table still round-trips (older consumers).
        let bare = ArtifactPayload {
            fault_table: Vec::new(),
            ..payload
        };
        let file = encode_artifact(&key, b"weights", &bare);
        let (_, p) = decode_artifact(&key, &file).unwrap();
        assert!(p.fault_table.is_empty());
    }

    #[test]
    fn wrong_schema_version_is_named() {
        let key = sample_key();
        let mut file = encode_artifact(&key, b"weights", &sample_payload());
        // The schema version lives right after the 4-byte magic.
        file[4..8].copy_from_slice(&(STORE_SCHEMA_VERSION + 1).to_le_bytes());
        let err = decode_artifact(&key, &file).unwrap_err();
        assert!(
            matches!(
                err,
                ArtifactError::SchemaVersionMismatch { found, expected }
                    if found == STORE_SCHEMA_VERSION + 1 && expected == STORE_SCHEMA_VERSION
            ),
            "{err}"
        );
    }

    #[test]
    fn key_mismatch_is_named() {
        let key = sample_key();
        let file = encode_artifact(&key, b"weights", &sample_payload());
        let mut other = key.clone();
        other.fingerprint ^= 1;
        let err = decode_artifact(&other, &file).unwrap_err();
        assert!(
            matches!(
                err,
                ArtifactError::KeyMismatch {
                    field: "fingerprint",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint("a"), fingerprint("a"));
        assert_ne!(fingerprint("a"), fingerprint("b"));
        // FNV-1a reference value for the empty string.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn file_names_separate_distinct_keys() {
        let a = sample_key();
        let mut b = a.clone();
        b.fingerprint ^= 1;
        let mut c = a.clone();
        c.dataset = "svhn-like".into();
        assert_ne!(a.file_name(), b.file_name());
        assert_ne!(a.file_name(), c.file_name());
        assert!(a
            .file_name()
            .ends_with(&format!(".v{STORE_SCHEMA_VERSION}.rca")));
    }

    #[test]
    fn op_kind_codes_round_trip() {
        for kind in [
            OpKind::MacOutput,
            OpKind::Activation,
            OpKind::Softmax,
            OpKind::LogitsUpdate,
            OpKind::MacInput,
        ] {
            assert_eq!(kind_from_code(kind_code(kind)).unwrap(), kind);
        }
        assert!(kind_from_code(5).is_err());
    }
}
