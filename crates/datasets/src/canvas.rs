//! A tiny single-channel raster canvas with the drawing primitives the
//! synthetic renderers need: thick line segments, filled/outlined
//! rectangles and ellipses, plus per-pixel noise and affine jitter.

use redcane_tensor::{Tensor, TensorRng};

/// A `height × width` grayscale canvas with values clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    height: usize,
    width: usize,
    pixels: Vec<f32>,
}

impl Canvas {
    /// Creates a black canvas.
    pub fn new(height: usize, width: usize) -> Self {
        Canvas {
            height,
            width,
            pixels: vec![0.0; height * width],
        }
    }

    /// Canvas height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Canvas width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads a pixel (0.0 outside bounds).
    pub fn get(&self, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            return 0.0;
        }
        self.pixels[y as usize * self.width + x as usize]
    }

    /// Writes a pixel with max-blend (ink accumulates), ignoring
    /// out-of-bounds coordinates.
    pub fn stamp(&mut self, y: isize, x: isize, v: f32) {
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            return;
        }
        let p = &mut self.pixels[y as usize * self.width + x as usize];
        *p = p.max(v.clamp(0.0, 1.0));
    }

    /// Draws a thick anti-alias-free line from `(y0, x0)` to `(y1, x1)`
    /// (fractional coordinates) with the given stroke `thickness` (pixels)
    /// and `intensity`.
    pub fn line(&mut self, y0: f32, x0: f32, y1: f32, x1: f32, thickness: f32, intensity: f32) {
        let steps = ((y1 - y0).abs().max((x1 - x0).abs()) * 2.0).ceil() as usize + 1;
        let r = (thickness / 2.0).max(0.5);
        for s in 0..=steps {
            let t = s as f32 / steps as f32;
            let cy = y0 + (y1 - y0) * t;
            let cx = x0 + (x1 - x0) * t;
            let lo_y = (cy - r).floor() as isize;
            let hi_y = (cy + r).ceil() as isize;
            let lo_x = (cx - r).floor() as isize;
            let hi_x = (cx + r).ceil() as isize;
            for y in lo_y..=hi_y {
                for x in lo_x..=hi_x {
                    let dy = y as f32 - cy;
                    let dx = x as f32 - cx;
                    if dy * dy + dx * dx <= r * r {
                        self.stamp(y, x, intensity);
                    }
                }
            }
        }
    }

    /// Fills the axis-aligned rectangle `[y0, y1] × [x0, x1]`.
    pub fn fill_rect(&mut self, y0: f32, x0: f32, y1: f32, x1: f32, intensity: f32) {
        for y in y0.floor() as isize..=y1.ceil() as isize {
            for x in x0.floor() as isize..=x1.ceil() as isize {
                if (y as f32) >= y0 && (y as f32) <= y1 && (x as f32) >= x0 && (x as f32) <= x1 {
                    self.stamp(y, x, intensity);
                }
            }
        }
    }

    /// Fills an ellipse centered at `(cy, cx)` with radii `(ry, rx)`.
    pub fn fill_ellipse(&mut self, cy: f32, cx: f32, ry: f32, rx: f32, intensity: f32) {
        for y in (cy - ry).floor() as isize..=(cy + ry).ceil() as isize {
            for x in (cx - rx).floor() as isize..=(cx + rx).ceil() as isize {
                let ny = (y as f32 - cy) / ry.max(0.1);
                let nx = (x as f32 - cx) / rx.max(0.1);
                if ny * ny + nx * nx <= 1.0 {
                    self.stamp(y, x, intensity);
                }
            }
        }
    }

    /// Draws an ellipse outline of the given stroke thickness.
    pub fn ellipse_outline(
        &mut self,
        cy: f32,
        cx: f32,
        ry: f32,
        rx: f32,
        thickness: f32,
        intensity: f32,
    ) {
        let steps = ((ry + rx) * 6.0).ceil() as usize + 8;
        for s in 0..steps {
            let a = 2.0 * std::f32::consts::PI * s as f32 / steps as f32;
            let y = cy + ry * a.sin();
            let x = cx + rx * a.cos();
            self.fill_ellipse(y, x, thickness / 2.0, thickness / 2.0, intensity);
        }
    }

    /// Adds i.i.d. Gaussian pixel noise and re-clamps to `[0, 1]`.
    pub fn add_noise(&mut self, std: f32, rng: &mut TensorRng) {
        for p in &mut self.pixels {
            *p = (*p + rng.next_normal(0.0, std)).clamp(0.0, 1.0);
        }
    }

    /// Applies a small affine jitter (rotation + translation) by resampling
    /// with nearest-neighbor around the canvas center.
    pub fn jitter(&self, angle_rad: f32, dy: f32, dx: f32) -> Canvas {
        let mut out = Canvas::new(self.height, self.width);
        let (cy, cx) = (self.height as f32 / 2.0, self.width as f32 / 2.0);
        let (sin, cos) = angle_rad.sin_cos();
        for y in 0..self.height {
            for x in 0..self.width {
                // Inverse-map the output pixel into the source.
                let oy = y as f32 - cy - dy;
                let ox = x as f32 - cx - dx;
                let sy = cos * oy + sin * ox + cy;
                let sx = -sin * oy + cos * ox + cx;
                let v = self.get(sy.round() as isize, sx.round() as isize);
                out.pixels[y * self.width + x] = v;
            }
        }
        out
    }

    /// Converts to a `[1, H, W]` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.pixels.clone(), &[1, self.height, self.width])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("canvas pixels sized to shape")
    }

    /// Total ink on the canvas (sum of pixels).
    pub fn ink(&self) -> f32 {
        self.pixels.iter().sum()
    }
}

/// Stacks three canvases into a `[3, H, W]` RGB tensor.
///
/// # Panics
///
/// Panics if the canvases disagree on geometry.
pub fn stack_rgb(r: &Canvas, g: &Canvas, b: &Canvas) -> Tensor {
    assert_eq!((r.height, r.width), (g.height, g.width));
    assert_eq!((r.height, r.width), (b.height, b.width));
    let mut data = Vec::with_capacity(3 * r.height * r.width);
    data.extend_from_slice(&r.pixels);
    data.extend_from_slice(&g.pixels);
    data.extend_from_slice(&b.pixels);
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(data, &[3, r.height, r.width]).expect("sized")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_black() {
        let c = Canvas::new(4, 5);
        assert_eq!(c.ink(), 0.0);
        assert_eq!(c.height(), 4);
        assert_eq!(c.width(), 5);
    }

    #[test]
    fn stamp_clamps_and_bounds_checks() {
        let mut c = Canvas::new(3, 3);
        c.stamp(1, 1, 2.0);
        assert_eq!(c.get(1, 1), 1.0);
        c.stamp(-1, 0, 1.0); // ignored
        c.stamp(0, 5, 1.0); // ignored
        assert_eq!(c.ink(), 1.0);
    }

    #[test]
    fn line_deposits_ink_along_path() {
        let mut c = Canvas::new(10, 10);
        c.line(0.0, 0.0, 9.0, 9.0, 1.0, 1.0);
        assert!(c.get(0, 0) > 0.0);
        assert!(c.get(5, 5) > 0.0);
        assert!(c.get(9, 9) > 0.0);
        assert_eq!(c.get(0, 9), 0.0);
    }

    #[test]
    fn fill_rect_covers_interior() {
        let mut c = Canvas::new(8, 8);
        c.fill_rect(2.0, 2.0, 5.0, 5.0, 0.8);
        assert_eq!(c.get(3, 3), 0.8);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(6, 6), 0.0);
    }

    #[test]
    fn ellipse_fill_and_outline() {
        let mut f = Canvas::new(12, 12);
        f.fill_ellipse(6.0, 6.0, 4.0, 4.0, 1.0);
        assert!(f.get(6, 6) > 0.0);
        let mut o = Canvas::new(12, 12);
        o.ellipse_outline(6.0, 6.0, 4.0, 4.0, 1.0, 1.0);
        assert_eq!(o.get(6, 6), 0.0, "outline leaves the center empty");
        assert!(o.ink() > 0.0);
    }

    #[test]
    fn jitter_preserves_rough_ink() {
        let mut c = Canvas::new(16, 16);
        c.fill_ellipse(8.0, 8.0, 3.0, 3.0, 1.0);
        let j = c.jitter(0.2, 1.0, -1.0);
        assert!(j.ink() > c.ink() * 0.6);
        assert!(j.ink() < c.ink() * 1.4);
    }

    #[test]
    fn to_tensor_shape_and_rgb_stack() {
        let c = Canvas::new(4, 6);
        assert_eq!(c.to_tensor().shape(), &[1, 4, 6]);
        let rgb = stack_rgb(&c, &c, &c);
        assert_eq!(rgb.shape(), &[3, 4, 6]);
    }

    #[test]
    fn noise_stays_in_unit_interval() {
        let mut c = Canvas::new(8, 8);
        c.fill_rect(0.0, 0.0, 7.0, 7.0, 0.5);
        let mut rng = TensorRng::from_seed(9);
        c.add_noise(0.5, &mut rng);
        let t = c.to_tensor();
        assert!(t.min_value() >= 0.0 && t.max_value() <= 1.0);
    }
}
