//! Kernel and end-to-end timing harness behind the `perf` binary.
//!
//! Each probe times one hot-path kernel against its naive reference
//! twin (the correctness oracle the blocked kernels are tested against)
//! and reports ns/op plus the speedup. The end-to-end probes time one
//! training epoch and the full seeded pipeline, which is the number the
//! CI regression tripwire watches.

use std::path::PathBuf;
use std::time::Instant;

use redcane::datapath::DatapathAssignment;
use redcane::report::json::Value;
use redcane_artifacts::{fingerprint, ArtifactKey, ArtifactPayload, ArtifactStore};
use redcane_axmul::LutCache;
use redcane_capsnet::routing::{
    dynamic_routing, dynamic_routing_backward, reference as routing_reference,
};
use redcane_capsnet::{
    train, CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig, NoInjection, TrainConfig,
};
use redcane_datasets::{generate, Benchmark, GenerateConfig};
use redcane_qdp::{kernels as qkernels, CalibrationObserver, MulLut, QModel};
use redcane_tensor::ops::gemm;
use redcane_tensor::ops::Conv2dSpec;
use redcane_tensor::{Tensor, TensorRng};

use crate::{run_pipeline, PipelineConfig};

/// One timed probe: the optimized path, and optionally its naive twin.
#[derive(Debug, Clone)]
pub struct PerfProbe {
    /// Stable probe name (also the JSON key).
    pub name: String,
    /// Nanoseconds per operation of the optimized path.
    pub ns_per_op: f64,
    /// Nanoseconds per operation of the naive reference, if it exists.
    pub naive_ns_per_op: Option<f64>,
}

impl PerfProbe {
    /// `naive / fast`, when a reference twin was timed.
    pub fn speedup_vs_naive(&self) -> Option<f64> {
        self.naive_ns_per_op.map(|naive| {
            if self.ns_per_op > 0.0 {
                naive / self.ns_per_op
            } else {
                0.0
            }
        })
    }
}

/// The full perf report: kernel probes plus end-to-end numbers.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Kernel-level probes.
    pub probes: Vec<PerfProbe>,
    /// Wall-clock seconds of one full seeded pipeline run.
    pub pipeline_total_s: f64,
    /// Wall-clock seconds of the training stage of that run.
    pub pipeline_train_s: f64,
    /// Worker threads the run used.
    pub threads: usize,
}

/// Times `f` by running it `reps` times after one warmup call and
/// returns the **minimum** ns per call (least-noise estimator).
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn gemm_probe(name: &str, m: usize, k: usize, n: usize, reps: usize) -> PerfProbe {
    let mut rng = TensorRng::from_seed(77);
    let a: Vec<f32> = (0..m * k).map(|_| rng.next_uniform(-1.0, 1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.next_uniform(-1.0, 1.0)).collect();
    let mut c = vec![0.0f32; m * n];
    let fast = time_ns(reps, || {
        c.fill(0.0);
        gemm::gemm_nn(&a, &b, &mut c, m, k, n);
        std::hint::black_box(&c);
    });
    let naive = time_ns(reps, || {
        c.fill(0.0);
        gemm::reference::gemm_nn(&a, &b, &mut c, m, k, n);
        std::hint::black_box(&c);
    });
    PerfProbe {
        name: name.to_string(),
        ns_per_op: fast,
        naive_ns_per_op: Some(naive),
    }
}

/// Quantized-GEMM probe: the blocked integer kernel (exact-multiplier
/// LUT) against its naive reference twin, same shapes as the float
/// probes so the int-vs-float cost is directly comparable.
fn qgemm_probe(name: &str, m: usize, k: usize, n: usize, reps: usize) -> PerfProbe {
    let mut rng = TensorRng::from_seed(81);
    let a: Vec<u8> = (0..m * k)
        .map(|_| rng.next_uniform(0.0, 256.0) as u8)
        .collect();
    let b: Vec<u8> = (0..k * n)
        .map(|_| rng.next_uniform(0.0, 256.0) as u8)
        .collect();
    let lut = MulLut::exact();
    let mut c = vec![0u32; m * n];
    let fast = time_ns(reps, || {
        c.fill(0);
        qkernels::qgemm_nn(&a, &b, &mut c, m, k, n, &lut);
        std::hint::black_box(&c);
    });
    let naive = time_ns(reps, || {
        c.fill(0);
        qkernels::reference::qgemm_nn(&a, &b, &mut c, m, k, n, &lut);
        std::hint::black_box(&c);
    });
    PerfProbe {
        name: name.to_string(),
        ns_per_op: fast,
        naive_ns_per_op: Some(naive),
    }
}

/// Instrumentation-overhead probe: the public (hooked) `qgemm_nn`
/// entry against its uninstrumented body `qgemm_nn_raw`, with tracing
/// in its default disabled state — so the "naive" twin here is the
/// pre-hook kernel and `speedup_vs_naive` is `raw / hooked` (~1.0).
/// The tripwire bar: disabled hooks must cost < 5% on a real shape.
fn qgemm_overhead_probe(name: &str, m: usize, k: usize, n: usize, reps: usize) -> PerfProbe {
    let mut rng = TensorRng::from_seed(85);
    let a: Vec<u8> = (0..m * k)
        .map(|_| rng.next_uniform(0.0, 256.0) as u8)
        .collect();
    let b: Vec<u8> = (0..k * n)
        .map(|_| rng.next_uniform(0.0, 256.0) as u8)
        .collect();
    let lut = MulLut::exact();
    let mut c = vec![0u32; m * n];
    let hooked = time_ns(reps, || {
        c.fill(0);
        qkernels::qgemm_nn(&a, &b, &mut c, m, k, n, &lut);
        std::hint::black_box(&c);
    });
    let raw = time_ns(reps, || {
        c.fill(0);
        qkernels::qgemm_nn_raw(&a, &b, &mut c, m, k, n, &lut);
        std::hint::black_box(&c);
    });
    PerfProbe {
        name: name.to_string(),
        ns_per_op: hooked,
        naive_ns_per_op: Some(raw),
    }
}

fn conv_probe(reps: usize) -> PerfProbe {
    // The small-config stem geometry: 1×16×16 input, 24 7×7 filters.
    let mut rng = TensorRng::from_seed(78);
    let input = rng.uniform(&[1, 16, 16], 0.0, 1.0);
    let weight = rng.uniform(&[24, 1, 7, 7], -0.2, 0.2);
    let bias = rng.uniform(&[24], -0.1, 0.1);
    let spec = Conv2dSpec::new(7, 1, 0).expect("valid spec");
    let fast = time_ns(reps, || {
        std::hint::black_box(input.conv2d(&weight, &bias, spec).expect("conv"));
    });
    // Naive twin: same im2col lowering, naive GEMM.
    let k2 = 49;
    let n = 10 * 10;
    let naive = time_ns(reps, || {
        let cols = input.im2col(spec).expect("im2col");
        let mut out = vec![0.0f32; 24 * n];
        gemm::reference::gemm_nn(weight.data(), cols.data(), &mut out, 24, k2, n);
        for (co, orow) in out.chunks_exact_mut(n).enumerate() {
            let b = bias.data()[co];
            for v in orow {
                *v += b;
            }
        }
        std::hint::black_box(Tensor::from_vec(out, &[24, 10, 10]).expect("shape"));
    });
    PerfProbe {
        name: "conv2d_fwd_1x16x16_k7x24".to_string(),
        ns_per_op: fast,
        naive_ns_per_op: Some(naive),
    }
}

fn routing_probes(reps: usize) -> Vec<PerfProbe> {
    // The ClassCaps geometry of the small CapsNet: [72, 10, 8, 1].
    let mut rng = TensorRng::from_seed(79);
    let votes = rng.uniform(&[72, 10, 8, 1], -1.0, 1.0);
    let coeffs = rng.uniform(&[10, 8, 1], -1.0, 1.0);
    let fwd_fast = time_ns(reps, || {
        std::hint::black_box(dynamic_routing(votes.clone(), 3, 0, "P", &mut NoInjection));
    });
    let fwd_naive = time_ns(reps, || {
        std::hint::black_box(routing_reference::dynamic_routing(
            votes.clone(),
            3,
            0,
            "P",
            &mut NoInjection,
        ));
    });
    let cache = dynamic_routing(votes.clone(), 3, 0, "P", &mut NoInjection);
    let bwd_fast = time_ns(reps, || {
        std::hint::black_box(dynamic_routing_backward(&cache, &coeffs));
    });
    let bwd_naive = time_ns(reps, || {
        std::hint::black_box(routing_reference::dynamic_routing_backward(&cache, &coeffs));
    });
    vec![
        PerfProbe {
            name: "routing_fwd_72x10x8x1".to_string(),
            ns_per_op: fwd_fast,
            naive_ns_per_op: Some(fwd_naive),
        },
        PerfProbe {
            name: "routing_bwd_72x10x8x1".to_string(),
            ns_per_op: bwd_fast,
            naive_ns_per_op: Some(bwd_naive),
        },
    ]
}

/// Quantized-DeepCaps probes: what lowering the 17-layer DeepCaps
/// through the architecture-generic pipeline costs, what one
/// end-to-end quantized inference (exact uniform assignment) costs,
/// and what the batch-fused executor saves over per-sample forwards —
/// the tripwires for the quantized DeepCaps path staying usable for
/// library sweeps.
fn qdp_deepcaps_probes(reps: usize) -> Vec<PerfProbe> {
    const BATCH: usize = 4;
    let mut rng = TensorRng::from_seed(82);
    let mut model = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
    let images: Vec<Tensor> = (0..BATCH)
        .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
        .collect();
    let mut obs = CalibrationObserver::new();
    for image in &images {
        let _ = model.forward(image, &mut obs);
    }
    let ranges = obs.ranges(8).expect("finite activations");
    let lower_ns = time_ns(reps, || {
        std::hint::black_box(QModel::lower(&model, &ranges).expect("calibrated"));
    });
    let q = QModel::lower(&model, &ranges).expect("calibrated");
    let assignment = DatapathAssignment::uniform("exact");
    let mut luts = LutCache::new();
    luts.insert("exact", MulLut::exact());
    let fwd_ns = time_ns(reps, || {
        std::hint::black_box(q.forward(&images[0], &assignment, &luts).expect("covered"));
    });
    // Batch fusion vs its per-sample twin over the same images: the
    // naive path is BATCH single-sample forwards.
    let refs: Vec<&Tensor> = images.iter().collect();
    let batch_ns = time_ns(reps, || {
        std::hint::black_box(q.forward_batch(&refs, &assignment, &luts).expect("covered"));
    });
    let per_sample_ns = time_ns(reps, || {
        for image in &images {
            std::hint::black_box(q.forward(image, &assignment, &luts).expect("covered"));
        }
    });
    vec![
        PerfProbe {
            name: "qdp_lower_deepcaps_small".to_string(),
            ns_per_op: lower_ns,
            naive_ns_per_op: None,
        },
        PerfProbe {
            name: "qdp_fwd_deepcaps_small".to_string(),
            ns_per_op: fwd_ns,
            naive_ns_per_op: None,
        },
        PerfProbe {
            name: "qdp_fwd_batch_deepcaps_small".to_string(),
            ns_per_op: batch_ns,
            naive_ns_per_op: Some(per_sample_ns),
        },
    ]
}

fn epoch_probe() -> PerfProbe {
    // One epoch over a small seeded set; no naive twin (the naive
    // kernels only exist at the kernel level).
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 120,
            test: 1,
            seed: 5,
        },
    );
    let mut rng = TensorRng::from_seed(80);
    let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        lr: 2e-3,
        seed: 3,
        verbose: false,
    };
    let t = Instant::now();
    let _ = train(&mut model, &pair.train, &cfg);
    PerfProbe {
        name: "train_epoch_120x1_capsnet_small".to_string(),
        ns_per_op: t.elapsed().as_nanos() as f64,
        naive_ns_per_op: None,
    }
}

/// Trained-artifact store probe: what restoring a trained model costs
/// versus training it (the naive twin), on a scratch store under the
/// temp dir. The load-vs-retrain win the CI tripwire watches: restore
/// should be orders of magnitude (≥10×) faster than even one epoch.
fn artifact_load_probe<M: CapsModel + Clone + Send + Sync>(
    name: &str,
    arch: &str,
    mut model: M,
    reps: usize,
) -> PerfProbe {
    let pair = generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 120,
            test: 1,
            seed: 6,
        },
    );
    let t = Instant::now();
    let _ = train(
        &mut model,
        &pair.train,
        &TrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 2e-3,
            seed: 3,
            verbose: false,
        },
    );
    let train_ns = t.elapsed().as_nanos() as f64;

    let dir = std::env::temp_dir().join(format!(
        "redcane-perf-artifacts-{arch}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::new(dir.clone());
    let key = ArtifactKey::new(
        arch,
        "mnist-like",
        6,
        1,
        fingerprint("perf-artifact-load-v1"),
    );
    store
        .save(&key, &mut model, &ArtifactPayload::default())
        .expect("scratch store is writable");
    let load_ns = time_ns(reps, || {
        std::hint::black_box(store.load(&key, &mut model).expect("entry just saved"));
    });
    let _ = std::fs::remove_dir_all(&dir);
    PerfProbe {
        name: name.to_string(),
        ns_per_op: load_ns,
        naive_ns_per_op: Some(train_ns),
    }
}

/// Runs every probe plus one full pipeline and assembles the report.
/// `artifacts` is threaded into the pipeline run's store setting, so a
/// perf job on a warm store measures the restore path.
pub fn run_perf(quick: bool, artifacts: Option<PathBuf>) -> PerfReport {
    let reps = if quick { 5 } else { 40 };
    let mut probes = vec![
        // The two GEMM shapes the small CapsNet actually runs, plus a
        // square shape for context.
        gemm_probe("matmul_24x49x100_stem", 24, 49, 100, reps),
        gemm_probe("matmul_32x600x9_primary", 32, 600, 9, reps),
        gemm_probe("matmul_128x128x128", 128, 128, 128, reps),
        // DeepCaps paper geometry: the last capsule cell's 3x3 conv
        // lowered to GEMM (C = 32 types x 8 dims, 4x4 spatial).
        gemm_probe("matmul_256x2304x16_deepcaps_cell4", 256, 2304, 16, reps),
        // Integer twins of the stem and DeepCaps shapes: what one
        // approximate-datapath sweep step costs per layer.
        qgemm_probe("qgemm_24x49x100_stem", 24, 49, 100, reps),
        qgemm_probe("qgemm_256x2304x16_deepcaps_cell4", 256, 2304, 16, reps),
        // Trace-hook overhead on the disabled fast path; extra reps
        // keep the min-of-N estimate tight enough for the 5% tripwire.
        qgemm_overhead_probe("qgemm_hooks_off_24x49x100", 24, 49, 100, reps.max(50)),
        conv_probe(reps),
    ];
    probes.extend(routing_probes(reps));
    probes.extend(qdp_deepcaps_probes(reps));
    probes.push(epoch_probe());
    probes.push(artifact_load_probe(
        "artifact_load_capsnet",
        "capsnet",
        CapsNet::new(&CapsNetConfig::small(1, 16), &mut TensorRng::from_seed(83)),
        reps,
    ));
    probes.push(artifact_load_probe(
        "artifact_load_deepcaps_small",
        "deepcaps",
        DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut TensorRng::from_seed(84)),
        reps,
    ));
    let mut cfg = PipelineConfig::smoke();
    cfg.artifacts = artifacts;
    if quick {
        cfg.train = 60;
        cfg.test = 20;
        cfg.epochs = 1;
        cfg.characterization_samples = 500;
        cfg.max_test_samples = Some(10);
    }
    let outcome = run_pipeline(&cfg);
    PerfReport {
        probes,
        pipeline_total_s: outcome.timings.total_s(),
        pipeline_train_s: outcome.timings.train_s,
        threads: redcane_tensor::par::num_threads(),
    }
}

/// Serializes the report as the one-line `BENCH_perf.json` schema.
pub fn perf_to_json(report: &PerfReport) -> Value {
    let probes: Vec<Value> = report
        .probes
        .iter()
        .map(|p| {
            let mut fields = vec![
                ("name".into(), Value::from(p.name.clone())),
                ("ns_per_op".into(), Value::from(p.ns_per_op)),
            ];
            if let Some(naive) = p.naive_ns_per_op {
                fields.push(("naive_ns_per_op".into(), Value::from(naive)));
                fields.push((
                    "speedup_vs_naive".into(),
                    Value::from(p.speedup_vs_naive().unwrap_or(0.0)),
                ));
            }
            Value::Obj(fields)
        })
        .collect();
    Value::Obj(vec![
        ("bench".into(), Value::from("perf")),
        ("schema_version".into(), Value::from(1usize)),
        ("threads".into(), Value::from(report.threads)),
        ("kernels".into(), Value::Arr(probes)),
        (
            "pipeline_total_s".into(),
            Value::from(report.pipeline_total_s),
        ),
        (
            "pipeline_train_s".into(),
            Value::from(report.pipeline_train_s),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::report::json;

    #[test]
    fn quick_perf_report_schema() {
        let report = run_perf(true, None);
        assert!(!report.probes.is_empty());
        assert!(report.pipeline_total_s > 0.0);
        let line = perf_to_json(&report).dump();
        assert!(!line.contains('\n'));
        let parsed = json::parse(&line).unwrap();
        assert_eq!(parsed.get("bench").unwrap().as_str().unwrap(), "perf");
        let kernels = parsed.get("kernels").unwrap().as_arr().unwrap();
        assert!(kernels.len() >= 9);
        for k in kernels {
            assert!(k.get("ns_per_op").unwrap().as_f64().unwrap() > 0.0);
        }
        // The quantized and DeepCaps-shaped probes are on the tripwire.
        for name in [
            "qgemm_24x49x100_stem",
            "qgemm_256x2304x16_deepcaps_cell4",
            "qgemm_hooks_off_24x49x100",
            "matmul_256x2304x16_deepcaps_cell4",
            "qdp_lower_deepcaps_small",
            "qdp_fwd_deepcaps_small",
            "qdp_fwd_batch_deepcaps_small",
            "artifact_load_capsnet",
            "artifact_load_deepcaps_small",
        ] {
            assert!(
                kernels
                    .iter()
                    .any(|k| k.get("name").unwrap().as_str().unwrap() == name),
                "missing probe {name}"
            );
        }
        assert!(parsed.get("pipeline_total_s").unwrap().as_f64().is_some());
        // The artifact-store win: restoring trained weights must beat
        // even a single training epoch by a wide margin (the tripwire
        // bar is 10×; in practice it is orders of magnitude).
        for p in &report.probes {
            if p.name.starts_with("artifact_load_") {
                let speedup = p.speedup_vs_naive().expect("training twin timed");
                assert!(
                    speedup >= 10.0,
                    "{} restore speedup only {speedup:.1}×",
                    p.name
                );
            }
        }
        // The observability acceptance bar: with tracing disabled, the
        // hooked qgemm entry must stay within 5% of its raw body
        // (speedup_vs_naive here is raw/hooked, so ≥ 0.95).
        let overhead = report
            .probes
            .iter()
            .find(|p| p.name == "qgemm_hooks_off_24x49x100")
            .expect("overhead probe present");
        let ratio = overhead.speedup_vs_naive().expect("raw twin timed");
        assert!(
            ratio >= 0.95,
            "disabled trace hooks cost {:.1}% on qgemm",
            (1.0 / ratio - 1.0) * 100.0
        );
    }
}
