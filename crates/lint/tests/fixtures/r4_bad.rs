// Fixture: a pub fn in a registered traced module (linted as
// `tensor::ops::gemm`) with no trace hook must trip R4.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32]) {
    for (i, slot) in c.iter_mut().enumerate() {
        *slot = a[i % a.len()] * b[i % b.len()];
    }
}
