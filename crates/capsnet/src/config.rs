//! Model configurations, each with a `paper()` full-size variant (used for
//! op-census/energy studies) and a `small()` CPU-trainable variant (used
//! for every accuracy experiment).

use serde::{Deserialize, Serialize};

/// Configuration of the original CapsNet (Sabour et al., NIPS 2017):
/// conv stem → PrimaryCaps → ClassCaps with dynamic routing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapsNetConfig {
    /// Input image channels.
    pub input_channels: usize,
    /// Input image height/width (square).
    pub input_hw: usize,
    /// Stem conv output channels.
    pub conv1_filters: usize,
    /// Stem conv kernel size.
    pub conv1_kernel: usize,
    /// PrimaryCaps capsule types.
    pub primary_ctypes: usize,
    /// PrimaryCaps capsule dimension.
    pub primary_dim: usize,
    /// PrimaryCaps conv kernel size.
    pub primary_kernel: usize,
    /// PrimaryCaps conv stride.
    pub primary_stride: usize,
    /// Number of output (class) capsules.
    pub class_caps: usize,
    /// Class capsule dimension.
    pub class_dim: usize,
    /// Dynamic-routing iterations.
    pub routing_iters: usize,
}

impl CapsNetConfig {
    /// The paper's full-size CapsNet for 28×28 MNIST-class inputs:
    /// Conv 9×9×256 → PrimaryCaps 9×9, 32 types × 8D, stride 2 →
    /// DigitCaps 10×16D with 3 routing iterations.
    pub fn paper() -> Self {
        CapsNetConfig {
            input_channels: 1,
            input_hw: 28,
            conv1_filters: 256,
            conv1_kernel: 9,
            primary_ctypes: 32,
            primary_dim: 8,
            primary_kernel: 9,
            primary_stride: 2,
            class_caps: 10,
            class_dim: 16,
            routing_iters: 3,
        }
    }

    /// A CPU-trainable variant for `hw × hw` images with `channels`
    /// channels (16×16 synthetic benchmarks): Conv 7×7×24 →
    /// PrimaryCaps 5×5, 8 types × 4D, stride 2 → ClassCaps 10×8D.
    pub fn small(channels: usize, hw: usize) -> Self {
        CapsNetConfig {
            input_channels: channels,
            input_hw: hw,
            conv1_filters: 24,
            conv1_kernel: 7,
            primary_ctypes: 8,
            primary_dim: 4,
            primary_kernel: 5,
            primary_stride: 2,
            class_caps: 10,
            class_dim: 8,
            routing_iters: 3,
        }
    }

    /// Spatial size after the stem conv (valid padding, stride 1).
    pub fn conv1_out_hw(&self) -> usize {
        self.input_hw - self.conv1_kernel + 1
    }

    /// Spatial size after the PrimaryCaps conv.
    pub fn primary_out_hw(&self) -> usize {
        (self.conv1_out_hw() - self.primary_kernel) / self.primary_stride + 1
    }

    /// Number of primary capsules feeding ClassCaps.
    pub fn primary_caps_total(&self) -> usize {
        self.primary_ctypes * self.primary_out_hw() * self.primary_out_hw()
    }
}

/// Configuration of DeepCaps (Rajasegaran et al., CVPR 2019): a conv-caps
/// stem, four residual capsule cells (the last one routing in its 3-D
/// conv-caps unit), and a fully-connected ClassCaps layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepCapsConfig {
    /// Input image channels.
    pub input_channels: usize,
    /// Input image height/width (square).
    pub input_hw: usize,
    /// Capsule types/dimension after the stem.
    pub stem: (usize, usize),
    /// `(types, dim)` per capsule cell, in order; the 4th cell hosts the
    /// routing 3-D conv-caps unit.
    pub cells: [(usize, usize); 4],
    /// Stride of each cell's lead convolution (1 keeps resolution,
    /// 2 halves it). DeepCaps keeps full resolution in its first cell.
    pub cell_strides: [usize; 4],
    /// Class capsule dimension.
    pub class_dim: usize,
    /// Number of output (class) capsules.
    pub class_caps: usize,
    /// Dynamic-routing iterations (3-D unit and ClassCaps).
    pub routing_iters: usize,
}

impl DeepCapsConfig {
    /// The paper's full-size DeepCaps for 32×32 CIFAR-class inputs
    /// (Fig. 2): 32-type capsule cells, 4D early / 8D late, ClassCaps
    /// 10×16D.
    pub fn paper() -> Self {
        DeepCapsConfig {
            input_channels: 3,
            input_hw: 32,
            stem: (32, 4),
            cells: [(32, 4), (32, 8), (32, 8), (32, 8)],
            cell_strides: [1, 2, 2, 2],
            class_dim: 16,
            class_caps: 10,
            routing_iters: 3,
        }
    }

    /// A CPU-trainable variant preserving the exact topology (16
    /// ConvCaps2D layers, one routing Caps3D, ClassCaps) at reduced width.
    pub fn small(channels: usize, hw: usize) -> Self {
        DeepCapsConfig {
            input_channels: channels,
            input_hw: hw,
            stem: (4, 4),
            cells: [(4, 4), (4, 4), (4, 8), (4, 8)],
            // All cells downsample: keeps CPU training fast at small sizes.
            cell_strides: [2, 2, 2, 2],
            class_dim: 8,
            class_caps: 10,
            routing_iters: 3,
        }
    }

    /// Spatial sizes entering each cell (the stem preserves resolution;
    /// each cell's lead conv divides it by that cell's stride).
    pub fn cell_input_hw(&self) -> [usize; 4] {
        let mut hw = self.input_hw;
        let mut out = [0usize; 4];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = hw;
            // kernel-3, padding-1 conv: ceil(hw / stride)
            hw = hw.div_ceil(self.cell_strides[i]);
        }
        out
    }

    /// Spatial size of the final cell's output.
    pub fn final_hw(&self) -> usize {
        self.cell_strides
            .iter()
            .fold(self.input_hw, |hw, &s| hw.div_ceil(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capsnet_paper_geometry_matches_sabour() {
        let c = CapsNetConfig::paper();
        assert_eq!(c.conv1_out_hw(), 20);
        assert_eq!(c.primary_out_hw(), 6);
        assert_eq!(c.primary_caps_total(), 1152);
    }

    #[test]
    fn capsnet_small_geometry() {
        let c = CapsNetConfig::small(1, 16);
        assert_eq!(c.conv1_out_hw(), 10);
        assert_eq!(c.primary_out_hw(), 3);
        assert_eq!(c.primary_caps_total(), 72);
    }

    #[test]
    fn deepcaps_small_spatial_chain() {
        let c = DeepCapsConfig::small(3, 20);
        assert_eq!(c.cell_input_hw(), [20, 10, 5, 3]);
        assert_eq!(c.final_hw(), 2);
    }

    #[test]
    fn deepcaps_paper_spatial_chain() {
        let c = DeepCapsConfig::paper();
        assert_eq!(c.cell_input_hw(), [32, 32, 16, 8]);
        assert_eq!(c.final_hw(), 4);
    }
}
