//! Pins the quantized GEMM's deterministic work counts: one call plus
//! `m·k·n` MACs per entry, and the analytic LUT-row-fetch totals for
//! both dispatch paths (row-streaming below the tall-`k` threshold,
//! panel-replay above it). The raw kernel must stay silent — it is the
//! overhead-probe baseline.

use redcane_qdp::kernels::{self, NR};
use redcane_qdp::MulLut;
use redcane_trace as trace;

/// Serializes tests against the process-global trace planes.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `work` against a clean, enabled trace state and returns the
/// resulting snapshot with tracing switched back off.
fn traced(work: impl FnOnce()) -> trace::Snapshot {
    trace::reset();
    trace::set_enabled(true);
    work();
    let snap = trace::snapshot();
    trace::set_enabled(false);
    snap
}

fn qgemm(m: usize, k: usize, n: usize) -> trace::Snapshot {
    let lut = MulLut::exact();
    let a = vec![3u8; m * k];
    let b = vec![5u8; k * n];
    let mut c = vec![0u32; m * n];
    traced(|| kernels::qgemm_nn(&a, &b, &mut c, m, k, n, &lut))
}

#[test]
fn stream_path_fetches_one_lut_row_per_a_code() {
    let _guard = TRACE_LOCK.lock().unwrap();
    // k = 9 is far below the tall-k threshold: the kernel streams B and
    // fetches one LUT row per (i, p) code of A → m·k rows.
    let (m, k, n) = (4, 9, 5);
    let snap = qgemm(m, k, n);
    assert_eq!(snap.run(trace::Counter::QgemmCalls), 1);
    assert_eq!(snap.run(trace::Counter::QgemmMacs), (m * k * n) as u64);
    assert_eq!(snap.run(trace::Counter::LutRowFetches), (m * k) as u64);
}

#[test]
fn tall_k_path_refetches_rows_once_per_column_panel() {
    let _guard = TRACE_LOCK.lock().unwrap();
    // k = 200 crosses the tall-k threshold: every NR-wide column panel
    // replays A's rows → ceil(n/NR) · m · k fetches.
    let (m, k, n) = (3, 200, 10);
    let snap = qgemm(m, k, n);
    assert_eq!(snap.run(trace::Counter::QgemmCalls), 1);
    assert_eq!(snap.run(trace::Counter::QgemmMacs), (m * k * n) as u64);
    assert_eq!(
        snap.run(trace::Counter::LutRowFetches),
        (n.div_ceil(NR) * m * k) as u64
    );
}

#[test]
fn degenerate_dims_count_the_call_but_no_work() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let snap = qgemm(0, 9, 5);
    assert_eq!(snap.run(trace::Counter::QgemmCalls), 1);
    assert_eq!(snap.run(trace::Counter::QgemmMacs), 0);
    assert_eq!(snap.run(trace::Counter::LutRowFetches), 0);
}

#[test]
fn raw_kernel_records_nothing_even_when_tracing_is_on() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let lut = MulLut::exact();
    let (m, k, n) = (4, 9, 5);
    let a = vec![3u8; m * k];
    let b = vec![5u8; k * n];
    let mut c = vec![0u32; m * n];
    let snap = traced(|| kernels::qgemm_nn_raw(&a, &b, &mut c, m, k, n, &lut));
    assert_eq!(snap.run(trace::Counter::QgemmCalls), 0);
    assert_eq!(snap.run(trace::Counter::QgemmMacs), 0);
    assert_eq!(snap.run(trace::Counter::LutRowFetches), 0);
    // The arithmetic itself is the hooked kernel's, bit for bit.
    let mut hooked = vec![0u32; m * n];
    kernels::qgemm_nn(&a, &b, &mut hooked, m, k, n, &lut);
    assert_eq!(c, hooked);
}
