//! 3-D convolutional capsule layer with dynamic routing (DeepCaps'
//! `ConvCaps3D`) — the only *convolutional* layer that routes, which the
//! paper identifies as the most error-resilient convolutional layer
//! (Sec. VI-A).
//!
//! Each input capsule type `i` casts spatial votes for every output type
//! `j` through its own convolution; routing-by-agreement then couples
//! types at every spatial position.

use redcane_nn::layers::Conv2d;
use redcane_nn::{Layer, Param};
use redcane_tensor::{Tensor, TensorRng};

use crate::inject::{Injector, OpKind, OpSite};
use crate::routing::{
    dynamic_routing_backward_scratched, dynamic_routing_scratched, RoutingCache, RoutingScratch,
};

/// Routing conv-caps layer mapping `[C_in, D_in, H, W]` to
/// `[C_out, D_out, H', W']`.
#[derive(Debug, Clone)]
pub struct ConvCaps3d {
    /// One vote convolution per input capsule type: `D_in -> C_out*D_out`.
    convs: Vec<Conv2d>,
    c_in: usize,
    d_in: usize,
    c_out: usize,
    d_out: usize,
    iterations: usize,
    layer_index: usize,
    name: String,
    cache: Option<Caps3dCache>,
    scratch: RoutingScratch,
}

#[derive(Debug, Clone)]
struct Caps3dCache {
    routing: RoutingCache,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
}

impl ConvCaps3d {
    /// Creates the layer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        layer_index: usize,
        name: impl Into<String>,
        c_in: usize,
        d_in: usize,
        c_out: usize,
        d_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        iterations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let convs = (0..c_in)
            .map(|_| {
                let mut conv = Conv2d::new(d_in, c_out * d_out, kernel, stride, padding, rng);
                // Same anti-collapse gain as ConvCaps2d: the routed sum of
                // votes feeds a squash too (see CAPS_CONV_GAIN).
                let boosted = conv.weight().scale(super::conv_caps::CAPS_CONV_GAIN);
                let bias = conv.bias().clone();
                conv.set_weights(boosted, bias);
                conv
            })
            .collect();
        ConvCaps3d {
            convs,
            c_in,
            d_in,
            c_out,
            d_out,
            iterations,
            layer_index,
            name: name.into(),
            cache: None,
            scratch: RoutingScratch::new(),
        }
    }

    /// The layer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input capsule geometry `(types, dim)`.
    pub fn in_caps(&self) -> (usize, usize) {
        (self.c_in, self.d_in)
    }

    /// Output capsule geometry `(types, dim)`.
    pub fn out_caps(&self) -> (usize, usize) {
        (self.c_out, self.d_out)
    }

    /// Number of routing iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The per-input-type vote convolutions.
    pub fn convs(&self) -> &[Conv2d] {
        &self.convs
    }

    /// Forward pass with injection taps.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is `[C_in, D_in, H, W]`.
    pub fn forward(&mut self, x: &Tensor, injector: &mut dyn Injector) -> Tensor {
        assert_eq!(x.ndim(), 4, "ConvCaps3d expects [C, D, H, W]");
        assert_eq!(x.shape()[0], self.c_in);
        assert_eq!(x.shape()[1], self.d_in);
        let (h, w) = (x.shape()[2], x.shape()[3]);
        if injector.observes_inputs() {
            let mut copy = x.clone();
            injector.inject(
                &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacInput),
                &mut copy,
            );
        }
        // Per-type vote convolutions, each reading its contiguous
        // `[D_in, H, W]` chunk of the input storage directly.
        let mut per_type: Vec<Tensor> = Vec::with_capacity(self.c_in);
        let mut out_hw = (0usize, 0usize);
        let type_len = self.d_in * h * w;
        for (i, conv) in self.convs.iter_mut().enumerate() {
            let xi = &x.data()[i * type_len..(i + 1) * type_len];
            let vi = conv.forward_chw(xi, h, w); // [C_out*D_out, H', W']
            out_hw = (vi.shape()[1], vi.shape()[2]);
            per_type.push(vi);
        }
        let (h_out, w_out) = out_hw;
        let p = h_out * w_out;
        // Assemble votes [I, J, D, P].
        let mut votes = Tensor::zeros(&[self.c_in, self.c_out, self.d_out, p]);
        {
            let vd = votes.data_mut();
            for (i, vi) in per_type.iter().enumerate() {
                let src = vi.data(); // [(j*D + d), P] flattened
                let base = i * self.c_out * self.d_out * p;
                vd[base..base + src.len()].copy_from_slice(src);
            }
        }
        injector.inject(
            &OpSite::new(self.layer_index, self.name.clone(), OpKind::MacOutput),
            &mut votes,
        );
        let routing = dynamic_routing_scratched(
            &mut self.scratch,
            votes,
            self.iterations,
            self.layer_index,
            &self.name,
            injector,
        );
        let v = routing
            .v
            .reshape(&[self.c_out, self.d_out, h_out, w_out])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("spatial unfold");
        self.cache = Some(Caps3dCache {
            routing,
            in_hw: (h, w),
            out_hw,
        });
        v
    }

    /// Backward pass; returns the input gradient `[C_in, D_in, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, d_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
            .expect("ConvCaps3d::backward before forward");
        let (h_out, w_out) = cache.out_hw;
        let (h, w) = cache.in_hw;
        let p = h_out * w_out;
        let dv = d_out
            .reshape(&[self.c_out, self.d_out, p])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("gradient capsule fold");
        let dvotes = dynamic_routing_backward_scratched(&mut self.scratch, &cache.routing, &dv);
        // Scatter per-type vote gradients through each conv.
        let mut dx = Tensor::zeros(&[self.c_in, self.d_in, h, w]);
        let stride_i = self.c_out * self.d_out * p;
        for (i, conv) in self.convs.iter_mut().enumerate() {
            let gi = Tensor::from_vec(
                dvotes.data()[i * stride_i..(i + 1) * stride_i].to_vec(),
                &[self.c_out * self.d_out, h_out, w_out],
            )
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("sized");
            let dxi = conv.backward(&gi); // [D_in, h, w]
            let dst_base = i * self.d_in * h * w;
            dx.data_mut()[dst_base..dst_base + dxi.len()].copy_from_slice(dxi.data());
        }
        let _ = self.scratch.recycle(cache.routing);
        dx
    }

    /// Trainable parameters (all per-type conv weights).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.convs.iter_mut().flat_map(|c| c.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{NoInjection, RecordingInjector};
    use crate::squash::caps_lengths;

    #[test]
    fn forward_shape_and_routing_taps() {
        let mut rng = TensorRng::from_seed(150);
        let mut layer = ConvCaps3d::new(16, "Caps3D", 3, 4, 2, 4, 3, 1, 1, 3, &mut rng);
        let x = rng.uniform(&[3, 4, 4, 4], -1.0, 1.0);
        let mut rec = RecordingInjector::sites_only();
        let y = layer.forward(&x, &mut rec);
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
        // Routing taps present with iteration numbers.
        assert!(rec
            .visits
            .iter()
            .any(|s| s.kind == OpKind::Softmax && s.routing_iter == Some(2)));
        assert!(rec.visits.iter().any(|s| s.kind == OpKind::LogitsUpdate));
        // Output lengths bounded by squash.
        let l = caps_lengths(&y.reshape(&[2, 4, 16]).unwrap());
        assert!(l.data().iter().all(|&v| v < 1.0));
    }

    #[test]
    fn stride_downsamples() {
        let mut rng = TensorRng::from_seed(151);
        let mut layer = ConvCaps3d::new(0, "Caps3D", 2, 4, 2, 4, 3, 2, 1, 3, &mut rng);
        let x = rng.uniform(&[2, 4, 8, 8], -1.0, 1.0);
        let y = layer.forward(&x, &mut NoInjection);
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn backward_produces_full_input_gradient() {
        let mut rng = TensorRng::from_seed(152);
        let mut layer = ConvCaps3d::new(0, "Caps3D", 2, 3, 2, 3, 3, 1, 1, 2, &mut rng);
        let x = rng.uniform(&[2, 3, 4, 4], -1.0, 1.0);
        let y = layer.forward(&x, &mut NoInjection);
        let dx = layer.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.sq_norm() > 0.0);
        // Both input types must receive gradient.
        let per_type0: f32 = dx.slice_axis(0, 0, 1).unwrap().sq_norm();
        let per_type1: f32 = dx.slice_axis(0, 1, 2).unwrap().sq_norm();
        assert!(per_type0 > 0.0 && per_type1 > 0.0);
    }

    #[test]
    fn input_gradient_direction_matches_finite_differences() {
        let mut rng = TensorRng::from_seed(153);
        let mut layer = ConvCaps3d::new(0, "C3", 2, 2, 2, 2, 3, 1, 1, 2, &mut rng);
        let x = rng.uniform(&[2, 2, 3, 3], -1.0, 1.0);
        let coeffs = rng.uniform(&[2, 2, 3, 3], -1.0, 1.0);
        let loss = |l: &mut ConvCaps3d, x: &Tensor| {
            l.forward(x, &mut NoInjection).mul(&coeffs).unwrap().sum()
        };
        let _ = layer.forward(&x, &mut NoInjection);
        let dx = layer.backward(&coeffs);
        // Detached coupling coefficients: the analytic gradient is an
        // approximation, so require strong directional agreement with the
        // full numeric gradient rather than coordinate-wise equality.
        let eps = 5e-3f32;
        let mut numeric = Vec::with_capacity(x.len());
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            numeric.push((loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps));
        }
        let dot: f32 = numeric.iter().zip(dx.data()).map(|(a, b)| a * b).sum();
        let n1: f32 = numeric.iter().map(|a| a * a).sum::<f32>().sqrt();
        let n2 = dx.sq_norm().sqrt();
        let cosine = dot / (n1 * n2).max(1e-9);
        assert!(cosine > 0.85, "gradient direction cosine {cosine}");
    }

    #[test]
    fn param_count_scales_with_types() {
        let mut rng = TensorRng::from_seed(154);
        let mut layer = ConvCaps3d::new(0, "C3", 4, 4, 2, 4, 3, 1, 1, 3, &mut rng);
        // 4 convs of (4 -> 8) 3x3 + bias: 4 * (8*4*9 + 8)
        let total: usize = layer.params_mut().iter().map(|p| p.len()).sum();
        assert_eq!(total, 4 * (8 * 4 * 9 + 8));
    }
}
