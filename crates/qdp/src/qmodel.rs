//! [`QModel`]: end-to-end quantized inference for **any** capsule
//! architecture, assembled from the generic lowering pipeline.
//!
//! A `QModel` is a small dataflow program over the quantized layer
//! primitives of [`crate::qlayers`] plus the float glue an accelerator
//! computes exactly (ReLU, residual join + squash, capsule→unit
//! reordering, concatenation, capsule lengths). Lowering walks a
//! trained float model's layer graph, lowers every layer through
//! [`LowerToQuant`](crate::LowerToQuant) with the calibrated
//! [`QuantRanges`], and emits the steps; `forward` then executes them
//! with every MAC multiply served by a pluggable [`MulLut`].
//!
//! Both of the paper's architectures lower onto the same step set:
//! CapsNet is 4 steps, the 17-layer DeepCaps (Caps3D routing included)
//! is 24 — no per-architecture execution code.

use redcane_capsnet::model::caps_to_units;
use redcane_capsnet::squash::{caps_lengths, squash_caps};
use redcane_capsnet::{CapsModel, CapsNet, DeepCaps};
use redcane_datasets::Dataset;
use redcane_tensor::Tensor;

use crate::lower::{calibrate_ranges, LowerError, LowerToQuant, QuantRanges};
use crate::lut::MulLut;
use crate::qlayers::{QClassCaps, QConv2d, QConvCaps2d, QConvCaps3d};

/// One step of a quantized dataflow program. `src`/`a`/`b` index the
/// value produced by that step of the program (step 0's input is the
/// network input, value 0; step `i` produces value `i + 1`).
#[derive(Debug, Clone)]
pub enum QStep {
    /// Plain convolution (+ optional ReLU) on the quantized GEMM.
    Conv {
        /// The quantized convolution.
        conv: QConv2d,
        /// Apply a float ReLU to the output (SFU).
        relu: bool,
        /// Input value index.
        src: usize,
    },
    /// 2-D conv-caps (conv on codes, optional float squash).
    CapsConv {
        /// The quantized conv-caps layer.
        layer: QConvCaps2d,
        /// Input value index.
        src: usize,
    },
    /// Routing 3-D conv-caps (votes + routing MACs on codes).
    Caps3d {
        /// The quantized routing conv-caps layer.
        layer: QConvCaps3d,
        /// Input value index.
        src: usize,
    },
    /// Residual join: elementwise add then per-capsule squash (float).
    AddSquash {
        /// Left operand value index.
        a: usize,
        /// Right operand value index.
        b: usize,
    },
    /// `[C, D, H, W]` capsules → `[C·H·W, D]` units (pure reorder).
    ToUnits {
        /// Input value index.
        src: usize,
    },
    /// Concatenate two unit tensors along the capsule axis.
    ConcatUnits {
        /// First operand value index.
        a: usize,
        /// Second operand value index.
        b: usize,
    },
    /// Fully-connected class capsules (votes + routing MACs on codes).
    ClassCaps {
        /// The quantized class-capsule layer.
        layer: QClassCaps,
        /// Input value index.
        src: usize,
    },
}

/// A trained capsule model lowered onto the quantized datapath: same
/// weights, but every MAC runs on 8-bit codes through a pluggable
/// multiplier model. Architecture-generic — built from any
/// [`CapsModel`] with a registered lowering plus calibrated
/// [`QuantRanges`].
#[derive(Debug, Clone)]
pub struct QModel {
    arch: String,
    input_shape: [usize; 3],
    num_classes: usize,
    steps: Vec<QStep>,
}

impl QModel {
    /// Lowers a trained model onto the quantized datapath with
    /// pre-computed calibration ranges.
    ///
    /// Dispatches on the concrete architecture behind the trait object
    /// ([`CapsModel::as_any`]); each registered architecture only
    /// contributes a step-graph builder — the per-layer lowering and
    /// the execution are shared.
    ///
    /// # Errors
    ///
    /// [`LowerError::MissingRange`] when a layer's site was never
    /// calibrated, [`LowerError::Quantization`] on non-finite weights,
    /// or [`LowerError::UnsupportedArchitecture`] for a model without
    /// a registered lowering.
    pub fn lower(model: &dyn CapsModel, ranges: &QuantRanges) -> Result<Self, LowerError> {
        if let Some(m) = model.as_any().downcast_ref::<CapsNet>() {
            Self::lower_capsnet(m, ranges)
        } else if let Some(m) = model.as_any().downcast_ref::<DeepCaps>() {
            Self::lower_deepcaps(m, ranges)
        } else {
            Err(LowerError::UnsupportedArchitecture {
                model: model.name(),
            })
        }
    }

    /// Calibrates on `images` and lowers the model in one step.
    ///
    /// # Errors
    ///
    /// As [`QModel::lower`], plus [`LowerError::EmptyCalibration`]
    /// when `images` is empty.
    pub fn calibrated<'a>(
        model: &mut dyn CapsModel,
        images: impl IntoIterator<Item = &'a Tensor>,
    ) -> Result<Self, LowerError> {
        let ranges = calibrate_ranges(model, images)?;
        Self::lower(&*model, &ranges)
    }

    fn lower_capsnet(model: &CapsNet, ranges: &QuantRanges) -> Result<Self, LowerError> {
        let cfg = model.config();
        let steps = vec![
            QStep::Conv {
                conv: model.conv1().lower_to_quant("Conv1", ranges)?,
                relu: true,
                src: 0,
            },
            QStep::CapsConv {
                layer: model
                    .primary()
                    .lower_to_quant(model.primary().name(), ranges)?,
                src: 1,
            },
            QStep::ToUnits { src: 2 },
            QStep::ClassCaps {
                layer: model
                    .class_caps()
                    .lower_to_quant(model.class_caps().name(), ranges)?,
                src: 3,
            },
        ];
        Ok(QModel {
            arch: model.name(),
            input_shape: [cfg.input_channels, cfg.input_hw, cfg.input_hw],
            num_classes: cfg.class_caps,
            steps,
        })
    }

    fn lower_deepcaps(model: &DeepCaps, ranges: &QuantRanges) -> Result<Self, LowerError> {
        let cfg = model.config();
        let mut steps = Vec::new();
        // Step i produces value i + 1; value 0 is the network input.
        let push = |steps: &mut Vec<QStep>, step: QStep| -> usize {
            steps.push(step);
            steps.len()
        };
        let caps_conv = |layer: &redcane_capsnet::layers::ConvCaps2d,
                         src: usize|
         -> Result<QStep, LowerError> {
            Ok(QStep::CapsConv {
                layer: layer.lower_to_quant(layer.name(), ranges)?,
                src,
            })
        };
        let mut t = push(&mut steps, caps_conv(model.stem(), 0)?);
        for cell in model.cells() {
            let a = push(&mut steps, caps_conv(cell.lead(), t)?);
            let b = push(&mut steps, caps_conv(cell.mid(), a)?);
            let main = push(&mut steps, caps_conv(cell.tail(), b)?);
            let skip = push(&mut steps, caps_conv(cell.skip(), a)?);
            t = push(&mut steps, QStep::AddSquash { a: main, b: skip });
        }
        let a = push(&mut steps, caps_conv(model.last_lead(), t)?);
        let b = push(&mut steps, caps_conv(model.last_mid(), a)?);
        let c3 = push(
            &mut steps,
            QStep::Caps3d {
                layer: model
                    .caps3d()
                    .lower_to_quant(model.caps3d().name(), ranges)?,
                src: b,
            },
        );
        let skip = push(&mut steps, caps_conv(model.last_skip(), a)?);
        let u3 = push(&mut steps, QStep::ToUnits { src: c3 });
        let us = push(&mut steps, QStep::ToUnits { src: skip });
        let u = push(&mut steps, QStep::ConcatUnits { a: u3, b: us });
        push(
            &mut steps,
            QStep::ClassCaps {
                layer: model
                    .class_caps()
                    .lower_to_quant(model.class_caps().name(), ranges)?,
                src: u,
            },
        );
        Ok(QModel {
            arch: model.name(),
            input_shape: [cfg.input_channels, cfg.input_hw, cfg.input_hw],
            num_classes: cfg.class_caps,
            steps,
        })
    }

    /// The lowered model's display name.
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The dataflow program (introspection / cost accounting).
    pub fn steps(&self) -> &[QStep] {
        &self.steps
    }

    /// A deterministic sample of at most `max_len` quantized weight
    /// codes across every lowered layer, in program order — the
    /// empirical **weight-operand pool** for component
    /// characterization.
    pub fn weight_code_sample(&self, max_len: usize) -> Vec<u8> {
        let mut all: Vec<u8> = Vec::new();
        for step in &self.steps {
            match step {
                QStep::Conv { conv, .. } => all.extend_from_slice(conv.weight_codes()),
                QStep::CapsConv { layer, .. } => {
                    all.extend_from_slice(layer.conv().weight_codes());
                }
                QStep::Caps3d { layer, .. } => {
                    for conv in layer.convs() {
                        all.extend_from_slice(conv.weight_codes());
                    }
                }
                QStep::ClassCaps { layer, .. } => {
                    all.extend_from_slice(layer.votes().weight_codes());
                }
                QStep::AddSquash { .. } | QStep::ToUnits { .. } | QStep::ConcatUnits { .. } => {}
            }
        }
        if max_len == 0 {
            return Vec::new();
        }
        if all.len() <= max_len {
            return all;
        }
        let stride = all.len().div_ceil(max_len);
        all.into_iter().step_by(stride).collect()
    }

    /// Full quantized inference: returns the class-capsule lengths
    /// (`[num_classes]`), every MAC multiplied through `lut`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(x.shape(), self.input_shape, "QModel input");
        let mut vals: Vec<Tensor> = Vec::with_capacity(self.steps.len() + 1);
        vals.push(x.clone());
        for step in &self.steps {
            let y = match step {
                QStep::Conv { conv, relu, src } => {
                    let mut y = conv.forward(&vals[*src], lut);
                    if *relu {
                        for v in y.data_mut() {
                            *v = v.max(0.0);
                        }
                    }
                    y
                }
                QStep::CapsConv { layer, src } => layer.forward(&vals[*src], lut),
                QStep::Caps3d { layer, src } => layer.forward(&vals[*src], lut),
                QStep::AddSquash { a, b } => {
                    let sum = vals[*a].add(&vals[*b]).expect("residual shapes match");
                    let (c, d, h, w) = (
                        sum.shape()[0],
                        sum.shape()[1],
                        sum.shape()[2],
                        sum.shape()[3],
                    );
                    let s3 = sum.into_reshaped(&[c, d, h * w]).expect("caps fold");
                    squash_caps(&s3)
                        .into_reshaped(&[c, d, h, w])
                        .expect("spatial unfold")
                }
                QStep::ToUnits { src } => caps_to_units(&vals[*src]),
                QStep::ConcatUnits { a, b } => {
                    Tensor::concat(&[&vals[*a], &vals[*b]], 0).expect("unit concat")
                }
                QStep::ClassCaps { layer, src } => layer.forward(&vals[*src], lut),
            };
            vals.push(y);
        }
        // The last step produces the class capsules [J, D]; their
        // lengths are the network output, computed exactly as the
        // float models compute them.
        let v = vals.last().expect("at least one step");
        let (j, d) = (v.shape()[0], v.shape()[1]);
        let v3 = v.reshape(&[j, d, 1]).expect("caps form");
        caps_lengths(&v3).into_reshaped(&[j]).expect("drop P")
    }

    /// Argmax class prediction under `lut`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn predict(&self, x: &Tensor, lut: &MulLut) -> usize {
        self.forward(x, lut).argmax().expect("non-empty lengths")
    }
}

/// The pre-generic name of the quantized execution type.
#[deprecated(note = "use the architecture-generic `QModel` \
                     (`QModel::lower` / `QModel::calibrated`)")]
pub type QCapsNet = QModel;

/// Classification accuracy of the quantized datapath over a dataset,
/// every multiply served by `lut`. Serial and deterministic.
pub fn evaluate_quantized(model: &QModel, data: &Dataset, lut: &MulLut) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .samples
        .iter()
        .filter(|s| model.predict(&s.image, lut) == s.label)
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{CapsNetConfig, DeepCapsConfig, NoInjection};
    use redcane_tensor::TensorRng;

    #[test]
    fn qmodel_capsnet_with_exact_lut_tracks_float_lengths() {
        let mut rng = TensorRng::from_seed(504);
        let cfg = CapsNetConfig::small(1, 16);
        let mut model = CapsNet::new(&cfg, &mut rng);
        let images: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        assert_eq!(q.num_classes(), 10);
        assert_eq!(q.steps().len(), 4);
        assert!(q.arch().starts_with("CapsNet"));
        let lut = MulLut::exact();
        for image in &images {
            let want = model.forward(image, &mut NoInjection);
            let got = q.forward(image, &lut);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!((a - b).abs() < 0.15, "length {a} vs quantized {b}");
            }
        }
    }

    #[test]
    fn qmodel_deepcaps_with_exact_lut_tracks_float_lengths() {
        let mut rng = TensorRng::from_seed(511);
        let cfg = DeepCapsConfig::small(1, 16);
        let mut model = DeepCaps::new(&cfg, &mut rng);
        let images: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        assert_eq!(q.num_classes(), 10);
        assert!(q.arch().starts_with("DeepCaps"));
        // Stem + 3 cells × 5 + lead/mid/caps3d/skip + 2 units + concat
        // + class caps = 24 steps covering all 17 quantized layers.
        assert_eq!(q.steps().len(), 24);
        let lut = MulLut::exact();
        for image in &images {
            let want = model.forward(image, &mut NoInjection);
            let got = q.forward(image, &lut);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!((a - b).abs() < 0.2, "length {a} vs quantized {b}");
            }
        }
    }

    #[test]
    fn quantized_forward_is_deterministic() {
        let mut rng = TensorRng::from_seed(505);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let image = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let q = QModel::calibrated(&mut model, [&image]).unwrap();
        let lut = MulLut::exact();
        assert_eq!(q.forward(&image, &lut), q.forward(&image, &lut));
    }

    #[test]
    fn calibration_needs_at_least_one_image() {
        let mut rng = TensorRng::from_seed(506);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let err = QModel::calibrated(&mut model, std::iter::empty()).unwrap_err();
        assert_eq!(err, LowerError::EmptyCalibration);
    }

    #[test]
    fn lowering_without_ranges_names_the_missing_site() {
        let mut rng = TensorRng::from_seed(512);
        let model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let err = QModel::lower(&model, &QuantRanges::new()).unwrap_err();
        assert!(
            matches!(err, LowerError::MissingRange { ref layer, .. } if layer == "Conv1"),
            "{err}"
        );
        let mut rng = TensorRng::from_seed(513);
        let deep = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let err = QModel::lower(&deep, &QuantRanges::new()).unwrap_err();
        assert!(
            matches!(err, LowerError::MissingRange { ref layer, .. } if layer == "Conv2D"),
            "{err}"
        );
    }

    #[test]
    fn weight_code_sample_is_bounded_and_deterministic() {
        let mut rng = TensorRng::from_seed(514);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let image = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let q = QModel::calibrated(&mut model, [&image]).unwrap();
        let full = q.weight_code_sample(usize::MAX);
        assert!(!full.is_empty());
        let sample = q.weight_code_sample(100);
        assert!(sample.len() <= 100 && !sample.is_empty());
        assert_eq!(sample, q.weight_code_sample(100));
        assert!(q.weight_code_sample(0).is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn qcapsnet_alias_still_names_the_generic_model() {
        let mut rng = TensorRng::from_seed(515);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let image = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let q: QCapsNet = QModel::calibrated(&mut model, [&image]).unwrap();
        assert_eq!(q.num_classes(), 10);
    }
}
