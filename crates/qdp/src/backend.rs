//! The measured half of the paper's validation loop:
//! [`QuantMeasured`], an [`AccuracyBackend`] that scores a datapath
//! assignment by *running* it — every MAC multiply through the
//! assigned components' behavioral models on the 8-bit integer
//! kernels — instead of forecasting it from noise statistics.
//!
//! Construction does the expensive, assignment-independent work once:
//! calibrate, lower the model into a [`QModel`] program, and tabulate
//! the component LUTs. `evaluate` then just resolves an assignment
//! against the cached tables and runs batched quantized inference, so
//! sweeping many assignments (uniform per-component rows, the Step-6
//! heterogeneous design) over one trained model shares all of the
//! lowering.

use redcane::datapath::{AccuracyBackend, BackendError, DatapathAssignment, SiteKey};
use redcane::faults::FaultPlan;
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::CapsModel;
use redcane_datasets::Dataset;
use redcane_tensor::Tensor;

use crate::lower::{calibrate_ranges, LowerError, QuantRanges};
use crate::qmodel::{evaluate_quantized, evaluate_resolved, QModel};

/// Ground-truth accuracy backend: lower once, then run any
/// [`DatapathAssignment`] on the quantized integer datapath.
#[derive(Debug, Clone)]
pub struct QuantMeasured {
    qmodel: QModel,
    luts: LutCache,
}

impl QuantMeasured {
    /// Wraps an already-lowered program and a LUT cache.
    pub fn new(qmodel: QModel, luts: LutCache) -> Self {
        QuantMeasured { qmodel, luts }
    }

    /// Lowers `model` with pre-computed calibration ranges and
    /// tabulates every component of `library` (one 64 KiB table each),
    /// so any assignment over that library resolves.
    ///
    /// # Errors
    ///
    /// As [`QModel::lower`].
    pub fn from_ranges(
        model: &dyn CapsModel,
        ranges: &QuantRanges,
        library: &MultiplierLibrary,
    ) -> Result<Self, LowerError> {
        Ok(QuantMeasured {
            qmodel: QModel::lower(model, ranges)?,
            luts: LutCache::tabulate_all(library),
        })
    }

    /// Calibrates on `images`, lowers, and tabulates `library` in one
    /// step.
    ///
    /// # Errors
    ///
    /// As [`QModel::calibrated`].
    pub fn calibrated<'a>(
        model: &mut dyn CapsModel,
        images: impl IntoIterator<Item = &'a Tensor>,
        library: &MultiplierLibrary,
    ) -> Result<Self, LowerError> {
        let ranges = calibrate_ranges(model, images)?;
        Self::from_ranges(&*model, &ranges, library)
    }

    /// The lowered quantized program.
    pub fn qmodel(&self) -> &QModel {
        &self.qmodel
    }

    /// The shared component tables.
    pub fn luts(&self) -> &LutCache {
        &self.luts
    }
}

impl AccuracyBackend for QuantMeasured {
    fn name(&self) -> &'static str {
        "quant-measured"
    }

    fn evaluate<M: CapsModel + Clone + Send + Sync>(
        &self,
        model: &M,
        data: &Dataset,
        assignment: &DatapathAssignment,
    ) -> Result<f64, BackendError> {
        // The program was lowered from a specific trained model; the
        // trait hands the model back in, so guard against scoring a
        // different network with another network's weights. The guard
        // compares display names — architecture + config, not weight
        // identity — so a same-config model with different weights
        // would pass: keep the backend paired with the exact model it
        // was calibrated from.
        let got = model.name();
        if got != self.qmodel.arch() {
            return Err(BackendError::ModelMismatch {
                expected: self.qmodel.arch().to_string(),
                got,
            });
        }
        evaluate_quantized(&self.qmodel, data, assignment, &self.luts)
    }
}

/// Accuracy backend for the discrete error-model family: runs the
/// quantized datapath **under a [`FaultPlan`]** — bit flips, stuck-at
/// lanes and dead outputs injected at the assignment's own site keys —
/// and measures what the faulted hardware actually scores.
///
/// Construction pre-applies the plan's weight-code faults to a copy of
/// the lowered program ([`QModel::with_fault_plan`]); all other fault
/// targets are realized when an assignment is resolved. With
/// `fail_soft`, sites the plan leaves dead fall back to the exact
/// multiplier (and [`FaultMeasured::downgraded_sites`] reports which);
/// otherwise evaluation refuses with [`BackendError::DeadSite`].
#[derive(Debug, Clone)]
pub struct FaultMeasured {
    qmodel: QModel,
    luts: LutCache,
    plan: FaultPlan,
    fail_soft: bool,
}

impl FaultMeasured {
    /// Layers `plan` over an already-lowered program and LUT cache.
    pub fn new(qmodel: &QModel, luts: LutCache, plan: FaultPlan, fail_soft: bool) -> Self {
        FaultMeasured {
            qmodel: qmodel.with_fault_plan(&plan),
            luts,
            plan,
            fail_soft,
        }
    }

    /// Layers `plan` over an existing measured backend (shares nothing;
    /// the program copy carries the plan's weight faults).
    pub fn over(backend: &QuantMeasured, plan: FaultPlan, fail_soft: bool) -> Self {
        Self::new(backend.qmodel(), backend.luts().clone(), plan, fail_soft)
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether dead sites downgrade instead of erroring.
    pub fn fail_soft(&self) -> bool {
        self.fail_soft
    }

    /// Full quantized inference under the fault plan: the
    /// class-capsule lengths for one input, every site running its
    /// faulted execution state.
    ///
    /// # Errors
    ///
    /// As [`FaultMeasured::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(
        &self,
        x: &Tensor,
        assignment: &DatapathAssignment,
    ) -> Result<Tensor, BackendError> {
        let resolved =
            self.qmodel
                .resolve_with(assignment, &self.luts, Some(&self.plan), self.fail_soft)?;
        Ok(self
            .qmodel
            .forward_batch_resolved(&[x], &resolved.execs)
            .pop()
            // lint: allow(panic) — batch API contract: the executor returns one output per input sample
            .expect("one sample in, one out"))
    }

    /// The sites `assignment` would downgrade to the exact multiplier
    /// under this plan (empty unless `fail_soft` and the plan kills a
    /// site). Resolves without running any inference.
    ///
    /// # Errors
    ///
    /// As [`FaultMeasured::evaluate`]: unassigned sites, unknown
    /// components, or — without `fail_soft` — a dead site.
    pub fn downgraded_sites(
        &self,
        assignment: &DatapathAssignment,
    ) -> Result<Vec<SiteKey>, BackendError> {
        Ok(self
            .qmodel
            .resolve_with(assignment, &self.luts, Some(&self.plan), self.fail_soft)?
            .downgraded)
    }
}

impl AccuracyBackend for FaultMeasured {
    fn name(&self) -> &'static str {
        "fault-measured"
    }

    fn evaluate<M: CapsModel + Clone + Send + Sync>(
        &self,
        model: &M,
        data: &Dataset,
        assignment: &DatapathAssignment,
    ) -> Result<f64, BackendError> {
        let got = model.name();
        if got != self.qmodel.arch() {
            return Err(BackendError::ModelMismatch {
                expected: self.qmodel.arch().to_string(),
                got,
            });
        }
        let resolved =
            self.qmodel
                .resolve_with(assignment, &self.luts, Some(&self.plan), self.fail_soft)?;
        Ok(evaluate_resolved(&self.qmodel, data, &resolved.execs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{evaluate_clean, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig};
    use redcane_datasets::{generate, Benchmark, GenerateConfig};
    use redcane_tensor::TensorRng;

    #[test]
    fn measured_backend_scores_uniform_and_rejects_wrong_model() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 8,
                test: 10,
                seed: 31,
            },
        );
        let mut rng = TensorRng::from_seed(910);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let library = MultiplierLibrary::evo_approx_like();
        let backend = QuantMeasured::calibrated(
            &mut model,
            pair.train.samples.iter().map(|s| &s.image),
            &library,
        )
        .unwrap();
        assert_eq!(backend.name(), "quant-measured");
        assert_eq!(backend.luts().len(), library.len());

        let exact = DatapathAssignment::uniform("mul8u_1JFF");
        let acc = backend.evaluate(&model, &pair.test, &exact).unwrap();
        // Untrained model, but the measured accuracy is a valid rate
        // and deterministic.
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(acc, backend.evaluate(&model, &pair.test, &exact).unwrap());
        // The exact uniform datapath tracks the float model closely.
        let float_acc = evaluate_clean(&model, &pair.test);
        assert!((acc - float_acc).abs() <= 0.2, "{acc} vs float {float_acc}");

        // A different architecture is rejected, not silently mis-scored.
        let mut rng = TensorRng::from_seed(911);
        let other = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let err = backend.evaluate(&other, &pair.test, &exact).unwrap_err();
        assert!(matches!(err, BackendError::ModelMismatch { .. }), "{err}");
    }

    #[test]
    fn fault_backend_identity_plan_matches_the_clean_measurement() {
        use redcane_capsnet::inject::OpKind;

        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 8,
                test: 10,
                seed: 33,
            },
        );
        let mut rng = TensorRng::from_seed(912);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let library = MultiplierLibrary::evo_approx_like();
        let backend = QuantMeasured::calibrated(
            &mut model,
            pair.train.samples.iter().map(|s| &s.image),
            &library,
        )
        .unwrap();
        let assignment = DatapathAssignment::uniform("mul8u_1JFF");
        let clean = backend.evaluate(&model, &pair.test, &assignment).unwrap();

        let faulty = FaultMeasured::over(&backend, FaultPlan::identity(9), false);
        assert_eq!(faulty.name(), "fault-measured");
        assert_eq!(
            faulty.evaluate(&model, &pair.test, &assignment).unwrap(),
            clean,
            "identity plan must reproduce the fault-free accuracy exactly"
        );
        assert!(faulty.downgraded_sites(&assignment).unwrap().is_empty());

        // A dead ClassCaps vote site: strict mode refuses, fail-soft
        // substitutes the exact multiplier and names the site.
        use redcane::faults::{FaultModel, FaultTarget, SiteFault};
        let dead = FaultPlan::identity(9).with(
            "ClassCaps",
            OpKind::MacOutput,
            false,
            SiteFault::new(FaultTarget::Multiplier, FaultModel::DeadOutput),
        );
        let strict = FaultMeasured::over(&backend, dead.clone(), false);
        let err = strict
            .evaluate(&model, &pair.test, &assignment)
            .unwrap_err();
        assert!(matches!(err, BackendError::DeadSite { ref layer, .. } if layer == "ClassCaps"));
        let soft = FaultMeasured::over(&backend, dead, true);
        assert!(soft.fail_soft());
        let down = soft.downgraded_sites(&assignment).unwrap();
        assert_eq!(
            down,
            vec![("ClassCaps".to_string(), OpKind::MacOutput, false)]
        );
        let acc = soft.evaluate(&model, &pair.test, &assignment).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn fault_backend_faults_actually_change_predictions() {
        use redcane::faults::{FaultModel, FaultTarget, SiteFault};
        use redcane_capsnet::inject::OpKind;

        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 8,
                test: 12,
                seed: 35,
            },
        );
        let mut rng = TensorRng::from_seed(913);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let library = MultiplierLibrary::evo_approx_like();
        let backend = QuantMeasured::calibrated(
            &mut model,
            pair.train.samples.iter().map(|s| &s.image),
            &library,
        )
        .unwrap();
        let assignment = DatapathAssignment::uniform("mul8u_1JFF");
        let clean = backend.evaluate(&model, &pair.test, &assignment).unwrap();
        // A severe stuck-high lane on Conv1's multiplier outputs.
        let plan = FaultPlan::identity(4).with(
            "Conv1",
            OpKind::MacOutput,
            false,
            SiteFault::new(
                FaultTarget::Multiplier,
                FaultModel::StuckAt {
                    lanes: 0x7000,
                    value: true,
                },
            ),
        );
        let faulty = FaultMeasured::over(&backend, plan, false);
        let hurt = faulty.evaluate(&model, &pair.test, &assignment).unwrap();
        assert!((0.0..=1.0).contains(&hurt));
        // Deterministic on repeat.
        assert_eq!(
            hurt,
            faulty.evaluate(&model, &pair.test, &assignment).unwrap()
        );
        // The faulted accuracy is a *different measurement* unless the
        // network is uncommonly robust; either way the backend ran the
        // faulted tables (checked via downgrade-free resolution).
        assert!(faulty.downgraded_sites(&assignment).unwrap().is_empty());
        let _ = clean;
    }
}
