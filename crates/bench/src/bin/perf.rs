//! Hot-path kernel benchmark and perf-regression tripwire.
//!
//! Times the blocked GEMM, conv and routing kernels against their naive
//! reference twins, one training epoch, and one full seeded pipeline
//! run, then writes the results to `BENCH_perf.json` (and echoes the
//! JSON line to stdout). Usage:
//!
//! ```text
//! perf [--quick] [--out PATH] [--budget-s SECONDS] [--threads N]
//!      [--artifacts DIR] [--no-cache] [--profile PATH]
//!      [--profile-counters PATH] [--profile-folded PATH]
//! ```
//!
//! With `--budget-s`, the binary exits non-zero if the seeded pipeline
//! exceeds the given wall-clock budget — CI uses this as a generous
//! regression tripwire. The embedded pipeline run goes through the
//! trained-artifact store (default `.redcane-artifacts`, or
//! `REDCANE_ARTIFACTS`); `--no-cache` forces it to train.

use std::process::ExitCode;

use redcane_artifacts::ArtifactStore;
use redcane_bench::cli::{next_parsed, next_value};
use redcane_bench::perf::{perf_to_json, run_perf};
use redcane_bench::profile::ProfileArgs;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = "BENCH_perf.json".to_string();
    let mut budget_s: Option<f64> = None;
    let mut artifacts_flag: Option<String> = None;
    let mut no_cache = false;
    let mut profile = ProfileArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let parsed: Result<(), String> = match flag.as_str() {
            "--quick" => {
                quick = true;
                Ok(())
            }
            "--out" => next_value(&mut args, "--out").map(|v| out_path = v),
            "--budget-s" => next_parsed(&mut args, "--budget-s").map(|v| budget_s = Some(v)),
            "--artifacts" => next_value(&mut args, "--artifacts").map(|v| artifacts_flag = Some(v)),
            "--no-cache" => {
                no_cache = true;
                Ok(())
            }
            "--threads" => next_parsed(&mut args, "--threads")
                .map(|v: usize| redcane_tensor::par::set_threads(v)),
            "--help" | "-h" => {
                eprintln!(
                    "perf: hot-path kernel benchmark\n\
                     flags: --quick, --out PATH, --budget-s SECONDS, --threads N, \
                     --artifacts DIR, --no-cache, --profile PATH, \
                     --profile-counters PATH, --profile-folded PATH"
                );
                return ExitCode::SUCCESS;
            }
            other => profile
                .match_flag(other, &mut args)
                .unwrap_or_else(|| Err(format!("unknown flag '{other}'"))),
        };
        if let Err(msg) = parsed {
            eprintln!("perf: {msg}");
            return ExitCode::FAILURE;
        }
    }
    profile.enable_if_requested();
    let report = run_perf(
        quick,
        ArtifactStore::resolve_dir(artifacts_flag.as_deref(), no_cache),
    );
    for probe in &report.probes {
        match probe.speedup_vs_naive() {
            Some(speedup) => eprintln!(
                "[perf] {:<32} {:>12.0} ns/op  ({speedup:.2}x vs naive)",
                probe.name, probe.ns_per_op
            ),
            None => eprintln!("[perf] {:<32} {:>12.0} ns/op", probe.name, probe.ns_per_op),
        }
    }
    eprintln!(
        "[perf] pipeline total {:.2}s (train {:.2}s) on {} thread(s)",
        report.pipeline_total_s, report.pipeline_train_s, report.threads
    );
    let line = perf_to_json(&report).dump();
    if let Err(e) = std::fs::write(&out_path, format!("{line}\n")) {
        eprintln!("perf: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{line}");
    if let Err(msg) = profile.write("perf", Vec::new(), true) {
        eprintln!("perf: {msg}");
        return ExitCode::FAILURE;
    }
    if let Some(budget) = budget_s {
        if report.pipeline_total_s > budget {
            eprintln!(
                "perf: pipeline took {:.2}s, exceeding the {budget:.2}s budget",
                report.pipeline_total_s
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
