//! The end-to-end ReD-CaNe driver (Fig. 7 of the paper): Steps 1–6 wired
//! together.

use redcane_axmul::error_stats::InputDistribution;
use redcane_axmul::library::MultiplierLibrary;
use redcane_capsnet::CapsModel;
use redcane_datasets::Dataset;
use serde::{Deserialize, Serialize};

use crate::analysis::{group_sweep, layer_sweep, SweepConfig};
use crate::datapath::{AccuracyBackend, NoisePredicted};
use crate::groups::extract_groups;
use crate::selection::{
    inventory_layers, mark_groups, mark_layers, select_components, SelectionConfig, ToleranceTable,
};

/// Configuration of a full methodology run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MethodologyConfig {
    /// Sweep parameters for Steps 2 and 4.
    pub sweep: SweepConfig,
    /// Marking/selection thresholds for Steps 3, 5 and 6.
    pub selection: SelectionConfig,
    /// Input distribution for component characterization (Step 6);
    /// `None` uses uniform operands (the paper's "Modeled" column).
    pub input_distribution: Option<InputDistribution>,
}

pub use crate::report::RedCaNeReport;

/// The methodology driver.
#[derive(Debug, Clone, Default)]
pub struct RedCaNe {
    cfg: MethodologyConfig,
    library: MultiplierLibrary,
}

impl RedCaNe {
    /// Creates a driver with the standard 35-component library.
    pub fn new(cfg: MethodologyConfig) -> Self {
        RedCaNe {
            cfg,
            library: MultiplierLibrary::evo_approx_like(),
        }
    }

    /// Creates a driver with a custom component library.
    pub fn with_library(cfg: MethodologyConfig, library: MultiplierLibrary) -> Self {
        RedCaNe { cfg, library }
    }

    /// The configured component library.
    pub fn library(&self) -> &MultiplierLibrary {
        &self.library
    }

    /// Runs Steps 1–6 on a trained model and a test set, producing the
    /// full report. The Step-6 design is validated on the
    /// noise-predicted backend only; use
    /// [`RedCaNe::run_with_measured`] to additionally re-score the
    /// heterogeneous design on a ground-truth datapath.
    ///
    /// # Panics
    ///
    /// Panics on an empty test set.
    pub fn run<M: CapsModel + Clone + Send + Sync>(
        &self,
        model: &M,
        test: &Dataset,
    ) -> RedCaNeReport {
        self.run_inner(model, test, None::<&NoisePredicted>)
    }

    /// As [`RedCaNe::run`], but Step 6's winning design is also
    /// re-scored on `measured` — typically `redcane_qdp`'s
    /// `QuantMeasured`, the real 8-bit integer datapath — filling
    /// `design.measured_accuracy` so the report pairs the noise
    /// forecast with its ground truth.
    ///
    /// # Panics
    ///
    /// Panics on an empty test set, or if `measured` cannot evaluate
    /// the selected design (e.g. it was calibrated for a different
    /// model).
    pub fn run_with_measured<M: CapsModel + Clone + Send + Sync, B: AccuracyBackend>(
        &self,
        model: &M,
        test: &Dataset,
        measured: &B,
    ) -> RedCaNeReport {
        self.run_inner(model, test, Some(measured))
    }

    fn run_inner<M: CapsModel + Clone + Send + Sync, B: AccuracyBackend>(
        &self,
        model: &M,
        test: &Dataset,
        measured: Option<&B>,
    ) -> RedCaNeReport {
        assert!(!test.is_empty(), "methodology needs a non-empty test set");
        // Step 1: group extraction (one recorded inference).
        let mut probe = model.clone();
        let inventory = extract_groups(&mut probe, &test.samples[0].image);
        // Step 2: group-wise resilience analysis.
        let sweep = group_sweep(model, test, &self.cfg.sweep);
        // Step 3: mark resilient groups.
        let marking = mark_groups(&sweep, &self.cfg.selection);
        // Step 4: layer-wise analysis for non-resilient groups only
        // (the paper's exploration-time optimization).
        let mut layer_sweeps = Vec::new();
        let mut layer_markings = Vec::new();
        for group in marking.non_resilient() {
            let layers = inventory.group_layers(group);
            let ls = layer_sweep(model, test, group, &layers, &self.cfg.sweep);
            // Step 5: mark resilient layers.
            layer_markings.push(mark_layers(&ls, &self.cfg.selection));
            layer_sweeps.push(ls);
        }
        // Step 6: component selection + validation.
        let table = ToleranceTable::build(&inventory_layers(&inventory), &marking, &layer_markings);
        let dist = self
            .cfg
            .input_distribution
            .clone()
            .unwrap_or(InputDistribution::Uniform);
        let design = select_components(
            model,
            test,
            &table,
            &self.library,
            &dist,
            &self.cfg.selection,
            measured,
        );
        RedCaNeReport {
            inventory,
            group_sweep: sweep,
            group_marking: marking,
            layer_sweeps,
            layer_markings,
            design,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::Group;
    use redcane_capsnet::{train, CapsNet, CapsNetConfig, TrainConfig};
    use redcane_datasets::{generate, Benchmark, GenerateConfig};
    use redcane_tensor::TensorRng;

    #[test]
    fn full_pipeline_produces_consistent_report() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 150,
                test: 50,
                seed: 21,
            },
        );
        let mut rng = TensorRng::from_seed(230);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        train(
            &mut model,
            &pair.train,
            &TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 2e-3,
                seed: 2,
                verbose: false,
            },
        );
        let cfg = MethodologyConfig {
            sweep: SweepConfig {
                nm_values: vec![0.5, 0.05, 0.005],
                max_test_samples: Some(30),
                threads: 2,
                ..Default::default()
            },
            selection: SelectionConfig {
                characterization_samples: 3000,
                ..Default::default()
            },
            input_distribution: None,
        };
        let report = RedCaNe::new(cfg).run(&model, &pair.test);
        // Step 1 found all four groups.
        assert_eq!(report.inventory.sites.len(), 4);
        // Step 2 swept all four groups.
        assert_eq!(report.group_sweep.curves.len(), 4);
        // Steps 4/5 ran exactly for the non-resilient groups.
        assert_eq!(
            report.layer_sweeps.len(),
            report.group_marking.non_resilient().len()
        );
        // Step 6 assigned a component to every (layer, group) pair of the
        // inventory.
        let expected: usize = Group::all()
            .into_iter()
            .map(|g| report.inventory.group_layers(g).len())
            .sum();
        assert_eq!(report.design.assignments.len(), expected);
        // The summary mentions the model.
        assert!(report.summary().contains("CapsNet"));
        // Validation happened.
        assert!(report.design.baseline_accuracy > 0.0);
    }
}
