//! Quantized layer forward paths: `Dense`, `Conv2d`, 2-D/3-D capsule
//! convolutions, capsule votes and the routing MACs.
//!
//! Every multiply in these paths goes through a [`MulLut`] — i.e.
//! through a behavioral model of a real 8-bit (possibly approximate)
//! multiplier — while everything an accelerator computes exactly
//! (code sums for the zero-point correction, bias adds, the squash /
//! softmax special-function units) stays in float. Activations are
//! requantized between layers with ranges fixed at calibration time,
//! so the datapath is input-independent like the hardware it models.
//!
//! Each `Q*` type is the lowering target of its float counterpart via
//! [`LowerToQuant`](crate::LowerToQuant); the [`QModel`](crate::QModel)
//! program composes them into end-to-end quantized inference for any
//! architecture.

use redcane_capsnet::routing::softmax_over_j;
use redcane_capsnet::squash::{squash_caps, squash_slices};
use redcane_fxp::{FxpError, QuantParams};
use redcane_nn::layers::{Conv2d, Dense};
use redcane_tensor::ops::conv::im2col_slice;
use redcane_tensor::ops::Conv2dSpec;
use redcane_tensor::Tensor;

use redcane_capsnet::layers::{ClassCaps, ConvCaps2d, ConvCaps3d};

use redcane::faults::FaultModel;
use redcane_axmul::MulLut;

use crate::faults::MacView;
use crate::kernels::{affine_dequant, col_sums, qgemm_nn, row_sums};
use crate::qtensor::{fault_codes, quantize_codes};

// ------------------------------------------------------------- QDense

/// A [`Dense`] layer running its MAC through the quantized datapath.
#[derive(Debug, Clone)]
pub struct QDense {
    qweight: Vec<u8>,
    wparams: QuantParams,
    wrowsums: Vec<u32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    in_params: QuantParams,
}

impl QDense {
    /// Quantizes a trained dense layer's weights (per-tensor range) and
    /// fixes the input quantization to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_dense(layer: &Dense, in_params: QuantParams) -> Result<Self, FxpError> {
        let wparams = QuantParams::calibrate(layer.weight(), 8)?;
        let qweight = quantize_codes(layer.weight().data(), wparams);
        let wrowsums = row_sums(&qweight, layer.out_dim(), layer.in_dim());
        Ok(QDense {
            qweight,
            wparams,
            wrowsums,
            bias: layer.bias().data().to_vec(),
            in_dim: layer.in_dim(),
            out_dim: layer.out_dim(),
            in_params,
        })
    }

    /// The quantized weight codes (empirical operand pools).
    pub fn weight_codes(&self) -> &[u8] {
        &self.qweight
    }

    /// `y = W·x + b` with the multiplies served by `lut`.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not flatten to `in_dim` elements.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "QDense input size");
        let qx = quantize_codes(x.data(), self.in_params);
        let mut acc = vec![0u32; self.out_dim];
        qgemm_nn(
            &self.qweight,
            &qx,
            &mut acc,
            self.out_dim,
            self.in_dim,
            1,
            lut,
        );
        let cs = col_sums(&qx, self.in_dim, 1);
        let mut out = vec![0.0f32; self.out_dim];
        affine_dequant(
            &acc,
            &self.wrowsums,
            &cs,
            self.in_dim,
            self.wparams,
            self.in_params,
            &mut out,
        );
        for (o, &b) in out.iter_mut().zip(&self.bias) {
            *o += b;
        }
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(out, &[self.out_dim]).expect("dense output")
    }
}

// ------------------------------------------------------------ QConv2d

/// A [`Conv2d`] layer running its im2col GEMM through the quantized
/// datapath.
#[derive(Debug, Clone)]
pub struct QConv2d {
    qweight: Vec<u8>,
    wparams: QuantParams,
    wrowsums: Vec<u32>,
    bias: Vec<f32>,
    spec: Conv2dSpec,
    c_in: usize,
    c_out: usize,
    in_params: QuantParams,
}

impl QConv2d {
    /// Quantizes a trained convolution's weights (per-tensor range) and
    /// fixes the input quantization to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_conv(conv: &Conv2d, in_params: QuantParams) -> Result<Self, FxpError> {
        let wparams = QuantParams::calibrate(conv.weight(), 8)?;
        let qweight = quantize_codes(conv.weight().data(), wparams);
        let spec = conv.spec();
        let k2 = conv.c_in() * spec.kernel * spec.kernel;
        let wrowsums = row_sums(&qweight, conv.c_out(), k2);
        Ok(QConv2d {
            qweight,
            wparams,
            wrowsums,
            bias: conv.bias().data().to_vec(),
            spec,
            c_in: conv.c_in(),
            c_out: conv.c_out(),
            in_params,
        })
    }

    /// The quantized weight codes (empirical operand pools).
    pub fn weight_codes(&self) -> &[u8] {
        &self.qweight
    }

    /// Applies a deterministic fault to the stored weight codes —
    /// modeling corrupted weight memory — and recomputes the
    /// zero-point-correction row sums from the faulted codes (the
    /// correction adders read the same memory). Element indices start
    /// at `base_index`; returns the next free index so multi-conv
    /// sites fault their concatenated storage consistently.
    pub fn fault_weight_codes(&mut self, model: &FaultModel, seed: u64, base_index: u64) -> u64 {
        let next = fault_codes(&mut self.qweight, model, seed, base_index);
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        self.wrowsums = row_sums(&self.qweight, self.c_out, k2);
        next
    }

    /// Forward over a raw `[C_in, H, W]` slice through the quantized
    /// GEMM, mirroring `Conv2d::forward_chw`: im2col (the existing
    /// float machinery — padding zeros land on the affine zero point),
    /// quantize the columns, accumulate `lut` products, dequantize with
    /// the zero-point correction and add the bias.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == c_in * h * w` with valid geometry.
    pub fn forward_chw(&self, data: &[f32], h: usize, w: usize, lut: &MulLut) -> Tensor {
        self.forward_chw_view(data, h, w, MacView::clean(lut))
    }

    /// [`QConv2d::forward_chw`] under a full site view: the table plus
    /// an optional accumulator fault, applied to each output element at
    /// its `c_out`-major position after the reduction completes.
    ///
    /// # Panics
    ///
    /// As [`QConv2d::forward_chw`].
    pub fn forward_chw_view(&self, data: &[f32], h: usize, w: usize, view: MacView<'_>) -> Tensor {
        assert_eq!(data.len(), self.c_in * h * w, "QConv2d input size");
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let h_out = self.spec.output_size(h).expect("valid geometry");
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let w_out = self.spec.output_size(w).expect("valid geometry");
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        let n = h_out * w_out;
        let mut cols = vec![0.0f32; k2 * n];
        // lint: allow(panic) — input dims were validated against the spec just above
        im2col_slice(data, self.c_in, h, w, self.spec, &mut cols).expect("valid conv input");
        let qcols = quantize_codes(&cols, self.in_params);
        let mut acc = vec![0u32; self.c_out * n];
        qgemm_nn(&self.qweight, &qcols, &mut acc, self.c_out, k2, n, view.lut);
        if let Some(f) = view.acc {
            // Per-sample layout is [C_out, N]: the linear index IS the
            // sample-local element index the batched path uses.
            for (idx, slot) in acc.iter_mut().enumerate() {
                *slot = f.apply(*slot, idx as u64);
            }
        }
        let cs = col_sums(&qcols, k2, n);
        let mut out = vec![0.0f32; self.c_out * n];
        affine_dequant(
            &acc,
            &self.wrowsums,
            &cs,
            k2,
            self.wparams,
            self.in_params,
            &mut out,
        );
        for (co, orow) in out.chunks_exact_mut(n).enumerate() {
            let b = self.bias[co];
            if b != 0.0 {
                for v in orow {
                    *v += b;
                }
            }
        }
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(out, &[self.c_out, h_out, w_out]).expect("conv output shape")
    }

    /// Batched twin of [`QConv2d::forward_chw`]: fuses every sample's
    /// im2col columns into **one** wide quantized GEMM (`[C_out, K²] ×
    /// [K², B·H'·W']`), then splits the dequantized output back into
    /// per-sample tensors. Bit-identical to calling `forward_chw` per
    /// sample — quantization is elementwise and each output column's
    /// integer reduction is independent — while amortizing the kernel's
    /// tile setup and keeping the LUT hot across the whole batch.
    ///
    /// # Panics
    ///
    /// Panics unless every input has `c_in * h * w` elements with valid
    /// geometry.
    pub fn forward_batch_chw(
        &self,
        inputs: &[&[f32]],
        h: usize,
        w: usize,
        lut: &MulLut,
    ) -> Vec<Tensor> {
        self.forward_batch_chw_view(inputs, h, w, MacView::clean(lut))
    }

    /// [`QConv2d::forward_batch_chw`] under a full site view. The
    /// accumulator fault indexes each output element by its
    /// **sample-local** position (`c_out`-major), not its position in
    /// the fused batch buffer, so every sample sees the same faulty
    /// accumulator lanes and the batched path stays bit-identical to
    /// the per-sample one.
    ///
    /// # Panics
    ///
    /// As [`QConv2d::forward_batch_chw`].
    pub fn forward_batch_chw_view(
        &self,
        inputs: &[&[f32]],
        h: usize,
        w: usize,
        view: MacView<'_>,
    ) -> Vec<Tensor> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let bsz = inputs.len();
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let h_out = self.spec.output_size(h).expect("valid geometry");
        // lint: allow(panic) — geometry was validated when the layer was constructed
        let w_out = self.spec.output_size(w).expect("valid geometry");
        let k2 = self.c_in * self.spec.kernel * self.spec.kernel;
        let n = h_out * w_out;
        let wide = bsz * n;
        let mut cols = vec![0.0f32; k2 * n];
        let mut fused = vec![0.0f32; k2 * wide];
        for (bi, data) in inputs.iter().enumerate() {
            assert_eq!(data.len(), self.c_in * h * w, "QConv2d batch input size");
            // lint: allow(panic) — input dims were validated against the spec just above
            im2col_slice(data, self.c_in, h, w, self.spec, &mut cols).expect("valid conv input");
            for r in 0..k2 {
                fused[r * wide + bi * n..r * wide + bi * n + n]
                    .copy_from_slice(&cols[r * n..(r + 1) * n]);
            }
        }
        let qcols = quantize_codes(&fused, self.in_params);
        let mut acc = vec![0u32; self.c_out * wide];
        qgemm_nn(
            &self.qweight,
            &qcols,
            &mut acc,
            self.c_out,
            k2,
            wide,
            view.lut,
        );
        if let Some(f) = view.acc {
            // Fused element (co, bi·n + pi) is sample element (co, pi).
            for co in 0..self.c_out {
                let row = &mut acc[co * wide..(co + 1) * wide];
                for bi in 0..bsz {
                    for (pi, slot) in row[bi * n..bi * n + n].iter_mut().enumerate() {
                        *slot = f.apply(*slot, (co * n + pi) as u64);
                    }
                }
            }
        }
        let cs = col_sums(&qcols, k2, wide);
        let mut out = vec![0.0f32; self.c_out * wide];
        affine_dequant(
            &acc,
            &self.wrowsums,
            &cs,
            k2,
            self.wparams,
            self.in_params,
            &mut out,
        );
        (0..bsz)
            .map(|bi| {
                let mut o = vec![0.0f32; self.c_out * n];
                for co in 0..self.c_out {
                    let dst = &mut o[co * n..(co + 1) * n];
                    dst.copy_from_slice(&out[co * wide + bi * n..co * wide + bi * n + n]);
                    let b = self.bias[co];
                    if b != 0.0 {
                        for v in dst {
                            *v += b;
                        }
                    }
                }
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                Tensor::from_vec(o, &[self.c_out, h_out, w_out]).expect("conv output shape")
            })
            .collect()
    }

    /// Forward over a `[C_in, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics on a rank or channel mismatch.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(x.ndim(), 3, "QConv2d expects [C,H,W]");
        assert_eq!(x.shape()[0], self.c_in, "QConv2d input channels");
        self.forward_chw(x.data(), x.shape()[1], x.shape()[2], lut)
    }
}

// ------------------------------------------------------------- QVotes

/// The `ClassCaps` vote transform `û_{j|i} = W_ij · u_i` through the
/// quantized datapath: `I` independent `(J·D_out × D_in)` GEMVs.
#[derive(Debug, Clone)]
pub struct QVotes {
    qweight: Vec<u8>,
    wparams: QuantParams,
    /// Per-`i` row sums, `[I, J·D_out]`.
    wrowsums: Vec<u32>,
    i_caps: usize,
    j_caps: usize,
    d_in: usize,
    d_out: usize,
    in_params: QuantParams,
}

impl QVotes {
    /// Quantizes a trained class-capsule layer's transformation
    /// matrices and fixes the unit-input quantization to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_class_caps(layer: &ClassCaps, in_params: QuantParams) -> Result<Self, FxpError> {
        let (i_caps, j_caps, d_in, d_out) = layer.dims();
        let wparams = QuantParams::calibrate(layer.weight(), 8)?;
        let qweight = quantize_codes(layer.weight().data(), wparams);
        let wrowsums = row_sums(&qweight, i_caps * j_caps * d_out, d_in);
        Ok(QVotes {
            qweight,
            wparams,
            wrowsums,
            i_caps,
            j_caps,
            d_in,
            d_out,
            in_params,
        })
    }

    /// The quantized weight codes (empirical operand pools).
    pub fn weight_codes(&self) -> &[u8] {
        &self.qweight
    }

    /// As [`QConv2d::fault_weight_codes`]: faults the stored
    /// transformation-matrix codes and recomputes the per-`i` row sums.
    pub fn fault_weight_codes(&mut self, model: &FaultModel, seed: u64, base_index: u64) -> u64 {
        let next = fault_codes(&mut self.qweight, model, seed, base_index);
        self.wrowsums = row_sums(
            &self.qweight,
            self.i_caps * self.j_caps * self.d_out,
            self.d_in,
        );
        next
    }

    /// Computes the vote tensor `[I, J, D_out]` for units `u` (`[I,
    /// D_in]`) with the multiplies served by `lut`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(&self, u: &Tensor, lut: &MulLut) -> Tensor {
        assert_eq!(u.shape(), [self.i_caps, self.d_in], "QVotes input");
        let qu = quantize_codes(u.data(), self.in_params);
        let rows = self.j_caps * self.d_out;
        let wstride = rows * self.d_in;
        let mut out = vec![0.0f32; self.i_caps * rows];
        let mut acc = vec![0u32; rows];
        for i in 0..self.i_caps {
            let qu_i = &qu[i * self.d_in..(i + 1) * self.d_in];
            acc.fill(0);
            qgemm_nn(
                &self.qweight[i * wstride..(i + 1) * wstride],
                qu_i,
                &mut acc,
                rows,
                self.d_in,
                1,
                lut,
            );
            let cs = col_sums(qu_i, self.d_in, 1);
            affine_dequant(
                &acc,
                &self.wrowsums[i * rows..(i + 1) * rows],
                &cs,
                self.d_in,
                self.wparams,
                self.in_params,
                &mut out[i * rows..(i + 1) * rows],
            );
        }
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(out, &[self.i_caps, self.j_caps, self.d_out]).expect("votes shape")
    }

    /// Batched twin of [`QVotes::forward`]: for each input capsule `i`,
    /// fuses every sample's GEMV into one `(J·D_out × D_in) × (D_in ×
    /// B)` quantized GEMM. Bit-identical to the per-sample path (each
    /// output column reduces independently).
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward_batch(&self, us: &[&Tensor], lut: &MulLut) -> Vec<Tensor> {
        self.forward_batch_view(us, MacView::clean(lut))
    }

    /// [`QVotes::forward_batch`] under a full site view; the
    /// accumulator fault indexes each output element by its
    /// sample-local `(i, row)` position.
    ///
    /// # Panics
    ///
    /// As [`QVotes::forward_batch`].
    pub fn forward_batch_view(&self, us: &[&Tensor], view: MacView<'_>) -> Vec<Tensor> {
        if us.is_empty() {
            return Vec::new();
        }
        let bsz = us.len();
        let rows = self.j_caps * self.d_out;
        let wstride = rows * self.d_in;
        let qus: Vec<Vec<u8>> = us
            .iter()
            .map(|u| {
                assert_eq!(u.shape(), [self.i_caps, self.d_in], "QVotes input");
                quantize_codes(u.data(), self.in_params)
            })
            .collect();
        let mut outs = vec![vec![0.0f32; self.i_caps * rows]; bsz];
        let mut bmat = vec![0u8; self.d_in * bsz];
        let mut acc = vec![0u32; rows * bsz];
        let mut dq = vec![0.0f32; rows * bsz];
        for i in 0..self.i_caps {
            for dk in 0..self.d_in {
                for (bi, qu) in qus.iter().enumerate() {
                    bmat[dk * bsz + bi] = qu[i * self.d_in + dk];
                }
            }
            acc.fill(0);
            qgemm_nn(
                &self.qweight[i * wstride..(i + 1) * wstride],
                &bmat,
                &mut acc,
                rows,
                self.d_in,
                bsz,
                view.lut,
            );
            if let Some(f) = view.acc {
                // Batched layout is [rows, bsz]; every sample shares
                // the accumulator slot of its (i, row) element.
                for (r, arow) in acc.chunks_exact_mut(bsz).enumerate() {
                    for slot in arow.iter_mut() {
                        *slot = f.apply(*slot, (i * rows + r) as u64);
                    }
                }
            }
            let cs = col_sums(&bmat, self.d_in, bsz);
            affine_dequant(
                &acc,
                &self.wrowsums[i * rows..(i + 1) * rows],
                &cs,
                self.d_in,
                self.wparams,
                self.in_params,
                &mut dq,
            );
            for (r, dqrow) in dq.chunks_exact(bsz).enumerate() {
                for (bi, &v) in dqrow.iter().enumerate() {
                    outs[bi][i * rows + r] = v;
                }
            }
        }
        outs.into_iter()
            .map(|o| {
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                Tensor::from_vec(o, &[self.i_caps, self.j_caps, self.d_out]).expect("votes shape")
            })
            .collect()
    }
}

// -------------------------------------------------- quantized routing

/// Dynamic routing-by-agreement with its two MAC sites — the weighted
/// sum `s_j = Σᵢ k_ij·û_{j|i}` and the agreement (logits-update) dot
/// `û·v` — running on quantized codes through `lut`. The softmax and
/// squash (the accelerator's special-function units) stay in float and
/// compute exactly what the float routing computes.
///
/// `votes` is `[I, J, D]` (fully-connected capsules) or `[I, J, D, P]`
/// (convolutional capsules routing at every spatial position, as in
/// DeepCaps' `Caps3D`); returns the routed capsules `[J, D]` or
/// `[J, D, P]` respectively. `vote_params` / `coupling_params` /
/// `act_params` are the calibrated requantization ranges for the
/// votes, the coupling coefficients and the squashed capsules.
///
/// The two MAC sites are independent multiplier sites of a
/// heterogeneous datapath: `sum_lut` serves the weighted sum (the
/// in-routing MAC-output site) and `agree_lut` the agreement dot (the
/// logits-update site). Pass the same table twice for a homogeneous
/// routing block.
///
/// # Panics
///
/// Panics unless `votes` is rank 3 or 4 and `iterations >= 1`.
pub fn quantized_routing(
    votes: &Tensor,
    iterations: usize,
    vote_params: QuantParams,
    coupling_params: QuantParams,
    act_params: QuantParams,
    sum_lut: &MulLut,
    agree_lut: &MulLut,
) -> Tensor {
    quantized_routing_view(
        votes,
        iterations,
        vote_params,
        coupling_params,
        act_params,
        MacView::clean(sum_lut),
        MacView::clean(agree_lut),
    )
}

/// [`quantized_routing`] under full site views: each of the two MAC
/// sites carries its table plus an optional accumulator fault. The
/// weighted-sum accumulator is indexed by its `(j, d, p)` slot and the
/// agreement accumulator by its `(i, j, p)` slot — physical
/// accumulator locations, reused across routing iterations, so a stuck
/// lane corrupts every iteration the way real hardware would.
///
/// # Panics
///
/// As [`quantized_routing`].
pub fn quantized_routing_view(
    votes: &Tensor,
    iterations: usize,
    vote_params: QuantParams,
    coupling_params: QuantParams,
    act_params: QuantParams,
    sum: MacView<'_>,
    agree: MacView<'_>,
) -> Tensor {
    let (i_caps, j_caps, d, p, spatial) = match votes.ndim() {
        3 => (
            votes.shape()[0],
            votes.shape()[1],
            votes.shape()[2],
            1,
            false,
        ),
        4 => (
            votes.shape()[0],
            votes.shape()[1],
            votes.shape()[2],
            votes.shape()[3],
            true,
        ),
        // lint: allow(panic) — documented API contract: votes must be rank 3 or 4
        _ => panic!("quantized_routing expects [I, J, D] or [I, J, D, P]"),
    };
    assert!(iterations >= 1, "routing needs at least one iteration");
    // Same u32-accumulator contract as the qgemm kernels: the
    // weighted sum reduces over I, the agreement dot over D.
    debug_assert!(
        i_caps <= crate::kernels::MAX_ACC_K && d <= crate::kernels::MAX_ACC_K,
        "routing reduction ({i_caps} capsules, {d} dims) can overflow the u32 accumulator"
    );
    let qu = quantize_codes(votes.data(), vote_params);
    // Iteration-independent code sums for the corrections.
    // Σ_d qu[i,j,d,p] per (i, j, p) — the agreement dot's left-operand sum.
    let mut qu_ijp = vec![0u32; i_caps * j_caps * p];
    // Σ_i qu[i,j,d,p] per (j, d, p) — the weighted sum's vote-operand sum.
    let mut qu_jdp = vec![0u32; j_caps * d * p];
    for ij in 0..i_caps * j_caps {
        let j = ij % j_caps;
        for di in 0..d {
            for pi in 0..p {
                let code = qu[(ij * d + di) * p + pi] as u32;
                qu_ijp[ij * p + pi] += code;
                qu_jdp[(j * d + di) * p + pi] += code;
            }
        }
    }
    let (lu, min_u) = (vote_params.lsb(), vote_params.min());
    let (lk, min_k) = (coupling_params.lsb(), coupling_params.min());
    let (lv, min_v) = (act_params.lsb(), act_params.min());

    let mut b = vec![0.0f32; i_caps * j_caps * p];
    let mut k = vec![0.0f32; i_caps * j_caps * p];
    let mut s = vec![0.0f32; j_caps * d * p];
    let mut v = vec![0.0f32; j_caps * d * p];
    let mut qk_jp = vec![0u32; j_caps * p];
    for iter in 0..iterations {
        // Coupling coefficients: softmax over J (float SFU). Iteration 0
        // sees b == 0, for which the softmax is exactly uniform.
        if iter == 0 {
            k.fill(1.0 / j_caps as f32);
        } else {
            softmax_over_j(&b, &mut k, i_caps, j_caps, p);
        }
        let qk = quantize_codes(&k, coupling_params);
        // Σ_i qk[i,j,p] per (j, p).
        qk_jp.fill(0);
        for i in 0..i_caps {
            for (slot, &kv) in qk_jp
                .iter_mut()
                .zip(&qk[i * j_caps * p..(i + 1) * j_caps * p])
            {
                *slot += kv as u32;
            }
        }
        // Weighted sum s[j,d,p] = Σ_i k[i,j,p]·u[i,j,d,p] on codes,
        // then squash (float SFU).
        for j in 0..j_caps {
            for di in 0..d {
                for pi in 0..p {
                    let mut acc = 0u32;
                    for i in 0..i_caps {
                        acc += sum.lut.mul(
                            qk[(i * j_caps + j) * p + pi],
                            qu[((i * j_caps + j) * d + di) * p + pi],
                        ) as u32;
                    }
                    if let Some(f) = sum.acc {
                        // The physical accumulator slot of element
                        // (j, d, p), reused every routing iteration.
                        acc = f.apply(acc, ((j * d + di) * p + pi) as u64);
                    }
                    s[(j * d + di) * p + pi] = lk * lu * acc as f32
                        + lk * min_u * qk_jp[j * p + pi] as f32
                        + lu * min_k * qu_jdp[(j * d + di) * p + pi] as f32
                        + i_caps as f32 * min_k * min_u;
                }
            }
        }
        squash_slices(&s, &mut v, j_caps, d, p);
        if iter + 1 == iterations {
            break;
        }
        // Agreement b[i,j,p] += Σ_d û[i,j,d,p]·v[j,d,p] on codes.
        let qv = quantize_codes(&v, act_params);
        // Σ_d qv[j,d,p] per (j, p).
        let mut qv_jp = vec![0u32; j_caps * p];
        for j in 0..j_caps {
            for di in 0..d {
                for pi in 0..p {
                    qv_jp[j * p + pi] += qv[(j * d + di) * p + pi] as u32;
                }
            }
        }
        for i in 0..i_caps {
            for j in 0..j_caps {
                for pi in 0..p {
                    let mut acc = 0u32;
                    for di in 0..d {
                        acc += agree.lut.mul(
                            qu[((i * j_caps + j) * d + di) * p + pi],
                            qv[(j * d + di) * p + pi],
                        ) as u32;
                    }
                    if let Some(f) = agree.acc {
                        acc = f.apply(acc, ((i * j_caps + j) * p + pi) as u64);
                    }
                    b[(i * j_caps + j) * p + pi] += lu * lv * acc as f32
                        + lu * min_v * qu_ijp[(i * j_caps + j) * p + pi] as f32
                        + lv * min_u * qv_jp[j * p + pi] as f32
                        + d as f32 * min_u * min_v;
                }
            }
        }
    }
    let shape: &[usize] = if spatial {
        &[j_caps, d, p]
    } else {
        &[j_caps, d]
    };
    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
    Tensor::from_vec(v, shape).expect("routed capsules")
}

// --------------------------------------------------------- QConvCaps2d

/// A [`ConvCaps2d`] layer on the quantized datapath: the channel-folded
/// convolution runs on 8-bit codes; the per-capsule squash (when the
/// layer applies one) stays in float, as on the accelerator's SFU.
#[derive(Debug, Clone)]
pub struct QConvCaps2d {
    conv: QConv2d,
    c_in: usize,
    d_in: usize,
    c_out: usize,
    d_out: usize,
    apply_squash: bool,
}

impl QConvCaps2d {
    /// Lowers a trained conv-caps layer with its input quantization
    /// fixed to `in_params`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_conv_caps(layer: &ConvCaps2d, in_params: QuantParams) -> Result<Self, FxpError> {
        let (c_in, d_in) = layer.in_caps();
        let (c_out, d_out) = layer.out_caps();
        Ok(QConvCaps2d {
            conv: QConv2d::from_conv(layer.conv(), in_params)?,
            c_in,
            d_in,
            c_out,
            d_out,
            apply_squash: layer.applies_squash(),
        })
    }

    /// The wrapped quantized convolution.
    pub fn conv(&self) -> &QConv2d {
        &self.conv
    }

    /// Faults the wrapped convolution's stored weight codes (see
    /// [`QConv2d::fault_weight_codes`]). Returns the next free index.
    pub fn fault_weight_codes(&mut self, model: &FaultModel, seed: u64, base_index: u64) -> u64 {
        self.conv.fault_weight_codes(model, seed, base_index)
    }

    /// Forward over a capsule tensor whose leading axes fold to
    /// `C_in·D_in` channels (`[C, D, H, W]`, or `[C·D, H, W]`);
    /// returns `[C_out, D_out, H', W']` capsules — squashed when the
    /// float layer squashes, pre-activation otherwise.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch.
    pub fn forward(&self, x: &Tensor, lut: &MulLut) -> Tensor {
        let nd = x.ndim();
        assert!(nd >= 3, "QConvCaps2d expects at least [C, H, W]");
        let (h, w) = (x.shape()[nd - 2], x.shape()[nd - 1]);
        assert_eq!(
            x.len(),
            self.c_in * self.d_in * h * w,
            "QConvCaps2d input capsules"
        );
        let y = self.conv.forward_chw(x.data(), h, w, lut);
        self.finish(y)
    }

    /// Batched twin of [`QConvCaps2d::forward`]: one fused wide GEMM
    /// across the whole batch (see [`QConv2d::forward_batch_chw`]),
    /// per-sample squash.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch.
    pub fn forward_batch(&self, xs: &[&Tensor], lut: &MulLut) -> Vec<Tensor> {
        self.forward_batch_view(xs, MacView::clean(lut))
    }

    /// [`QConvCaps2d::forward_batch`] under a full site view (table plus
    /// optional accumulator fault).
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch.
    pub fn forward_batch_view(&self, xs: &[&Tensor], view: MacView<'_>) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        let nd = xs[0].ndim();
        assert!(nd >= 3, "QConvCaps2d expects at least [C, H, W]");
        let (h, w) = (xs[0].shape()[nd - 2], xs[0].shape()[nd - 1]);
        let inputs: Vec<&[f32]> = xs
            .iter()
            .map(|x| {
                assert_eq!(
                    x.len(),
                    self.c_in * self.d_in * h * w,
                    "QConvCaps2d input capsules"
                );
                x.data()
            })
            .collect();
        self.conv
            .forward_batch_chw_view(&inputs, h, w, view)
            .into_iter()
            .map(|y| self.finish(y))
            .collect()
    }

    /// Capsule unfold + optional squash shared by the single and
    /// batched paths.
    fn finish(&self, y: Tensor) -> Tensor {
        let (h_out, w_out) = (y.shape()[1], y.shape()[2]);
        let p = h_out * w_out;
        let s = y
            .into_reshaped(&[self.c_out, self.d_out, p])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("capsule unfold");
        let out = if self.apply_squash {
            squash_caps(&s)
        } else {
            s
        };
        out.into_reshaped(&[self.c_out, self.d_out, h_out, w_out])
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .expect("spatial unfold")
    }
}

// --------------------------------------------------------- QConvCaps3d

/// A [`ConvCaps3d`] layer on the quantized datapath: per-type vote
/// convolutions and both routing MAC sites run on 8-bit codes
/// ([`quantized_routing`] with `P = H'·W'` spatial positions); softmax
/// and squash stay in float.
#[derive(Debug, Clone)]
pub struct QConvCaps3d {
    convs: Vec<QConv2d>,
    c_in: usize,
    d_in: usize,
    c_out: usize,
    d_out: usize,
    iterations: usize,
    vote_params: QuantParams,
    coupling_params: QuantParams,
    act_params: QuantParams,
}

impl QConvCaps3d {
    /// Lowers a trained routing conv-caps layer. `in_params` fixes the
    /// vote convolutions' input quantization; `vote_params` /
    /// `coupling_params` / `act_params` are the routing requantization
    /// ranges.
    ///
    /// # Errors
    ///
    /// Returns an error if any vote convolution's weights contain
    /// non-finite values.
    pub fn from_conv_caps(
        layer: &ConvCaps3d,
        in_params: QuantParams,
        vote_params: QuantParams,
        coupling_params: QuantParams,
        act_params: QuantParams,
    ) -> Result<Self, FxpError> {
        let (c_in, d_in) = layer.in_caps();
        let (c_out, d_out) = layer.out_caps();
        let convs = layer
            .convs()
            .iter()
            .map(|c| QConv2d::from_conv(c, in_params))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QConvCaps3d {
            convs,
            c_in,
            d_in,
            c_out,
            d_out,
            iterations: layer.iterations(),
            vote_params,
            coupling_params,
            act_params,
        })
    }

    /// The per-input-type quantized vote convolutions.
    pub fn convs(&self) -> &[QConv2d] {
        &self.convs
    }

    /// Faults every vote convolution's stored weight codes under one
    /// shared index space (the site's weight memory holds all types
    /// back to back). Returns the next free index.
    pub fn fault_weight_codes(&mut self, model: &FaultModel, seed: u64, base_index: u64) -> u64 {
        let mut index = base_index;
        for conv in &mut self.convs {
            index = conv.fault_weight_codes(model, seed, index);
        }
        index
    }

    /// Forward over `[C_in, D_in, H, W]` capsules; returns the routed
    /// `[C_out, D_out, H', W']` capsules. `conv_lut` serves the vote
    /// convolutions, `sum_lut` the routing weighted sum and `agree_lut`
    /// the agreement dot — three independently assignable multiplier
    /// sites.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch.
    pub fn forward(
        &self,
        x: &Tensor,
        conv_lut: &MulLut,
        sum_lut: &MulLut,
        agree_lut: &MulLut,
    ) -> Tensor {
        self.forward_batch(&[x], conv_lut, sum_lut, agree_lut)
            .pop()
            // lint: allow(panic) — batch API contract: the executor returns one output per input sample
            .expect("one sample in, one out")
    }

    /// Batched twin of [`QConvCaps3d::forward`]: each per-type vote
    /// convolution fuses across the whole batch (one wide GEMM per
    /// type); the routing — whose coupling coefficients are
    /// input-dependent — stays per sample.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch.
    pub fn forward_batch(
        &self,
        xs: &[&Tensor],
        conv_lut: &MulLut,
        sum_lut: &MulLut,
        agree_lut: &MulLut,
    ) -> Vec<Tensor> {
        self.forward_batch_view(
            xs,
            MacView::clean(conv_lut),
            MacView::clean(sum_lut),
            MacView::clean(agree_lut),
        )
    }

    /// [`QConvCaps3d::forward_batch`] under full site views for the
    /// three MAC sites (vote convolutions, routing weighted sum,
    /// agreement dot).
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch.
    pub fn forward_batch_view(
        &self,
        xs: &[&Tensor],
        conv: MacView<'_>,
        sum: MacView<'_>,
        agree: MacView<'_>,
    ) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        let bsz = xs.len();
        for x in xs {
            assert_eq!(x.ndim(), 4, "QConvCaps3d expects [C, D, H, W]");
            assert_eq!(x.shape()[0], self.c_in, "capsule types");
            assert_eq!(x.shape()[1], self.d_in, "capsule dims");
        }
        let (h, w) = (xs[0].shape()[2], xs[0].shape()[3]);
        let type_len = self.d_in * h * w;
        // Per-type vote convolutions across the batch, assembled as
        // per-sample votes [I, J, D, P].
        let mut flats: Vec<Vec<f32>> = vec![Vec::new(); bsz];
        let mut out_hw = (0usize, 0usize);
        for (i, c) in self.convs.iter().enumerate() {
            let inputs: Vec<&[f32]> = xs
                .iter()
                .map(|x| &x.data()[i * type_len..(i + 1) * type_len])
                .collect();
            for (bi, vi) in c
                .forward_batch_chw_view(&inputs, h, w, conv)
                .into_iter()
                .enumerate()
            {
                out_hw = (vi.shape()[1], vi.shape()[2]);
                if flats[bi].is_empty() {
                    flats[bi].reserve_exact(self.c_in * vi.len());
                }
                flats[bi].extend_from_slice(vi.data());
            }
        }
        let (h_out, w_out) = out_hw;
        let p = h_out * w_out;
        flats
            .into_iter()
            .map(|flat| {
                let votes = Tensor::from_vec(flat, &[self.c_in, self.c_out, self.d_out, p])
                    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                    .expect("vote assembly");
                let v = quantized_routing_view(
                    &votes,
                    self.iterations,
                    self.vote_params,
                    self.coupling_params,
                    self.act_params,
                    sum,
                    agree,
                );
                v.into_reshaped(&[self.c_out, self.d_out, h_out, w_out])
                    // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                    .expect("spatial unfold")
            })
            .collect()
    }
}

// ---------------------------------------------------------- QClassCaps

/// A [`ClassCaps`] layer on the quantized datapath: the vote transform
/// ([`QVotes`]) and both routing MAC sites run on 8-bit codes.
#[derive(Debug, Clone)]
pub struct QClassCaps {
    votes: QVotes,
    iterations: usize,
    vote_params: QuantParams,
    coupling_params: QuantParams,
    act_params: QuantParams,
}

impl QClassCaps {
    /// Lowers a trained class-capsule layer. `in_params` fixes the unit
    /// input quantization; `vote_params` / `coupling_params` /
    /// `act_params` are the routing requantization ranges.
    ///
    /// # Errors
    ///
    /// Returns an error if the weights contain non-finite values.
    pub fn from_class_caps(
        layer: &ClassCaps,
        in_params: QuantParams,
        vote_params: QuantParams,
        coupling_params: QuantParams,
        act_params: QuantParams,
    ) -> Result<Self, FxpError> {
        Ok(QClassCaps {
            votes: QVotes::from_class_caps(layer, in_params)?,
            iterations: layer.iterations(),
            vote_params,
            coupling_params,
            act_params,
        })
    }

    /// The wrapped quantized vote transform.
    pub fn votes(&self) -> &QVotes {
        &self.votes
    }

    /// Faults the vote transform's stored weight codes (see
    /// [`QVotes::fault_weight_codes`]). Returns the next free index.
    pub fn fault_weight_codes(&mut self, model: &FaultModel, seed: u64, base_index: u64) -> u64 {
        self.votes.fault_weight_codes(model, seed, base_index)
    }

    /// Forward over units `[I, D_in]`; returns the routed class
    /// capsules `[J, D_out]`. `vote_lut` serves the vote transform,
    /// `sum_lut` the routing weighted sum and `agree_lut` the agreement
    /// dot — three independently assignable multiplier sites.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(
        &self,
        u: &Tensor,
        vote_lut: &MulLut,
        sum_lut: &MulLut,
        agree_lut: &MulLut,
    ) -> Tensor {
        let votes = self.votes.forward(u, vote_lut);
        self.route(&votes, MacView::clean(sum_lut), MacView::clean(agree_lut))
    }

    /// Batched twin of [`QClassCaps::forward`]: the vote transform
    /// fuses across the batch ([`QVotes::forward_batch`]); routing
    /// stays per sample.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward_batch(
        &self,
        us: &[&Tensor],
        vote_lut: &MulLut,
        sum_lut: &MulLut,
        agree_lut: &MulLut,
    ) -> Vec<Tensor> {
        self.forward_batch_view(
            us,
            MacView::clean(vote_lut),
            MacView::clean(sum_lut),
            MacView::clean(agree_lut),
        )
    }

    /// [`QClassCaps::forward_batch`] under full site views for the
    /// three MAC sites (vote transform, routing weighted sum, agreement
    /// dot).
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward_batch_view(
        &self,
        us: &[&Tensor],
        vote: MacView<'_>,
        sum: MacView<'_>,
        agree: MacView<'_>,
    ) -> Vec<Tensor> {
        self.votes
            .forward_batch_view(us, vote)
            .iter()
            .map(|votes| self.route(votes, sum, agree))
            .collect()
    }

    fn route(&self, votes: &Tensor, sum: MacView<'_>, agree: MacView<'_>) -> Tensor {
        quantized_routing_view(
            votes,
            self.iterations,
            self.vote_params,
            self.coupling_params,
            self.act_params,
            sum,
            agree,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::routing::dynamic_routing;
    use redcane_capsnet::NoInjection;
    use redcane_nn::Layer;
    use redcane_tensor::TensorRng;

    fn p(min: f32, max: f32) -> QuantParams {
        QuantParams::from_range(min, max, 8).unwrap()
    }

    #[test]
    fn qdense_with_exact_lut_tracks_float_dense() {
        let mut rng = TensorRng::from_seed(500);
        let mut dense = Dense::new(20, 6, &mut rng);
        let x = rng.uniform(&[20], -1.0, 1.0);
        let want = dense.forward(&x);
        let q = QDense::from_dense(&dense, p(-1.0, 1.0)).unwrap();
        let got = q.forward(&x, &MulLut::exact());
        let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!(
                (a - b).abs() < 0.05 * (1.0 + scale),
                "float {a} vs quantized {b}"
            );
        }
    }

    #[test]
    fn qconv_with_exact_lut_tracks_float_conv() {
        let mut rng = TensorRng::from_seed(501);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = rng.uniform(&[2, 6, 6], -1.0, 1.0);
        let want = conv.forward(&x);
        let q = QConv2d::from_conv(&conv, p(-1.0, 1.0)).unwrap();
        let got = q.forward(&x, &MulLut::exact());
        assert_eq!(got.shape(), want.shape());
        let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mut total = 0.0f32;
        for (a, b) in want.data().iter().zip(got.data()) {
            let err = (a - b).abs();
            total += err;
            assert!(err < 0.1 * (1.0 + scale), "float {a} vs quantized {b}");
        }
        let mean = total / want.len() as f32;
        assert!(mean < 0.02 * (1.0 + scale), "mean error {mean}");
    }

    #[test]
    fn qvotes_with_exact_lut_tracks_float_votes() {
        let mut rng = TensorRng::from_seed(502);
        let layer = ClassCaps::new(0, "CC", 6, 4, 3, 5, 3, &mut rng);
        let u = rng.uniform(&[6, 3], -1.0, 1.0);
        let q = QVotes::from_class_caps(&layer, p(-1.0, 1.0)).unwrap();
        let got = q.forward(&u, &MulLut::exact());
        assert_eq!(got.shape(), &[6, 4, 5]);
        // Float oracle: û_{j|i} = W_ij · u_i by direct loops.
        let w = layer.weight().data();
        for i in 0..6 {
            for j in 0..4 {
                for di in 0..5 {
                    let mut want = 0.0f32;
                    for dk in 0..3 {
                        want += w[((i * 4 + j) * 5 + di) * 3 + dk] * u.data()[i * 3 + dk];
                    }
                    let have = got.data()[(i * 4 + j) * 5 + di];
                    assert!((want - have).abs() < 0.05, "vote [{i},{j},{di}]");
                }
            }
        }
    }

    #[test]
    fn quantized_routing_with_exact_lut_tracks_float_routing() {
        let mut rng = TensorRng::from_seed(503);
        let (i_caps, j_caps, d) = (8, 4, 5);
        let votes3 = rng.uniform(&[i_caps, j_caps, d], -1.0, 1.0);
        let votes4 = votes3.reshape(&[i_caps, j_caps, d, 1]).unwrap();
        let cache = dynamic_routing(votes4, 3, 0, "X", &mut NoInjection);
        let want = cache.v.reshape(&[j_caps, d]).unwrap();
        let exact = MulLut::exact();
        let got = quantized_routing(
            &votes3,
            3,
            QuantParams::calibrate(&votes3, 8).unwrap(),
            p(0.0, 1.0),
            p(-1.0, 1.0),
            &exact,
            &exact,
        );
        assert_eq!(got.shape(), &[j_caps, d]);
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 0.05, "float {a} vs quantized {b}");
        }
    }

    /// The spatial (P > 1) form — the Caps3D routing geometry — must
    /// track the float routing at every position.
    #[test]
    fn quantized_routing_spatial_tracks_float_routing() {
        let mut rng = TensorRng::from_seed(507);
        let (i_caps, j_caps, d, p_dim) = (4, 3, 4, 6);
        let votes = rng.uniform(&[i_caps, j_caps, d, p_dim], -1.0, 1.0);
        let cache = dynamic_routing(votes.clone(), 3, 0, "X", &mut NoInjection);
        let exact = MulLut::exact();
        let got = quantized_routing(
            &votes,
            3,
            QuantParams::calibrate(&votes, 8).unwrap(),
            p(0.0, 1.0),
            p(-1.0, 1.0),
            &exact,
            &exact,
        );
        assert_eq!(got.shape(), &[j_caps, d, p_dim]);
        for (a, b) in cache.v.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 0.05, "float {a} vs quantized {b}");
        }
    }

    #[test]
    fn qconv_caps2d_with_exact_lut_tracks_float_layer() {
        let mut rng = TensorRng::from_seed(508);
        for apply_squash in [true, false] {
            let mut layer = ConvCaps2d::new(0, "C2", 2, 4, 3, 4, 3, 2, 1, apply_squash, &mut rng);
            let x = rng.uniform(&[2, 4, 8, 8], -1.0, 1.0);
            let want = layer.forward(&x, &mut NoInjection);
            let q = QConvCaps2d::from_conv_caps(&layer, p(-1.0, 1.0)).unwrap();
            let got = q.forward(&x, &MulLut::exact());
            assert_eq!(got.shape(), want.shape());
            let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!(
                    (a - b).abs() < 0.1 * (1.0 + scale),
                    "squash={apply_squash}: float {a} vs quantized {b}"
                );
            }
        }
    }

    #[test]
    fn qconv_caps3d_with_exact_lut_tracks_float_layer() {
        let mut rng = TensorRng::from_seed(509);
        let mut layer = ConvCaps3d::new(0, "C3", 3, 4, 2, 4, 3, 1, 1, 3, &mut rng);
        let x = rng.uniform(&[3, 4, 4, 4], -1.0, 1.0);
        let want = layer.forward(&x, &mut NoInjection);
        // Calibrate the routing ranges from the float layer's own taps.
        let mut obs = crate::CalibrationObserver::new();
        let mut probe = layer.clone();
        let _ = probe.forward(&x, &mut obs);
        let ranges = obs.ranges(8).unwrap();
        let q = QConvCaps3d::from_conv_caps(
            &layer,
            ranges.get("C3", redcane_capsnet::OpKind::MacInput).unwrap(),
            ranges
                .get("C3", redcane_capsnet::OpKind::MacOutput)
                .unwrap(),
            ranges
                .get_routing("C3", redcane_capsnet::OpKind::Softmax)
                .unwrap(),
            ranges
                .get_routing("C3", redcane_capsnet::OpKind::Activation)
                .unwrap(),
        )
        .unwrap();
        let exact = MulLut::exact();
        let got = q.forward(&x, &exact, &exact, &exact);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 0.12, "float {a} vs quantized {b}");
        }
    }

    #[test]
    fn qclass_caps_with_exact_lut_tracks_float_layer() {
        let mut rng = TensorRng::from_seed(510);
        let mut layer = ClassCaps::new(0, "CC", 12, 10, 4, 8, 3, &mut rng);
        let u = rng.uniform(&[12, 4], -1.0, 1.0);
        let want = layer.forward(&u, &mut NoInjection);
        let mut obs = crate::CalibrationObserver::new();
        let mut probe = layer.clone();
        let _ = probe.forward(&u, &mut obs);
        let ranges = obs.ranges(8).unwrap();
        let q = QClassCaps::from_class_caps(
            &layer,
            ranges.get("CC", redcane_capsnet::OpKind::MacInput).unwrap(),
            ranges
                .get("CC", redcane_capsnet::OpKind::MacOutput)
                .unwrap(),
            ranges
                .get_routing("CC", redcane_capsnet::OpKind::Softmax)
                .unwrap(),
            ranges
                .get_routing("CC", redcane_capsnet::OpKind::Activation)
                .unwrap(),
        )
        .unwrap();
        let exact = MulLut::exact();
        let got = q.forward(&u, &exact, &exact, &exact);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 0.1, "float {a} vs quantized {b}");
        }
    }

    /// The fused wide-GEMM batch paths must be bit-identical to their
    /// per-sample twins: quantization is elementwise and every output
    /// column's integer reduction is independent of the others.
    #[test]
    fn conv_batch_is_bit_identical_to_per_sample() {
        let mut rng = TensorRng::from_seed(520);
        let conv = Conv2d::new(3, 5, 3, 1, 1, &mut rng);
        let q = QConv2d::from_conv(&conv, p(-1.0, 1.0)).unwrap();
        let lut = MulLut::exact();
        let xs: Vec<Tensor> = (0..5).map(|_| rng.uniform(&[3, 6, 6], -1.0, 1.0)).collect();
        let inputs: Vec<&[f32]> = xs.iter().map(|x| x.data()).collect();
        let batched = q.forward_batch_chw(&inputs, 6, 6, &lut);
        for (x, got) in xs.iter().zip(&batched) {
            assert_eq!(&q.forward(x, &lut), got);
        }
        assert!(q.forward_batch_chw(&[], 6, 6, &lut).is_empty());
    }

    #[test]
    fn votes_batch_is_bit_identical_to_per_sample() {
        let mut rng = TensorRng::from_seed(521);
        let layer = ClassCaps::new(0, "CC", 6, 4, 3, 5, 3, &mut rng);
        let q = QVotes::from_class_caps(&layer, p(-1.0, 1.0)).unwrap();
        let lut = MulLut::tabulate(&redcane_axmul::mult::TruncatedMultiplier::new(5));
        let us: Vec<Tensor> = (0..4).map(|_| rng.uniform(&[6, 3], -1.0, 1.0)).collect();
        let refs: Vec<&Tensor> = us.iter().collect();
        let batched = q.forward_batch(&refs, &lut);
        for (u, got) in us.iter().zip(&batched) {
            assert_eq!(&q.forward(u, &lut), got);
        }
    }
}
