//! Training and evaluation loops for capsule models.
//!
//! # Parallelism and determinism
//!
//! Both the trainer and the accurate-network evaluator fan samples out
//! over scoped worker threads (see [`redcane_tensor::par`]): each worker
//! owns a clone of the model, and per-sample results are reduced **in
//! sample order** on the calling thread. A sample's forward/backward
//! depends only on the weights — never on gradient state — so every
//! per-sample gradient is identical to what the serial loop computes,
//! and the ordered reduction reproduces the serial accumulation bit for
//! bit at any `REDCANE_THREADS` setting (the pipeline determinism test
//! asserts this end to end).
//!
//! Injector-driven (noisy) evaluation stays serial: a stateful injector
//! draws its noise stream in visit order, so parallelizing across
//! samples would change which noise hits which sample.

use redcane_datasets::Dataset;
use redcane_nn::{margin_loss, Adam, MarginLossConfig, Optimizer};
use redcane_tensor::{par, Tensor, TensorRng};
use redcane_trace as trace;

use crate::inject::{Injector, NoInjection};
use crate::model::CapsModel;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print a line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 2e-3,
            seed: 7,
            verbose: false,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub train_accuracy: f64,
}

/// One sample's contribution: margin loss plus a gradient snapshot per
/// parameter (in `params_mut` order).
type SampleGrad = (f32, Vec<Tensor>);

/// Runs forward/backward for one sample on `model` (whose gradients must
/// be zeroed) and snapshots the accumulated gradients, re-zeroing them.
fn sample_gradient<M: CapsModel>(
    model: &mut M,
    image: &Tensor,
    label: usize,
    loss_cfg: MarginLossConfig,
) -> SampleGrad {
    let lengths = model.forward(image, &mut NoInjection);
    let (loss, dl) = margin_loss(&lengths, label, loss_cfg);
    model.backward_from_lengths(&dl);
    let grads = model
        .params_mut()
        .into_iter()
        .map(|p| {
            let shape = p.grad.shape().to_vec();
            std::mem::replace(&mut p.grad, Tensor::zeros(&shape))
        })
        .collect();
    (loss, grads)
}

/// Processes one minibatch, accumulating gradients into `model` and
/// per-sample losses into `total_loss` exactly as the serial per-sample
/// loop would (the running loss sum spans batches, so it is threaded
/// through rather than subtotaled — subtotaling would reorder the adds).
fn run_batch<M: CapsModel + Clone + Send + Sync>(
    model: &mut M,
    data: &Dataset,
    chunk: &[usize],
    loss_cfg: MarginLossConfig,
    total_loss: &mut f32,
) {
    let workers = par::num_threads().min(chunk.len());
    if workers <= 1 {
        // Serial fast path: accumulate straight into the model.
        for &idx in chunk {
            let sample = &data.samples[idx];
            let lengths = model.forward(&sample.image, &mut NoInjection);
            let (loss, dl) = margin_loss(&lengths, sample.label, loss_cfg);
            *total_loss += loss;
            model.backward_from_lengths(&dl);
        }
        return;
    }
    // Parallel path: per-sample gradients on worker clones, reduced in
    // sample order so the sum matches the serial accumulation bitwise.
    let model_ref = &*model;
    let per_sample: Vec<SampleGrad> = par::map_with(
        chunk.len(),
        || {
            let mut local = model_ref.clone();
            local.zero_grad();
            local
        },
        |local, ci| {
            let sample = &data.samples[chunk[ci]];
            sample_gradient(local, &sample.image, sample.label, loss_cfg)
        },
    );
    for (loss, grads) in per_sample {
        *total_loss += loss;
        for (p, g) in model.params_mut().into_iter().zip(&grads) {
            p.accumulate(g);
        }
    }
}

/// Trains `model` on `data` with Adam and the CapsNet margin loss.
///
/// Deterministic given the model's initial weights and `cfg.seed`,
/// independent of the worker-thread count.
pub fn train<M: CapsModel + Clone + Send + Sync>(
    model: &mut M,
    data: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    // Degenerate scaled-down configs must not panic: a zero batch size
    // behaves like per-sample training.
    let batch_size = cfg.batch_size.max(1);
    let mut opt = Adam::new(cfg.lr);
    let mut rng = TensorRng::from_seed(cfg.seed);
    let loss_cfg = MarginLossConfig::default();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch = trace::span("epoch");
        if trace::enabled() {
            trace::add(trace::Counter::TrainEpochs, 1);
        }
        let order = rng.permutation(data.len());
        let mut total_loss = 0.0f32;
        for chunk in order.chunks(batch_size) {
            model.zero_grad();
            run_batch(model, data, chunk, loss_cfg, &mut total_loss);
            let mut params = model.params_mut();
            opt.step(&mut params, 1.0 / chunk.len() as f32);
        }
        let mean_loss = total_loss / data.len() as f32;
        epoch_losses.push(mean_loss);
        if cfg.verbose {
            eprintln!(
                "[train {}] epoch {}/{}: loss {:.4}",
                model.name(),
                epoch + 1,
                cfg.epochs,
                mean_loss
            );
        }
    }
    let train_accuracy = evaluate_clean(model, data);
    TrainReport {
        epoch_losses,
        train_accuracy,
    }
}

/// Classification accuracy of `model` on `data` under `injector`
/// (pass [`NoInjection`] for the accurate network).
///
/// Runs serially: a stateful injector's noise stream depends on visit
/// order. Use [`evaluate_clean`] for the parallel accurate-network path.
pub fn evaluate(model: &mut dyn CapsModel, data: &Dataset, injector: &mut dyn Injector) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .samples
        .iter()
        .filter(|s| model.predict_with(&s.image, injector) == s.label)
        .count();
    correct as f64 / data.len() as f64
}

/// Accurate-network (no-injection) accuracy, fanned out over worker
/// threads. Bitwise identical to `evaluate(.., NoInjection)` at every
/// thread count: predictions depend only on the weights, and a count of
/// correct labels has no reduction order to disturb.
pub fn evaluate_clean<M: CapsModel + Clone + Send + Sync>(model: &M, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = par::map_with(
        data.len(),
        || model.clone(),
        |local, i| {
            let sample = &data.samples[i];
            local.predict_with(&sample.image, &mut NoInjection) == sample.label
        },
    )
    .into_iter()
    .filter(|&hit| hit)
    .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CapsNetConfig;
    use crate::model::CapsNet;
    use redcane_datasets::{generate, Benchmark, GenerateConfig};

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 120,
                test: 40,
                seed: 11,
            },
        );
        let mut rng = TensorRng::from_seed(170);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let report = train(
            &mut model,
            &pair.train,
            &TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 2e-3,
                seed: 3,
                verbose: false,
            },
        );
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss should fall: {:?}",
            report.epoch_losses
        );
        // Way above the 10 % chance level even with a tiny budget.
        assert!(
            report.train_accuracy > 0.3,
            "train accuracy {}",
            report.train_accuracy
        );
        let test_acc = evaluate(&mut model, &pair.test, &mut NoInjection);
        assert!(test_acc > 0.2, "test accuracy {test_acc}");
    }

    /// Serializes the tests that mutate the process-wide thread-count
    /// override — without it, one test's `set_threads(0)` could land
    /// mid-way through another's 1-thread leg and make the determinism
    /// comparison vacuous.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// The whole point of the ordered per-sample reduction: training is
    /// bitwise identical at 1 and 4 worker threads.
    #[test]
    fn training_is_bitwise_identical_across_thread_counts() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 48,
                test: 8,
                seed: 21,
            },
        );
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 2e-3,
            seed: 5,
            verbose: false,
        };
        let run = |threads: usize| {
            par::set_threads(threads);
            let mut rng = TensorRng::from_seed(172);
            let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
            let report = train(&mut model, &pair.train, &cfg);
            par::set_threads(0);
            let weights: Vec<f32> = model
                .params_mut()
                .into_iter()
                .flat_map(|p| p.value.data().to_vec())
                .collect();
            (report, weights)
        };
        let (rep1, w1) = run(1);
        let (rep4, w4) = run(4);
        assert_eq!(rep1.epoch_losses, rep4.epoch_losses);
        assert_eq!(rep1.train_accuracy, rep4.train_accuracy);
        assert_eq!(w1, w4, "weights must match bit for bit");
    }

    #[test]
    fn evaluate_clean_matches_serial_evaluate() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 20,
                test: 30,
                seed: 9,
            },
        );
        let mut rng = TensorRng::from_seed(173);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let serial = evaluate(&mut model, &pair.test, &mut NoInjection);
        par::set_threads(4);
        let parallel = evaluate_clean(&model, &pair.test);
        par::set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 1,
                test: 0,
                seed: 1,
            },
        );
        let mut rng = TensorRng::from_seed(171);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        assert_eq!(evaluate(&mut model, &pair.test, &mut NoInjection), 0.0);
        assert_eq!(evaluate_clean(&model, &pair.test), 0.0);
    }
}
