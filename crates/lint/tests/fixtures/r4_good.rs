// Fixture: hooked, delegating, private, and config-exempt functions
// all pass R4 (linted as `tensor::ops::gemm`).

pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32]) {
    trace_gemm(a.len(), b.len());
    for (i, slot) in c.iter_mut().enumerate() {
        *slot = a[i % a.len()] * b[i % b.len()];
    }
}

pub fn gemm_nt_over(a: &[f32], b: &[f32], c: &mut [f32]) {
    // Delegation counts: gemm_nt is on the [traced] delegates list.
    gemm_nt(a, b, c);
}

pub fn gemm_raw(a: &[f32], c: &mut [f32]) {
    // Deliberately unhooked; the fixture config lists this function
    // under [traced] exempt (the perf-baseline pattern).
    c.copy_from_slice(a);
}

fn trace_gemm(_m: usize, _n: usize) {}

fn private_helper(x: f32) -> f32 {
    x * 2.0
}

pub fn consume(a: &[f32], b: &[f32], c: &mut [f32]) {
    // Not matched by the fixture config's `gemm_*` pattern.
    gemm_nt(a, b, c);
    let _ = private_helper(1.0);
}
