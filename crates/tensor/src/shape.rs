//! Shape utilities: element counts, row-major strides and index arithmetic.

use crate::error::TensorError;

/// A lightweight owned shape wrapper offering common shape queries.
///
/// Most of the crate passes `&[usize]` directly; `Shape` exists for
/// call-sites that want to carry a shape around with its helper methods
/// (e.g. model-graph code describing layer geometry).
///
/// # Example
///
/// ```
/// use redcane_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar shape).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.0)
    }

    /// Consumes the wrapper and returns the underlying dims.
    pub fn into_inner(self) -> Vec<usize> {
        self.0
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// Computes row-major (C-order) strides for `shape`.
///
/// The last axis is contiguous (stride 1). An empty shape yields an empty
/// stride vector.
///
/// # Example
///
/// ```
/// use redcane_tensor::strides_for;
/// assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// assert_eq!(strides_for(&[]), Vec::<usize>::new());
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Converts a multi-dimensional index into a flat row-major offset.
///
/// Returns an error if the index rank differs from the shape rank or any
/// component is out of bounds.
pub(crate) fn flat_index(shape: &[usize], index: &[usize]) -> Result<usize, TensorError> {
    if index.len() != shape.len() {
        return Err(TensorError::RankMismatch {
            expected: shape.len(),
            got: index.len(),
            op: "index",
        });
    }
    let mut flat = 0usize;
    let mut stride = 1usize;
    for axis in (0..shape.len()).rev() {
        if index[axis] >= shape[axis] {
            return Err(TensorError::AxisOutOfRange {
                axis: index[axis],
                ndim: shape[axis],
            });
        }
        flat += index[axis] * stride;
        stride *= shape[axis];
    }
    Ok(flat)
}

/// Total number of elements described by `shape`.
pub(crate) fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[4]), vec![1]);
        assert_eq!(strides_for(&[2, 3]), vec![3, 1]);
        assert_eq!(strides_for(&[5, 1, 2]), vec![2, 2, 1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let shape = [2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let flat = flat_index(&shape, &[i, j, k]).unwrap();
                    assert!(flat < 24);
                    assert!(seen.insert(flat), "duplicate flat index {flat}");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn flat_index_rejects_bad_rank() {
        assert!(flat_index(&[2, 2], &[1]).is_err());
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        assert!(flat_index(&[2, 2], &[2, 0]).is_err());
    }

    #[test]
    fn shape_wrapper_queries() {
        let s = Shape::new(vec![3, 5]);
        assert_eq!(s.ndim(), 2);
        assert_eq!(s.num_elements(), 15);
        assert_eq!(s.dims(), &[3, 5]);
        assert_eq!(s.to_string(), "[3, 5]");
        assert_eq!(s.clone().into_inner(), vec![3, 5]);
        let from_slice: Shape = (&[3usize, 5][..]).into();
        assert_eq!(from_slice, s);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }
}
