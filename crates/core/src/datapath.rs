//! Heterogeneous-datapath evaluation: per-site multiplier assignments
//! and the backend trait unifying noise-predicted and measured
//! accuracy.
//!
//! The paper's end product (Step 6) is a *heterogeneous* approximate
//! design — a different multiplier per layer group. Two questions can
//! be asked of such a design:
//!
//! 1. **Predicted** — what accuracy does the Gaussian noise model
//!    (Sec. III-C) forecast when every operation carries its selected
//!    component's `(NA, NM)`? ([`NoisePredicted`])
//! 2. **Measured** — what accuracy does the real 8-bit integer
//!    datapath achieve when every MAC multiply actually runs through
//!    the selected components' behavioral models?
//!    (`redcane_qdp::QuantMeasured`)
//!
//! Both answers are evaluations of the same object — a
//! [`DatapathAssignment`] mapping the generic `(layer, op kind,
//! in-routing)` site keys (the same keys calibration ranges use) to
//! multiplier component names — so both live behind one trait,
//! [`AccuracyBackend`]. Closing the prediction-vs-ground-truth loop
//! for a full heterogeneous design is then one assignment evaluated on
//! two backends.

use std::collections::BTreeMap;

use redcane_axmul::error_stats::InputDistribution;
use redcane_axmul::library::MultiplierLibrary;
use redcane_capsnet::inject::OpKind;
use redcane_capsnet::{evaluate, CapsModel};
use redcane_datasets::Dataset;

use crate::groups::Group;
use crate::noise::{NoiseModel, NoiseTarget, PerSiteNoiseInjector};
use crate::selection::{ApproxDesign, Assignment};

/// A datapath site: `(layer name, operation kind, inside routing?)` —
/// the same key calibration ranges are stored under.
pub type SiteKey = (String, OpKind, bool);

/// Which multiplier component serves each operation site of the
/// datapath — the executable form of an approximate design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathAssignment {
    /// Every site runs the same component (the paper's single-component
    /// sweeps, and the exact baseline).
    Uniform(String),
    /// A different component per site key; sites absent from the map
    /// are **unassigned** and make evaluation fail loudly rather than
    /// silently falling back to anything.
    PerSite(BTreeMap<SiteKey, String>),
}

impl DatapathAssignment {
    /// A uniform assignment of one component to every site.
    pub fn uniform(component: impl Into<String>) -> Self {
        DatapathAssignment::Uniform(component.into())
    }

    /// An empty per-site assignment; populate with
    /// [`DatapathAssignment::assign`].
    pub fn per_site() -> Self {
        DatapathAssignment::PerSite(BTreeMap::new())
    }

    /// Assigns `component` to one site.
    ///
    /// # Panics
    ///
    /// Panics on a [`DatapathAssignment::Uniform`] assignment — a
    /// uniform assignment has no site structure to refine; start from
    /// [`DatapathAssignment::per_site`] instead.
    pub fn assign(
        &mut self,
        layer: impl Into<String>,
        kind: OpKind,
        in_routing: bool,
        component: impl Into<String>,
    ) {
        match self {
            DatapathAssignment::PerSite(map) => {
                map.insert((layer.into(), kind, in_routing), component.into());
            }
            DatapathAssignment::Uniform(_) => {
                // lint: allow(panic) — documented API contract ("# Panics"): a uniform assignment has no site structure to refine
                panic!("cannot add per-site entries to a uniform assignment")
            }
        }
    }

    /// The component assigned to a site, if any.
    pub fn component_for(&self, layer: &str, kind: OpKind, in_routing: bool) -> Option<&str> {
        match self {
            DatapathAssignment::Uniform(c) => Some(c.as_str()),
            DatapathAssignment::PerSite(map) => map
                .get(&(layer.to_string(), kind, in_routing))
                .map(String::as_str),
        }
    }

    /// Distinct component names the assignment uses, sorted — the set a
    /// LUT cache must tabulate.
    pub fn component_names(&self) -> Vec<&str> {
        match self {
            DatapathAssignment::Uniform(c) => vec![c.as_str()],
            DatapathAssignment::PerSite(map) => {
                let mut names: Vec<&str> = map.values().map(String::as_str).collect();
                names.sort_unstable();
                names.dedup();
                names
            }
        }
    }

    /// Per-site entries in deterministic (sorted-key) order; a uniform
    /// assignment has none.
    pub fn sites(&self) -> Vec<(&str, OpKind, bool, &str)> {
        match self {
            DatapathAssignment::Uniform(_) => Vec::new(),
            DatapathAssignment::PerSite(map) => map
                .iter()
                .map(|((layer, kind, routing), c)| (layer.as_str(), *kind, *routing, c.as_str()))
                .collect(),
        }
    }

    /// Bridges a Step-6 [`ApproxDesign`] to its executable site map.
    ///
    /// Each `(layer, group)` assignment expands to the site keys its
    /// group's operations occupy: MAC outputs exist both outside
    /// routing (convolution / vote GEMMs) and inside it (the routing
    /// weighted sum), activations both outside (ReLU / squash) and
    /// inside (the squashed routing capsules), while softmax and the
    /// logits update only exist inside routing.
    pub fn from_design(design: &ApproxDesign) -> Self {
        Self::from_assignments(&design.assignments)
    }

    /// [`DatapathAssignment::from_design`] over raw assignment rows.
    pub fn from_assignments(assignments: &[Assignment]) -> Self {
        let mut out = DatapathAssignment::per_site();
        for a in assignments {
            let kind = a.group.op_kind();
            match a.group {
                Group::MacOutputs | Group::Activations => {
                    out.assign(a.layer.clone(), kind, false, a.component.clone());
                    out.assign(a.layer.clone(), kind, true, a.component.clone());
                }
                Group::Softmax | Group::LogitsUpdate => {
                    out.assign(a.layer.clone(), kind, true, a.component.clone());
                }
            }
        }
        out
    }
}

/// Why a backend could not evaluate an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The assignment names a component the backend has no
    /// characterization / lookup table for.
    UnknownComponent {
        /// The unresolvable component name.
        component: String,
    },
    /// A site the datapath executes has no assigned component.
    UnassignedSite {
        /// Layer of the unassigned site.
        layer: String,
        /// Operation kind of the unassigned site.
        kind: OpKind,
        /// Whether the site lies inside dynamic routing.
        in_routing: bool,
    },
    /// The backend was prepared for a different model than it was asked
    /// to evaluate.
    ModelMismatch {
        /// The model the backend was built from.
        expected: String,
        /// The model passed to `evaluate`.
        got: String,
    },
    /// A `(layer, kind)` pair carries different components inside and
    /// outside routing — a split the noise model's injection targets
    /// cannot represent (they match by layer and kind only).
    RoutingConflict {
        /// Layer of the conflicting pair.
        layer: String,
        /// Operation kind of the conflicting pair.
        kind: OpKind,
        /// Component assigned outside routing.
        outside: String,
        /// Component assigned inside routing.
        inside: String,
    },
    /// Lowering or calibration failed (measured backend).
    Lowering {
        /// Human-readable cause.
        message: String,
    },
    /// A site's multiplier is dead under the active fault plan and the
    /// fail-soft fallback was not enabled (fault-measured backend).
    DeadSite {
        /// Layer of the dead site.
        layer: String,
        /// Operation kind of the dead site.
        kind: OpKind,
        /// Whether the site lies inside dynamic routing.
        in_routing: bool,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnknownComponent { component } => {
                write!(f, "no characterization or LUT for component '{component}'")
            }
            BackendError::UnassignedSite {
                layer,
                kind,
                in_routing,
            } => write!(
                f,
                "no component assigned to site ({layer}, {kind}{})",
                if *in_routing { ", in routing" } else { "" }
            ),
            BackendError::ModelMismatch { expected, got } => {
                write!(
                    f,
                    "backend prepared for {expected} but asked to evaluate {got}"
                )
            }
            BackendError::RoutingConflict {
                layer,
                kind,
                outside,
                inside,
            } => write!(
                f,
                "({layer}, {kind}) assigns {outside} outside routing but {inside} inside: \
                 noise injection cannot split a (layer, kind) pair by routing"
            ),
            BackendError::Lowering { message } => write!(f, "cannot lower model: {message}"),
            BackendError::DeadSite {
                layer,
                kind,
                in_routing,
            } => write!(
                f,
                "site ({layer}, {kind}{}) is dead under the active fault plan; \
                 enable fail-soft to fall back to the exact multiplier",
                if *in_routing { ", in routing" } else { "" }
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Evaluates the accuracy of a model under a heterogeneous datapath
/// assignment.
///
/// Two implementations close the paper's validation loop:
/// [`NoisePredicted`] (the Gaussian noise forecast) and
/// `redcane_qdp::QuantMeasured` (ground truth on the 8-bit integer
/// kernels). Anything comparing the two — Step-6 validation, the `qdp`
/// bench — goes through this trait so predicted and measured numbers
/// are produced by interchangeable code paths.
pub trait AccuracyBackend {
    /// Stable backend name for reports.
    fn name(&self) -> &'static str;

    /// Classification accuracy of `model` over `data` with every
    /// operation served per `assignment`.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the assignment names unknown components,
    /// leaves datapath sites unassigned, or does not match the model
    /// the backend was prepared for.
    fn evaluate<M: CapsModel + Clone + Send + Sync>(
        &self,
        model: &M,
        data: &Dataset,
        assignment: &DatapathAssignment,
    ) -> Result<f64, BackendError>;
}

/// The noise-predicted backend: today's Gaussian-injection path
/// (Sec. III-C) behind the [`AccuracyBackend`] trait, now accepting a
/// different `(NA, NM)` per site.
///
/// Holds a characterization table mapping component names to their
/// measured noise parameters. A [`DatapathAssignment::Uniform`]
/// assignment injects at the MAC-output group — the multiplies a
/// uniform component actually serves on the measured datapath — while a
/// per-site assignment builds a [`PerSiteNoiseInjector`] with each
/// site's own component noise (Step-6 validation).
#[derive(Debug, Clone)]
pub struct NoisePredicted {
    noise: BTreeMap<String, NoiseModel>,
    seed: u64,
}

impl NoisePredicted {
    /// An empty table; add components with
    /// [`NoisePredicted::with_component`].
    pub fn new(seed: u64) -> Self {
        NoisePredicted {
            noise: BTreeMap::new(),
            seed,
        }
    }

    /// Adds (or replaces) one component's characterized `(NM, NA)`.
    pub fn with_component(mut self, name: impl Into<String>, nm: f64, na: f64) -> Self {
        self.noise.insert(name.into(), NoiseModel::new(nm, na));
        self
    }

    /// Characterizes every component of `library` over `dist` — the
    /// full-library table Step 6 selects from.
    pub fn characterized(
        library: &MultiplierLibrary,
        dist: &InputDistribution,
        samples: usize,
        characterization_seed: u64,
        injection_seed: u64,
    ) -> Self {
        let mut backend = NoisePredicted::new(injection_seed);
        for (entry, np) in library.characterize_all(dist, samples, characterization_seed) {
            backend = backend.with_component(entry.name(), np.nm, np.na);
        }
        backend
    }

    /// The characterized noise for one component, if present.
    pub fn noise_for(&self, component: &str) -> Option<NoiseModel> {
        self.noise.get(component).copied()
    }

    fn model_for(&self, component: &str) -> Result<NoiseModel, BackendError> {
        self.noise_for(component)
            .ok_or_else(|| BackendError::UnknownComponent {
                component: component.to_string(),
            })
    }

    /// The `(target, noise)` pairs an assignment expands to, in
    /// deterministic order.
    ///
    /// The noise model cannot distinguish in-routing from non-routing
    /// sites of one `(layer, kind)` — injection targets match by layer
    /// and kind only — so both keys must name the **same** component
    /// (as any design produced by
    /// [`DatapathAssignment::from_design`] does); an assignment that
    /// splits them is rejected rather than silently mispredicted.
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownComponent`] for components missing from
    /// the characterization table;
    /// [`BackendError::RoutingConflict`] when a `(layer, kind)` pair
    /// carries different components inside and outside routing.
    pub fn site_models(
        &self,
        assignment: &DatapathAssignment,
    ) -> Result<Vec<(NoiseTarget, NoiseModel)>, BackendError> {
        match assignment {
            DatapathAssignment::Uniform(component) => Ok(vec![(
                NoiseTarget::group(OpKind::MacOutput),
                self.model_for(component)?,
            )]),
            DatapathAssignment::PerSite(_) => {
                let mut out: Vec<(NoiseTarget, NoiseModel)> = Vec::new();
                let mut seen: Vec<(String, OpKind, String)> = Vec::new();
                for (layer, kind, _, component) in assignment.sites() {
                    // Sorted site order visits in_routing=false first.
                    if let Some((_, _, prev)) =
                        seen.iter().find(|(l, k, _)| l == layer && *k == kind)
                    {
                        if prev != component {
                            return Err(BackendError::RoutingConflict {
                                layer: layer.to_string(),
                                kind,
                                outside: prev.clone(),
                                inside: component.to_string(),
                            });
                        }
                        continue;
                    }
                    seen.push((layer.to_string(), kind, component.to_string()));
                    out.push((NoiseTarget::layer(kind, layer), self.model_for(component)?));
                }
                Ok(out)
            }
        }
    }
}

impl AccuracyBackend for NoisePredicted {
    fn name(&self) -> &'static str {
        "noise-predicted"
    }

    fn evaluate<M: CapsModel + Clone + Send + Sync>(
        &self,
        model: &M,
        data: &Dataset,
        assignment: &DatapathAssignment,
    ) -> Result<f64, BackendError> {
        let site_models = self.site_models(assignment)?;
        let mut injector = PerSiteNoiseInjector::new(site_models, self.seed);
        let mut validator = model.clone();
        Ok(evaluate(&mut validator, data, &mut injector))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{CapsNet, CapsNetConfig};
    use redcane_datasets::{generate, Benchmark, GenerateConfig};
    use redcane_tensor::TensorRng;

    fn asg(layer: &str, group: Group, component: &str) -> Assignment {
        Assignment {
            layer: layer.to_string(),
            group,
            tolerable_nm: 0.1,
            component: component.to_string(),
            component_noise: (0.0, 0.001),
            power_uw: 100.0,
            area_um2: 100.0,
        }
    }

    #[test]
    fn uniform_assignment_resolves_every_site() {
        let a = DatapathAssignment::uniform("mul8u_1JFF");
        assert_eq!(
            a.component_for("Conv1", OpKind::MacOutput, false),
            Some("mul8u_1JFF")
        );
        assert_eq!(
            a.component_for("anything", OpKind::LogitsUpdate, true),
            Some("mul8u_1JFF")
        );
        assert_eq!(a.component_names(), vec!["mul8u_1JFF"]);
        assert!(a.sites().is_empty());
    }

    #[test]
    fn per_site_assignment_distinguishes_routing_and_reports_gaps() {
        let mut a = DatapathAssignment::per_site();
        a.assign("ClassCaps", OpKind::MacOutput, false, "mul8u_NGR");
        a.assign("ClassCaps", OpKind::MacOutput, true, "mul8u_QKX");
        assert_eq!(
            a.component_for("ClassCaps", OpKind::MacOutput, false),
            Some("mul8u_NGR")
        );
        assert_eq!(
            a.component_for("ClassCaps", OpKind::MacOutput, true),
            Some("mul8u_QKX")
        );
        assert_eq!(a.component_for("Conv1", OpKind::MacOutput, false), None);
        assert_eq!(a.component_names(), vec!["mul8u_NGR", "mul8u_QKX"]);
    }

    #[test]
    #[should_panic(expected = "uniform assignment")]
    fn uniform_assignment_rejects_site_entries() {
        let mut a = DatapathAssignment::uniform("mul8u_1JFF");
        a.assign("Conv1", OpKind::MacOutput, false, "mul8u_QKX");
    }

    #[test]
    fn from_design_expands_groups_to_their_site_keys() {
        let assignments = vec![
            asg("Conv1", Group::MacOutputs, "mul8u_NGR"),
            asg("ClassCaps", Group::MacOutputs, "mul8u_DM1"),
            asg("ClassCaps", Group::Softmax, "mul8u_QKX"),
            asg("ClassCaps", Group::LogitsUpdate, "mul8u_JV3"),
            asg("Conv1", Group::Activations, "mul8u_1JFF"),
        ];
        let a = DatapathAssignment::from_assignments(&assignments);
        // MAC outputs cover both the GEMM and the routing weighted sum.
        assert_eq!(
            a.component_for("ClassCaps", OpKind::MacOutput, false),
            Some("mul8u_DM1")
        );
        assert_eq!(
            a.component_for("ClassCaps", OpKind::MacOutput, true),
            Some("mul8u_DM1")
        );
        // Routing-only groups map to in-routing keys only.
        assert_eq!(
            a.component_for("ClassCaps", OpKind::LogitsUpdate, true),
            Some("mul8u_JV3")
        );
        assert_eq!(
            a.component_for("ClassCaps", OpKind::LogitsUpdate, false),
            None
        );
        assert_eq!(
            a.component_for("ClassCaps", OpKind::Softmax, true),
            Some("mul8u_QKX")
        );
        // Unlisted layers stay unassigned.
        assert_eq!(
            a.component_for("PrimaryCaps", OpKind::MacOutput, false),
            None
        );
        let names = a.component_names();
        assert!(names.contains(&"mul8u_NGR") && names.contains(&"mul8u_JV3"));
    }

    #[test]
    fn noise_predicted_uniform_targets_the_mac_output_group() {
        let backend = NoisePredicted::new(7).with_component("mul8u_NGR", 0.004, 0.0001);
        let models = backend
            .site_models(&DatapathAssignment::uniform("mul8u_NGR"))
            .unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].0, NoiseTarget::group(OpKind::MacOutput));
        assert_eq!(models[0].1.nm, 0.004);
        let err = backend
            .site_models(&DatapathAssignment::uniform("mul8u_missing"))
            .unwrap_err();
        assert!(
            matches!(err, BackendError::UnknownComponent { ref component } if component == "mul8u_missing")
        );
    }

    #[test]
    fn noise_predicted_per_site_builds_one_target_per_layer_kind() {
        let backend = NoisePredicted::new(7)
            .with_component("mul8u_NGR", 0.004, 0.0)
            .with_component("mul8u_QKX", 0.3, -0.1);
        let assignments = vec![
            asg("Conv1", Group::MacOutputs, "mul8u_NGR"),
            asg("ClassCaps", Group::Softmax, "mul8u_QKX"),
        ];
        let a = DatapathAssignment::from_assignments(&assignments);
        let models = backend.site_models(&a).unwrap();
        // (Conv1, MacOutput) collapses its routing/non-routing keys.
        assert_eq!(models.len(), 2);
        assert!(models
            .iter()
            .any(|(t, m)| *t == NoiseTarget::layer(OpKind::MacOutput, "Conv1") && m.nm == 0.004));
        assert!(models
            .iter()
            .any(|(t, m)| *t == NoiseTarget::layer(OpKind::Softmax, "ClassCaps") && m.nm == 0.3));
    }

    /// An assignment that splits a `(layer, kind)` pair by routing flag
    /// cannot be represented by injection targets — it must error, not
    /// silently predict with only one of the two components.
    #[test]
    fn noise_predicted_rejects_split_routing_assignments() {
        let backend = NoisePredicted::new(7)
            .with_component("mul8u_1JFF", 0.0, 0.0)
            .with_component("mul8u_QKX", 0.3, -0.1);
        let mut split = DatapathAssignment::per_site();
        split.assign("ClassCaps", OpKind::MacOutput, false, "mul8u_1JFF");
        split.assign("ClassCaps", OpKind::MacOutput, true, "mul8u_QKX");
        let err = backend.site_models(&split).unwrap_err();
        assert_eq!(
            err,
            BackendError::RoutingConflict {
                layer: "ClassCaps".to_string(),
                kind: OpKind::MacOutput,
                outside: "mul8u_1JFF".to_string(),
                inside: "mul8u_QKX".to_string(),
            }
        );
        // Agreeing keys are fine.
        let mut agreeing = DatapathAssignment::per_site();
        agreeing.assign("ClassCaps", OpKind::MacOutput, false, "mul8u_QKX");
        agreeing.assign("ClassCaps", OpKind::MacOutput, true, "mul8u_QKX");
        assert_eq!(backend.site_models(&agreeing).unwrap().len(), 1);
    }

    #[test]
    fn noise_predicted_exact_uniform_reproduces_clean_accuracy() {
        let pair = generate(
            Benchmark::MnistLike,
            &GenerateConfig {
                train: 1,
                test: 12,
                seed: 11,
            },
        );
        let mut rng = TensorRng::from_seed(900);
        let model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let backend = NoisePredicted::new(3).with_component("mul8u_1JFF", 0.0, 0.0);
        let acc = backend
            .evaluate(
                &model,
                &pair.test,
                &DatapathAssignment::uniform("mul8u_1JFF"),
            )
            .unwrap();
        let clean = redcane_capsnet::evaluate_clean(&model, &pair.test);
        assert_eq!(acc, clean, "zero noise must equal the clean evaluation");
    }
}
