//! [`QModel`]: end-to-end quantized inference for **any** capsule
//! architecture, assembled from the generic lowering pipeline and
//! executed under a heterogeneous per-site multiplier assignment.
//!
//! A `QModel` is a small dataflow program over the quantized layer
//! primitives of [`crate::qlayers`] plus the float glue an accelerator
//! computes exactly (ReLU, residual join + squash, capsule→unit
//! reordering, concatenation, capsule lengths). Lowering walks a
//! trained float model's layer graph, lowers every layer through
//! [`LowerToQuant`](crate::LowerToQuant) with the calibrated
//! [`QuantRanges`], and emits steps that remember their **site** — the
//! same `(layer, op kind, in-routing)` keys the ranges are stored
//! under. Execution then resolves, per site, which multiplier serves
//! its MACs from a [`DatapathAssignment`] and a [`LutCache`] (one
//! shared 64 KiB table per distinct component), so a single lowered
//! model runs anything from the uniform exact baseline to the
//! methodology's full heterogeneous Step-6 design.
//!
//! Both of the paper's architectures lower onto the same step set:
//! CapsNet is 4 steps, the 17-layer DeepCaps (Caps3D routing included)
//! is 24 — no per-architecture execution code.

use std::sync::Arc;

use redcane::datapath::{BackendError, DatapathAssignment, SiteKey};
use redcane::faults::{FaultModel, FaultPlan, FaultTarget};
use redcane_axmul::{LutCache, MulLut};
use redcane_capsnet::inject::OpKind;
use redcane_capsnet::model::caps_to_units;
use redcane_capsnet::squash::{caps_lengths, squash_caps};
use redcane_capsnet::{CapsModel, CapsNet, DeepCaps};
use redcane_datasets::Dataset;
use redcane_tensor::Tensor;
use redcane_trace as trace;

use crate::faults::{faulted_site_lut, AccFault, MacView};
use crate::lower::{calibrate_ranges, LowerError, LowerToQuant, QuantRanges};
use crate::qlayers::{QClassCaps, QConv2d, QConvCaps2d, QConvCaps3d};

/// Samples fused per wide GEMM when evaluating a dataset
/// ([`evaluate_quantized`]); bounds the fused-column scratch while
/// keeping the batch wide enough to amortize tile setup.
const EVAL_BATCH: usize = 16;

/// One step of a quantized dataflow program. `src`/`a`/`b` index the
/// value produced by that step of the program (step 0's input is the
/// network input, value 0; step `i` produces value `i + 1`). MAC steps
/// carry `site`, the layer name their multiplier sites resolve under.
#[derive(Debug, Clone)]
pub enum QStep {
    /// Plain convolution (+ optional ReLU) on the quantized GEMM.
    Conv {
        /// Site (layer) name of the convolution's MACs.
        site: String,
        /// The quantized convolution.
        conv: QConv2d,
        /// Apply a float ReLU to the output (SFU).
        relu: bool,
        /// Input value index.
        src: usize,
    },
    /// 2-D conv-caps (conv on codes, optional float squash).
    CapsConv {
        /// Site (layer) name of the convolution's MACs.
        site: String,
        /// The quantized conv-caps layer.
        layer: QConvCaps2d,
        /// Input value index.
        src: usize,
    },
    /// Routing 3-D conv-caps (votes + routing MACs on codes).
    Caps3d {
        /// Site (layer) name of the vote and routing MACs.
        site: String,
        /// The quantized routing conv-caps layer.
        layer: QConvCaps3d,
        /// Input value index.
        src: usize,
    },
    /// Residual join: elementwise add then per-capsule squash (float).
    AddSquash {
        /// Left operand value index.
        a: usize,
        /// Right operand value index.
        b: usize,
    },
    /// `[C, D, H, W]` capsules → `[C·H·W, D]` units (pure reorder).
    ToUnits {
        /// Input value index.
        src: usize,
    },
    /// Concatenate two unit tensors along the capsule axis.
    ConcatUnits {
        /// First operand value index.
        a: usize,
        /// Second operand value index.
        b: usize,
    },
    /// Fully-connected class capsules (votes + routing MACs on codes).
    ClassCaps {
        /// Site (layer) name of the vote and routing MACs.
        site: String,
        /// The quantized class-capsule layer.
        layer: QClassCaps,
        /// Input value index.
        src: usize,
    },
}

impl QStep {
    /// Span label for the profiler: the MAC site name where the step
    /// has one, the glue-step kind otherwise.
    fn span_name(&self) -> &str {
        match self {
            QStep::Conv { site, .. }
            | QStep::CapsConv { site, .. }
            | QStep::Caps3d { site, .. }
            | QStep::ClassCaps { site, .. } => site,
            QStep::AddSquash { .. } => "add_squash",
            QStep::ToUnits { .. } => "to_units",
            QStep::ConcatUnits { .. } => "concat_units",
        }
    }
}

/// One MAC site's resolved execution state: the table serving its
/// multiplies (base, or a faulted view of it) plus an optional
/// accumulator fault. Owned (`Arc` for the shared base tables) because
/// faulted views are derived per resolution, not held by the cache.
#[derive(Clone)]
pub(crate) struct MacExec {
    lut: Arc<MulLut>,
    acc: Option<AccFault>,
}

impl MacExec {
    fn view(&self) -> MacView<'_> {
        MacView {
            lut: &self.lut,
            acc: self.acc.as_ref(),
        }
    }
}

/// A step's multiplier sites, resolved from an assignment (and,
/// optionally, a fault plan).
#[derive(Clone)]
pub(crate) enum StepExec {
    /// No MACs in this step (pure float glue).
    None,
    /// One MAC site: the convolution / vote GEMM.
    Mac(MacExec),
    /// A routing step's three sites: vote GEMM, weighted sum,
    /// agreement dot.
    Routing {
        mac: MacExec,
        sum: MacExec,
        agree: MacExec,
    },
}

/// A fully resolved program: per-step execution state plus the sites
/// the fail-soft policy downgraded to the exact multiplier because the
/// fault plan left them dead.
pub(crate) struct Resolution {
    pub(crate) execs: Vec<StepExec>,
    pub(crate) downgraded: Vec<SiteKey>,
}

/// Per-site resolution policy shared by every step: assignment lookup,
/// fault application, and dead-site handling.
struct Resolver<'a> {
    assignment: &'a DatapathAssignment,
    luts: &'a LutCache,
    plan: Option<&'a FaultPlan>,
    fail_soft: bool,
    downgraded: Vec<SiteKey>,
}

impl Resolver<'_> {
    fn exec_for(
        &mut self,
        site: &str,
        kind: OpKind,
        in_routing: bool,
    ) -> Result<MacExec, BackendError> {
        let component = self
            .assignment
            .component_for(site, kind, in_routing)
            .ok_or(BackendError::UnassignedSite {
                layer: site.to_string(),
                kind,
                in_routing,
            })?;
        let base = self
            .luts
            .get_arc(component)
            .ok_or_else(|| BackendError::UnknownComponent {
                component: component.to_string(),
            })?;
        let Some(fault) = self
            .plan
            .and_then(|p| p.active_fault_for(site, kind, in_routing))
        else {
            return Ok(MacExec {
                lut: base,
                acc: None,
            });
        };
        if trace::enabled() {
            trace::add(trace::Counter::FaultSitesApplied, 1);
        }
        let seed = self
            .plan
            // lint: allow(panic) — guarded: a fault backend is only built with an installed plan
            .expect("fault implies plan")
            .site_seed(site, kind, in_routing);
        // Weight-code and (non-dead) accumulator faults don't touch the
        // table: the former is pre-applied to the stored codes by
        // [`QModel::with_fault_plan`], the latter rides along as an
        // [`AccFault`].
        if !matches!(fault.model, FaultModel::DeadOutput) {
            match fault.target {
                FaultTarget::WeightCodes => {
                    return Ok(MacExec {
                        lut: base,
                        acc: None,
                    });
                }
                FaultTarget::Accumulator => {
                    return Ok(MacExec {
                        lut: base,
                        acc: Some(AccFault::new(fault.model, seed)),
                    });
                }
                FaultTarget::Multiplier | FaultTarget::ActivationCodes => {}
            }
        }
        let faulted = faulted_site_lut(&base, fault, seed);
        if !faulted.is_dead() {
            return Ok(MacExec {
                lut: Arc::new(faulted),
                acc: None,
            });
        }
        // The site cannot produce signal. Fail-soft swaps in the exact
        // multiplier (the accelerator's fallback array) and reports the
        // downgrade; strict mode refuses to run.
        if self.fail_soft {
            self.downgraded.push((site.to_string(), kind, in_routing));
            Ok(MacExec {
                lut: Arc::new(MulLut::exact()),
                acc: None,
            })
        } else {
            Err(BackendError::DeadSite {
                layer: site.to_string(),
                kind,
                in_routing,
            })
        }
    }
}

/// A trained capsule model lowered onto the quantized datapath: same
/// weights, but every MAC runs on 8-bit codes through per-site
/// pluggable multiplier models. Architecture-generic — built from any
/// [`CapsModel`] with a registered lowering plus calibrated
/// [`QuantRanges`].
#[derive(Debug, Clone)]
pub struct QModel {
    arch: String,
    input_shape: [usize; 3],
    num_classes: usize,
    steps: Vec<QStep>,
}

impl QModel {
    /// Lowers a trained model onto the quantized datapath with
    /// pre-computed calibration ranges.
    ///
    /// Dispatches on the concrete architecture behind the trait object
    /// ([`CapsModel::as_any`]); each registered architecture only
    /// contributes a step-graph builder — the per-layer lowering and
    /// the execution are shared.
    ///
    /// # Errors
    ///
    /// [`LowerError::MissingRange`] when a layer's site was never
    /// calibrated, [`LowerError::Quantization`] on non-finite weights,
    /// or [`LowerError::UnsupportedArchitecture`] for a model without
    /// a registered lowering.
    pub fn lower(model: &dyn CapsModel, ranges: &QuantRanges) -> Result<Self, LowerError> {
        if let Some(m) = model.as_any().downcast_ref::<CapsNet>() {
            Self::lower_capsnet(m, ranges)
        } else if let Some(m) = model.as_any().downcast_ref::<DeepCaps>() {
            Self::lower_deepcaps(m, ranges)
        } else {
            Err(LowerError::UnsupportedArchitecture {
                model: model.name(),
            })
        }
    }

    /// Calibrates on `images` and lowers the model in one step.
    ///
    /// # Errors
    ///
    /// As [`QModel::lower`], plus [`LowerError::EmptyCalibration`]
    /// when `images` is empty.
    pub fn calibrated<'a>(
        model: &mut dyn CapsModel,
        images: impl IntoIterator<Item = &'a Tensor>,
    ) -> Result<Self, LowerError> {
        let ranges = calibrate_ranges(model, images)?;
        Self::lower(&*model, &ranges)
    }

    fn lower_capsnet(model: &CapsNet, ranges: &QuantRanges) -> Result<Self, LowerError> {
        let cfg = model.config();
        let steps = vec![
            QStep::Conv {
                site: "Conv1".to_string(),
                conv: model.conv1().lower_to_quant("Conv1", ranges)?,
                relu: true,
                src: 0,
            },
            QStep::CapsConv {
                site: model.primary().name().to_string(),
                layer: model
                    .primary()
                    .lower_to_quant(model.primary().name(), ranges)?,
                src: 1,
            },
            QStep::ToUnits { src: 2 },
            QStep::ClassCaps {
                site: model.class_caps().name().to_string(),
                layer: model
                    .class_caps()
                    .lower_to_quant(model.class_caps().name(), ranges)?,
                src: 3,
            },
        ];
        Ok(QModel {
            arch: model.name(),
            input_shape: [cfg.input_channels, cfg.input_hw, cfg.input_hw],
            num_classes: cfg.class_caps,
            steps,
        })
    }

    fn lower_deepcaps(model: &DeepCaps, ranges: &QuantRanges) -> Result<Self, LowerError> {
        let cfg = model.config();
        let mut steps = Vec::new();
        // Step i produces value i + 1; value 0 is the network input.
        let push = |steps: &mut Vec<QStep>, step: QStep| -> usize {
            steps.push(step);
            steps.len()
        };
        let caps_conv = |layer: &redcane_capsnet::layers::ConvCaps2d,
                         src: usize|
         -> Result<QStep, LowerError> {
            Ok(QStep::CapsConv {
                site: layer.name().to_string(),
                layer: layer.lower_to_quant(layer.name(), ranges)?,
                src,
            })
        };
        let mut t = push(&mut steps, caps_conv(model.stem(), 0)?);
        for cell in model.cells() {
            let a = push(&mut steps, caps_conv(cell.lead(), t)?);
            let b = push(&mut steps, caps_conv(cell.mid(), a)?);
            let main = push(&mut steps, caps_conv(cell.tail(), b)?);
            let skip = push(&mut steps, caps_conv(cell.skip(), a)?);
            t = push(&mut steps, QStep::AddSquash { a: main, b: skip });
        }
        let a = push(&mut steps, caps_conv(model.last_lead(), t)?);
        let b = push(&mut steps, caps_conv(model.last_mid(), a)?);
        let c3 = push(
            &mut steps,
            QStep::Caps3d {
                site: model.caps3d().name().to_string(),
                layer: model
                    .caps3d()
                    .lower_to_quant(model.caps3d().name(), ranges)?,
                src: b,
            },
        );
        let skip = push(&mut steps, caps_conv(model.last_skip(), a)?);
        let u3 = push(&mut steps, QStep::ToUnits { src: c3 });
        let us = push(&mut steps, QStep::ToUnits { src: skip });
        let u = push(&mut steps, QStep::ConcatUnits { a: u3, b: us });
        push(
            &mut steps,
            QStep::ClassCaps {
                site: model.class_caps().name().to_string(),
                layer: model
                    .class_caps()
                    .lower_to_quant(model.class_caps().name(), ranges)?,
                src: u,
            },
        );
        Ok(QModel {
            arch: model.name(),
            input_shape: [cfg.input_channels, cfg.input_hw, cfg.input_hw],
            num_classes: cfg.class_caps,
            steps,
        })
    }

    /// The lowered model's display name.
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The dataflow program (introspection / cost accounting).
    pub fn steps(&self) -> &[QStep] {
        &self.steps
    }

    /// Every multiplier site the program executes, in program order:
    /// `(layer, op kind, in-routing)` — the keys a
    /// [`DatapathAssignment`] must cover.
    pub fn multiply_sites(&self) -> Vec<(String, OpKind, bool)> {
        let mut out = Vec::new();
        for step in &self.steps {
            match step {
                QStep::Conv { site, .. } | QStep::CapsConv { site, .. } => {
                    out.push((site.clone(), OpKind::MacOutput, false));
                }
                QStep::Caps3d { site, .. } | QStep::ClassCaps { site, .. } => {
                    out.push((site.clone(), OpKind::MacOutput, false));
                    out.push((site.clone(), OpKind::MacOutput, true));
                    out.push((site.clone(), OpKind::LogitsUpdate, true));
                }
                QStep::AddSquash { .. } | QStep::ToUnits { .. } | QStep::ConcatUnits { .. } => {}
            }
        }
        out
    }

    /// Verifies that `assignment` covers every multiplier site of the
    /// program and that `luts` tabulates every named component.
    ///
    /// # Errors
    ///
    /// [`BackendError::UnassignedSite`] naming the first uncovered
    /// site, or [`BackendError::UnknownComponent`] for a component
    /// without a table.
    pub fn check_assignment(
        &self,
        assignment: &DatapathAssignment,
        luts: &LutCache,
    ) -> Result<(), BackendError> {
        self.resolve(assignment, luts).map(|_| ())
    }

    /// Resolves each step's multiplier tables from the assignment
    /// (fault-free path).
    fn resolve(
        &self,
        assignment: &DatapathAssignment,
        luts: &LutCache,
    ) -> Result<Resolution, BackendError> {
        self.resolve_with(assignment, luts, None, false)
    }

    /// Resolves each step's execution state from the assignment, with
    /// an optional fault plan layered over it. With `fail_soft`, sites
    /// the plan leaves dead (see [`MulLut::is_dead`]) fall back to the
    /// exact multiplier and are reported in
    /// [`Resolution::downgraded`]; otherwise they fail with
    /// [`BackendError::DeadSite`].
    pub(crate) fn resolve_with(
        &self,
        assignment: &DatapathAssignment,
        luts: &LutCache,
        plan: Option<&FaultPlan>,
        fail_soft: bool,
    ) -> Result<Resolution, BackendError> {
        let mut r = Resolver {
            assignment,
            luts,
            plan,
            fail_soft,
            downgraded: Vec::new(),
        };
        let execs = self
            .steps
            .iter()
            .map(|step| match step {
                QStep::Conv { site, .. } | QStep::CapsConv { site, .. } => {
                    Ok(StepExec::Mac(r.exec_for(site, OpKind::MacOutput, false)?))
                }
                QStep::Caps3d { site, .. } | QStep::ClassCaps { site, .. } => {
                    Ok(StepExec::Routing {
                        mac: r.exec_for(site, OpKind::MacOutput, false)?,
                        sum: r.exec_for(site, OpKind::MacOutput, true)?,
                        agree: r.exec_for(site, OpKind::LogitsUpdate, true)?,
                    })
                }
                QStep::AddSquash { .. } | QStep::ToUnits { .. } | QStep::ConcatUnits { .. } => {
                    Ok(StepExec::None)
                }
            })
            .collect::<Result<Vec<_>, BackendError>>()?;
        Ok(Resolution {
            execs,
            downgraded: r.downgraded,
        })
    }

    /// A copy of the model with `plan`'s **weight-code** faults burned
    /// into the stored 8-bit codes (zero-point-correction row sums
    /// recomputed — the correction adders read the same weight
    /// memory). All other fault targets are realized at resolution
    /// time; weight faults live in storage, so they need their own
    /// pre-faulted model. With no active weight fault this is a plain
    /// clone.
    pub fn with_fault_plan(&self, plan: &FaultPlan) -> QModel {
        let mut faulted = self.clone();
        for step in &mut faulted.steps {
            let site = match &*step {
                QStep::Conv { site, .. }
                | QStep::CapsConv { site, .. }
                | QStep::Caps3d { site, .. }
                | QStep::ClassCaps { site, .. } => site.clone(),
                QStep::AddSquash { .. } | QStep::ToUnits { .. } | QStep::ConcatUnits { .. } => {
                    continue;
                }
            };
            // Weight memory backs the (non-routing) MAC-output site;
            // routing sites hold no stored codes.
            let Some(fault) = plan.active_fault_for(&site, OpKind::MacOutput, false) else {
                continue;
            };
            if fault.target != FaultTarget::WeightCodes
                || matches!(fault.model, FaultModel::DeadOutput)
            {
                continue;
            }
            let seed = plan.site_seed(&site, OpKind::MacOutput, false);
            match step {
                QStep::Conv { conv, .. } => {
                    conv.fault_weight_codes(&fault.model, seed, 0);
                }
                QStep::CapsConv { layer, .. } => {
                    layer.fault_weight_codes(&fault.model, seed, 0);
                }
                QStep::Caps3d { layer, .. } => {
                    layer.fault_weight_codes(&fault.model, seed, 0);
                }
                QStep::ClassCaps { layer, .. } => {
                    layer.fault_weight_codes(&fault.model, seed, 0);
                }
                QStep::AddSquash { .. } | QStep::ToUnits { .. } | QStep::ConcatUnits { .. } => {
                    // lint: allow(panic) — unreachable: the match above consumes every glue step
                    unreachable!("glue steps were skipped above")
                }
            }
        }
        faulted
    }

    /// A deterministic sample of at most `max_len` quantized weight
    /// codes across every lowered layer, in program order — the
    /// empirical **weight-operand pool** for component
    /// characterization.
    pub fn weight_code_sample(&self, max_len: usize) -> Vec<u8> {
        let mut all: Vec<u8> = Vec::new();
        for step in &self.steps {
            match step {
                QStep::Conv { conv, .. } => all.extend_from_slice(conv.weight_codes()),
                QStep::CapsConv { layer, .. } => {
                    all.extend_from_slice(layer.conv().weight_codes());
                }
                QStep::Caps3d { layer, .. } => {
                    for conv in layer.convs() {
                        all.extend_from_slice(conv.weight_codes());
                    }
                }
                QStep::ClassCaps { layer, .. } => {
                    all.extend_from_slice(layer.votes().weight_codes());
                }
                QStep::AddSquash { .. } | QStep::ToUnits { .. } | QStep::ConcatUnits { .. } => {}
            }
        }
        if max_len == 0 {
            return Vec::new();
        }
        if all.len() <= max_len {
            return all;
        }
        let stride = all.len().div_ceil(max_len);
        all.into_iter().step_by(stride).collect()
    }

    /// Full quantized inference: returns the class-capsule lengths
    /// (`[num_classes]`), every MAC multiply served by the multiplier
    /// `assignment` resolves for its site.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when a multiplier site is unassigned or names a
    /// component absent from `luts`.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(
        &self,
        x: &Tensor,
        assignment: &DatapathAssignment,
        luts: &LutCache,
    ) -> Result<Tensor, BackendError> {
        let resolved = self.resolve(assignment, luts)?;
        Ok(self
            .forward_batch_resolved(&[x], &resolved.execs)
            .pop()
            // lint: allow(panic) — batch API contract: the executor returns one output per input sample
            .expect("one sample in, one out"))
    }

    /// Argmax class prediction under `assignment`.
    ///
    /// # Errors / Panics
    ///
    /// As [`QModel::forward`].
    pub fn predict(
        &self,
        x: &Tensor,
        assignment: &DatapathAssignment,
        luts: &LutCache,
    ) -> Result<usize, BackendError> {
        Ok(self
            .forward(x, assignment, luts)?
            .argmax()
            // lint: allow(panic) — capsule count is structurally nonzero, so lengths are non-empty
            .expect("non-empty lengths"))
    }

    /// Batched quantized inference: one program execution for the whole
    /// batch, with every convolution / vote step fusing its per-sample
    /// im2col columns into a single wide quantized GEMM (mirroring the
    /// float trainer's batch fusion). Bit-identical to per-sample
    /// [`QModel::forward`]; returns one length tensor per input.
    ///
    /// # Errors / Panics
    ///
    /// As [`QModel::forward`].
    pub fn forward_batch(
        &self,
        xs: &[&Tensor],
        assignment: &DatapathAssignment,
        luts: &LutCache,
    ) -> Result<Vec<Tensor>, BackendError> {
        let resolved = self.resolve(assignment, luts)?;
        Ok(self.forward_batch_resolved(xs, &resolved.execs))
    }

    /// The executor behind [`QModel::forward`] /
    /// [`QModel::forward_batch`]: values are per-sample columns of the
    /// dataflow program; MAC steps run fused across the batch, float
    /// glue runs per sample.
    pub(crate) fn forward_batch_resolved(
        &self,
        xs: &[&Tensor],
        resolved: &[StepExec],
    ) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        for x in xs {
            assert_eq!(x.shape(), self.input_shape, "QModel input");
        }
        let bsz = xs.len();
        let mut vals: Vec<Vec<Tensor>> = Vec::with_capacity(self.steps.len() + 1);
        vals.push(xs.iter().map(|x| (*x).clone()).collect());
        let _fwd = trace::span("qforward");
        for (step, exec) in self.steps.iter().zip(resolved) {
            let _step = trace::span(step.span_name());
            let ys: Vec<Tensor> = match (step, exec) {
                (
                    QStep::Conv {
                        conv, relu, src, ..
                    },
                    StepExec::Mac(m),
                ) => {
                    let inputs: Vec<&[f32]> = vals[*src].iter().map(|v| v.data()).collect();
                    let (h, w) = (vals[*src][0].shape()[1], vals[*src][0].shape()[2]);
                    conv.forward_batch_chw_view(&inputs, h, w, m.view())
                        .into_iter()
                        .map(|mut y| {
                            if *relu {
                                for v in y.data_mut() {
                                    *v = v.max(0.0);
                                }
                            }
                            y
                        })
                        .collect()
                }
                (QStep::CapsConv { layer, src, .. }, StepExec::Mac(m)) => {
                    let inputs: Vec<&Tensor> = vals[*src].iter().collect();
                    layer.forward_batch_view(&inputs, m.view())
                }
                (QStep::Caps3d { layer, src, .. }, StepExec::Routing { mac, sum, agree }) => {
                    let inputs: Vec<&Tensor> = vals[*src].iter().collect();
                    layer.forward_batch_view(&inputs, mac.view(), sum.view(), agree.view())
                }
                (QStep::ClassCaps { layer, src, .. }, StepExec::Routing { mac, sum, agree }) => {
                    let inputs: Vec<&Tensor> = vals[*src].iter().collect();
                    layer.forward_batch_view(&inputs, mac.view(), sum.view(), agree.view())
                }
                (QStep::AddSquash { a, b }, _) => (0..bsz)
                    .map(|bi| {
                        let sum = vals[*a][bi]
                            .add(&vals[*b][bi])
                            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                            .expect("residual shapes match");
                        let (c, d, h, w) = (
                            sum.shape()[0],
                            sum.shape()[1],
                            sum.shape()[2],
                            sum.shape()[3],
                        );
                        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                        let s3 = sum.into_reshaped(&[c, d, h * w]).expect("caps fold");
                        squash_caps(&s3)
                            .into_reshaped(&[c, d, h, w])
                            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                            .expect("spatial unfold")
                    })
                    .collect(),
                (QStep::ToUnits { src }, _) => vals[*src].iter().map(caps_to_units).collect(),
                (QStep::ConcatUnits { a, b }, _) => (0..bsz)
                    .map(|bi| {
                        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                        Tensor::concat(&[&vals[*a][bi], &vals[*b][bi]], 0).expect("unit concat")
                    })
                    .collect(),
                // lint: allow(panic) — unreachable: resolve() pairs every MAC step with its luts
                _ => unreachable!("resolve() pairs every MAC step with its luts"),
            };
            vals.push(ys);
        }
        // The last step produces the class capsules [J, D]; their
        // lengths are the network output, computed exactly as the
        // float models compute them.
        // lint: allow(panic) — resolve() rejects empty programs, so at least one step ran
        let last = vals.last().expect("at least one step");
        last.iter()
            .map(|v| {
                let (j, d) = (v.shape()[0], v.shape()[1]);
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                let v3 = v.reshape(&[j, d, 1]).expect("caps form");
                // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
                caps_lengths(&v3).into_reshaped(&[j]).expect("drop P")
            })
            .collect()
    }
}

/// A [`QModel`] pre-resolved against one [`DatapathAssignment`]: the
/// per-step multiplier tables are looked up **once** at construction,
/// so every subsequent forward pays zero assignment-resolution cost —
/// the handle a serving worker owns per (architecture × assignment)
/// pair.
///
/// `Clone` duplicates the lowered program (worker-owned weights) while
/// the resolved `MulLut` tables stay `Arc`-shared, so cloning one
/// prepared template per worker touches neither the [`LutCache`] nor
/// its hit counters. `Send + Sync`: all state is plain data plus
/// `Arc`s, asserted by a compile-time test.
#[derive(Clone)]
pub struct PreparedModel {
    model: QModel,
    execs: Vec<StepExec>,
}

impl PreparedModel {
    /// Resolves `assignment` over `model`'s multiplier sites against
    /// `luts` and captures the result.
    ///
    /// # Errors
    ///
    /// [`BackendError::UnassignedSite`] / [`BackendError::UnknownComponent`]
    /// exactly as [`QModel::forward`] would report them.
    pub fn new(
        model: QModel,
        assignment: &DatapathAssignment,
        luts: &LutCache,
    ) -> Result<Self, BackendError> {
        let resolution = model.resolve(assignment, luts)?;
        Ok(PreparedModel {
            model,
            execs: resolution.execs,
        })
    }

    /// The underlying lowered program.
    pub fn model(&self) -> &QModel {
        &self.model
    }

    /// The lowered model's display name.
    pub fn arch(&self) -> &str {
        self.model.arch()
    }

    /// Batched inference with the captured resolution — bit-identical
    /// to [`QModel::forward_batch`] under the same assignment, which is
    /// itself bit-identical to per-sample [`QModel::forward`] for any
    /// partition of the inputs into batches.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward_batch(&self, xs: &[&Tensor]) -> Vec<Tensor> {
        self.model.forward_batch_resolved(xs, &self.execs)
    }

    /// Argmax class predictions for a batch, fused like
    /// [`PreparedModel::forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn predict_batch(&self, xs: &[&Tensor]) -> Vec<usize> {
        self.forward_batch(xs)
            .iter()
            // lint: allow(panic) — capsule count is structurally nonzero, so lengths are non-empty
            .map(|l| l.argmax().expect("non-empty lengths"))
            .collect()
    }
}

/// Classification accuracy of the quantized datapath over a dataset
/// under a heterogeneous multiplier assignment. Deterministic; samples
/// run through the batched executor in [`EVAL_BATCH`]-wide fused GEMMs.
///
/// # Errors
///
/// [`BackendError`] when the assignment leaves a multiplier site
/// uncovered or names a component absent from `luts` — checked once
/// up front, before any inference runs.
pub fn evaluate_quantized(
    model: &QModel,
    data: &Dataset,
    assignment: &DatapathAssignment,
    luts: &LutCache,
) -> Result<f64, BackendError> {
    let resolved = model.resolve(assignment, luts)?;
    Ok(evaluate_resolved(model, data, &resolved.execs))
}

/// Accuracy over `data` for an already-resolved program — the shared
/// evaluation loop behind [`evaluate_quantized`] and the fault-measured
/// backend.
pub(crate) fn evaluate_resolved(model: &QModel, data: &Dataset, resolved: &[StepExec]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for chunk in data.samples.chunks(EVAL_BATCH) {
        let images: Vec<&Tensor> = chunk.iter().map(|s| &s.image).collect();
        let lengths = model.forward_batch_resolved(&images, resolved);
        for (sample, l) in chunk.iter().zip(&lengths) {
            // lint: allow(panic) — capsule count is structurally nonzero, so lengths are non-empty
            if l.argmax().expect("non-empty lengths") == sample.label {
                correct += 1;
            }
        }
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_capsnet::{CapsNetConfig, DeepCapsConfig, NoInjection};
    use redcane_tensor::TensorRng;

    /// An exact-only cache + uniform assignment: the baseline datapath.
    fn exact_setup() -> (DatapathAssignment, LutCache) {
        let mut luts = LutCache::new();
        luts.insert("exact", MulLut::exact());
        (DatapathAssignment::uniform("exact"), luts)
    }

    #[test]
    fn qmodel_capsnet_with_exact_assignment_tracks_float_lengths() {
        let mut rng = TensorRng::from_seed(504);
        let cfg = CapsNetConfig::small(1, 16);
        let mut model = CapsNet::new(&cfg, &mut rng);
        let images: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        assert_eq!(q.num_classes(), 10);
        assert_eq!(q.steps().len(), 4);
        assert!(q.arch().starts_with("CapsNet"));
        let (assignment, luts) = exact_setup();
        q.check_assignment(&assignment, &luts).unwrap();
        for image in &images {
            let want = model.forward(image, &mut NoInjection);
            let got = q.forward(image, &assignment, &luts).unwrap();
            assert_eq!(got.shape(), want.shape());
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!((a - b).abs() < 0.15, "length {a} vs quantized {b}");
            }
        }
    }

    #[test]
    fn qmodel_deepcaps_with_exact_assignment_tracks_float_lengths() {
        let mut rng = TensorRng::from_seed(511);
        let cfg = DeepCapsConfig::small(1, 16);
        let mut model = DeepCaps::new(&cfg, &mut rng);
        let images: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        assert_eq!(q.num_classes(), 10);
        assert!(q.arch().starts_with("DeepCaps"));
        // Stem + 3 cells × 5 + lead/mid/caps3d/skip + 2 units + concat
        // + class caps = 24 steps covering all 17 quantized layers.
        assert_eq!(q.steps().len(), 24);
        let (assignment, luts) = exact_setup();
        for image in &images {
            let want = model.forward(image, &mut NoInjection);
            let got = q.forward(image, &assignment, &luts).unwrap();
            assert_eq!(got.shape(), want.shape());
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!((a - b).abs() < 0.2, "length {a} vs quantized {b}");
            }
        }
    }

    #[test]
    fn quantized_forward_is_deterministic_and_batch_matches_single() {
        let mut rng = TensorRng::from_seed(505);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let images: Vec<Tensor> = (0..3)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        let (assignment, luts) = exact_setup();
        let single: Vec<Tensor> = images
            .iter()
            .map(|x| q.forward(x, &assignment, &luts).unwrap())
            .collect();
        let refs: Vec<&Tensor> = images.iter().collect();
        let batched = q.forward_batch(&refs, &assignment, &luts).unwrap();
        assert_eq!(single, batched, "batch fusion must be bit-identical");
        assert_eq!(
            q.forward(&images[0], &assignment, &luts).unwrap(),
            single[0].clone(),
            "re-running reproduces the output exactly"
        );
    }

    #[test]
    fn prepared_model_matches_forward_and_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedModel>();

        let mut rng = TensorRng::from_seed(517);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let images: Vec<Tensor> = (0..3)
            .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
            .collect();
        let q = QModel::calibrated(&mut model, images.iter()).unwrap();
        let (assignment, luts) = exact_setup();
        let prepared = PreparedModel::new(q.clone(), &assignment, &luts).unwrap();
        let refs: Vec<&Tensor> = images.iter().collect();
        // The captured resolution reproduces forward_batch bit for bit,
        // and a worker-owned clone reproduces the template bit for bit.
        assert_eq!(
            prepared.forward_batch(&refs),
            q.forward_batch(&refs, &assignment, &luts).unwrap()
        );
        let clone = prepared.clone();
        assert_eq!(clone.forward_batch(&refs), prepared.forward_batch(&refs));
        let preds = prepared.predict_batch(&refs);
        for (x, pred) in images.iter().zip(preds) {
            assert_eq!(pred, q.predict(x, &assignment, &luts).unwrap());
        }
        // Construction fails loudly on an uncovered assignment.
        assert!(PreparedModel::new(q, &DatapathAssignment::uniform("mul8u_ghost"), &luts).is_err());
    }

    #[test]
    fn multiply_sites_cover_the_program_and_unassigned_sites_error() {
        let mut rng = TensorRng::from_seed(516);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let image = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let q = QModel::calibrated(&mut model, [&image]).unwrap();
        let sites = q.multiply_sites();
        // Conv1 + PrimaryCaps GEMMs, ClassCaps votes + 2 routing sites.
        assert_eq!(sites.len(), 5);
        assert!(sites.contains(&("Conv1".to_string(), OpKind::MacOutput, false)));
        assert!(sites.contains(&("ClassCaps".to_string(), OpKind::LogitsUpdate, true)));

        let mut luts = LutCache::new();
        luts.insert("exact", MulLut::exact());
        // A per-site assignment missing the routing sites fails loudly.
        let mut partial = DatapathAssignment::per_site();
        for (layer, kind, in_routing) in &sites[..sites.len() - 1] {
            partial.assign(layer.clone(), *kind, *in_routing, "exact");
        }
        let err = q.check_assignment(&partial, &luts).unwrap_err();
        assert_eq!(
            err,
            BackendError::UnassignedSite {
                layer: "ClassCaps".to_string(),
                kind: OpKind::LogitsUpdate,
                in_routing: true,
            }
        );
        // An assignment naming an untabulated component also fails.
        let ghost = DatapathAssignment::uniform("mul8u_ghost");
        assert!(matches!(
            q.check_assignment(&ghost, &luts).unwrap_err(),
            BackendError::UnknownComponent { ref component } if component == "mul8u_ghost"
        ));
        // And forward surfaces the same error.
        assert!(q.forward(&image, &partial, &luts).is_err());
    }

    #[test]
    fn calibration_needs_at_least_one_image() {
        let mut rng = TensorRng::from_seed(506);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let err = QModel::calibrated(&mut model, std::iter::empty()).unwrap_err();
        assert_eq!(err, LowerError::EmptyCalibration);
    }

    #[test]
    fn lowering_without_ranges_names_the_missing_site() {
        let mut rng = TensorRng::from_seed(512);
        let model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let err = QModel::lower(&model, &QuantRanges::new()).unwrap_err();
        assert!(
            matches!(err, LowerError::MissingRange { ref layer, .. } if layer == "Conv1"),
            "{err}"
        );
        let mut rng = TensorRng::from_seed(513);
        let deep = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let err = QModel::lower(&deep, &QuantRanges::new()).unwrap_err();
        assert!(
            matches!(err, LowerError::MissingRange { ref layer, .. } if layer == "Conv2D"),
            "{err}"
        );
    }

    #[test]
    fn weight_code_sample_is_bounded_and_deterministic() {
        let mut rng = TensorRng::from_seed(514);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let image = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let q = QModel::calibrated(&mut model, [&image]).unwrap();
        let full = q.weight_code_sample(usize::MAX);
        assert!(!full.is_empty());
        let sample = q.weight_code_sample(100);
        assert!(sample.len() <= 100 && !sample.is_empty());
        assert_eq!(sample, q.weight_code_sample(100));
        assert!(q.weight_code_sample(0).is_empty());
    }
}
