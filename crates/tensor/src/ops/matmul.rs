//! Matrix products: 2-D matmul, transposed variants, and batched matmul.
//!
//! All variants lower onto the blocked, register-tiled micro-kernels in
//! [`crate::ops::gemm`], which are bit-identical to the naive loops they
//! replaced (see that module's reproducibility notes) while vectorizing
//! the im2col convolutions and capsule vote transforms that dominate
//! training time.

use crate::error::TensorError;
use crate::ops::gemm;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// 2-D matrix product: `self (m×k) · rhs (k×n) -> (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::MatmulMismatch`] unless the inner dims agree.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// # fn main() -> Result<(), redcane_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self, "matmul")?;
        let (k2, n) = mat_dims(rhs, "matmul")?;
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the left operand transposed:
    /// `selfᵀ (k×m)ᵀ · rhs (k×n) -> (m×n)` where `self` is stored as `k×m`.
    ///
    /// Used by backprop (`dW = Xᵀ·dY` patterns) without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self, "matmul_tn")?;
        let (k2, n) = mat_dims(rhs, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_tn(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the right operand transposed:
    /// `self (m×k) · rhsᵀ (n×k)ᵀ -> (m×n)`.
    ///
    /// Used by backprop (`dX = dY·Wᵀ` patterns) without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self, "matmul_nt")?;
        let (n, k2) = mat_dims(rhs, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nt(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product: `self [B, m, k] · rhs [B, k, n] -> [B, m, n]`
    /// (one independent product per leading index).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 3
    /// and [`TensorError::MatmulMismatch`] unless the batch and inner dims
    /// agree.
    pub fn matmul_batched(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
                op: "matmul_batched",
            });
        }
        if rhs.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: rhs.ndim(),
                op: "matmul_batched",
            });
        }
        let (batch, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        if rhs.shape()[0] != batch || rhs.shape()[1] != k {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: rhs.shape().to_vec(),
            });
        }
        let n = rhs.shape()[2];
        let mut out = vec![0.0f32; batch * m * n];
        gemm::gemm_nn_batched(self.data(), rhs.data(), &mut out, batch, m, k, n);
        Tensor::from_vec(out, &[batch, m, n])
    }

    /// Matrix–vector product: `self (m×k) · v (k) -> (m)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `self` is rank 2, `v` is rank 1 and the
    /// lengths agree.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self, "matvec")?;
        if v.ndim() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: v.ndim(),
                op: "matvec",
            });
        }
        if v.len() != k {
            return Err(TensorError::MatmulMismatch {
                left: self.shape().to_vec(),
                right: v.shape().to_vec(),
            });
        }
        let a = self.data();
        let x = v.data();
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }
}

/// Raw `m×k · k×n` product accumulated into `out` (assumed zeroed).
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_nn(a, b, out, m, k, n);
}

fn mat_dims(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.get(&[i, p]).unwrap() * b.get(&[p, j]).unwrap();
                }
                out.set(&[i, j], acc).unwrap();
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = TensorRng::from_seed(1);
        let a = rng.uniform(&[7, 5], -1.0, 1.0);
        let b = rng.uniform(&[5, 9], -1.0, 1.0);
        assert_close(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::from_seed(2);
        let a = rng.uniform(&[4, 4], -1.0, 1.0);
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        assert_close(&a.matmul(&eye).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = TensorRng::from_seed(3);
        let a = rng.uniform(&[6, 4], -1.0, 1.0); // stored k x m with k=6, m=4
        let b = rng.uniform(&[6, 5], -1.0, 1.0);
        let at = a.transpose2d().unwrap();
        assert_close(&a.matmul_tn(&b).unwrap(), &at.matmul(&b).unwrap(), 1e-5);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = TensorRng::from_seed(4);
        let a = rng.uniform(&[3, 6], -1.0, 1.0);
        let b = rng.uniform(&[5, 6], -1.0, 1.0); // stored n x k
        let bt = b.transpose2d().unwrap();
        assert_close(&a.matmul_nt(&b).unwrap(), &a.matmul(&bt).unwrap(), 1e-5);
    }

    #[test]
    fn matmul_batched_matches_per_slice() {
        let mut rng = TensorRng::from_seed(6);
        let a = rng.uniform(&[4, 3, 5], -1.0, 1.0);
        let b = rng.uniform(&[4, 5, 2], -1.0, 1.0);
        let c = a.matmul_batched(&b).unwrap();
        assert_eq!(c.shape(), &[4, 3, 2]);
        for t in 0..4 {
            let at = a
                .slice_axis(0, t, t + 1)
                .unwrap()
                .into_reshaped(&[3, 5])
                .unwrap();
            let bt = b
                .slice_axis(0, t, t + 1)
                .unwrap()
                .into_reshaped(&[5, 2])
                .unwrap();
            let ct = c
                .slice_axis(0, t, t + 1)
                .unwrap()
                .into_reshaped(&[3, 2])
                .unwrap();
            assert_eq!(ct, at.matmul(&bt).unwrap(), "batch {t}");
        }
    }

    #[test]
    fn matmul_batched_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3, 4]);
        assert!(a.matmul_batched(&Tensor::zeros(&[2, 5, 2])).is_err());
        assert!(a.matmul_batched(&Tensor::zeros(&[3, 4, 2])).is_err());
        assert!(a.matmul_batched(&Tensor::zeros(&[4, 2])).is_err());
        let flat = Tensor::zeros(&[3, 4]);
        assert!(flat.matmul_batched(&Tensor::zeros(&[2, 4, 2])).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = TensorRng::from_seed(5);
        let a = rng.uniform(&[4, 7], -1.0, 1.0);
        let v = rng.uniform(&[7], -1.0, 1.0);
        let as_mat = v.reshape(&[7, 1]).unwrap();
        let expect = a.matmul(&as_mat).unwrap().into_reshaped(&[4]).unwrap();
        assert_close(&a.matvec(&v).unwrap(), &expect, 1e-5);
    }

    #[test]
    fn matvec_rejects_mismatch() {
        let a = Tensor::zeros(&[4, 7]);
        assert!(a.matvec(&Tensor::zeros(&[6])).is_err());
        assert!(a.matvec(&Tensor::zeros(&[7, 1])).is_err());
    }
}
