//! Offline shim for `serde_derive`.
//!
//! The workspace builds without network access, so the real `serde`
//! cannot be fetched. The source tree only *annotates* types with
//! `#[derive(Serialize, Deserialize)]` — nothing serializes through
//! serde yet (reports hand-roll their JSON) — so these derives expand
//! to nothing and the shim `serde` crate blanket-implements the traits.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
