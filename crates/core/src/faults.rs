//! The discrete error-model family: deterministic hardware faults at
//! datapath sites.
//!
//! [`crate::noise`] models approximation error as Gaussian noise; real
//! approximate hardware also fails *discretely* — transient bit flips
//! in operand registers and accumulators, permanently stuck bit lanes,
//! dead multiplier arrays. This module describes such faults at the
//! same `(layer, op kind, in-routing)` sites a
//! [`DatapathAssignment`](crate::datapath::DatapathAssignment) covers,
//! so the two error-model families share site keys, backends and
//! reporting:
//!
//! - [`FaultModel`] — *what* goes wrong: [`FaultModel::BitFlip`]
//!   (transient, per-bit error rate), [`FaultModel::StuckAt`]
//!   (permanent, masked bit lanes) or [`FaultModel::DeadOutput`]
//!   (the whole output is zero).
//! - [`FaultTarget`] — *where* it strikes within a site's MAC: the
//!   stored weight codes, the streamed activation-operand register, the
//!   multiplier array itself, or the output accumulator.
//! - [`FaultPlan`] — a serializable map from site keys to
//!   [`SiteFault`]s plus a seed; the executable description one run of
//!   the fault-measured backend applies.
//!
//! Everything is **stateless and seed-deterministic**: a fault's
//! realization at element `index` is a pure function of
//! `(plan seed, site, index)` through [`mix64`], never of evaluation
//! order — so results are bitwise invariant across thread counts and
//! batch shapes, and an identity plan (zero BER, no stuck lanes)
//! changes nothing at all.

use std::collections::BTreeMap;

use redcane_capsnet::inject::OpKind;

use crate::datapath::SiteKey;
use crate::report::json::Value;

/// A stateless SplitMix64-style mixer: hashes `(seed, a, b)` to one
/// decorrelated 64-bit word. All fault realizations derive from this,
/// which is what makes them independent of evaluation order.
pub fn mix64(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a mixed word to a uniform draw in `[0, 1)` (53 mantissa bits).
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// What goes wrong: the three discrete fault behaviors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Transient bit flips: each bit of each affected value flips
    /// independently with probability `ber` (bit error rate). The flip
    /// pattern is a deterministic function of the plan seed and the
    /// element index, so one plan models one persistent snapshot of
    /// transient upsets.
    BitFlip {
        /// Per-bit flip probability in `[0, 1]`.
        ber: f64,
    },
    /// Permanent stuck-at fault: every bit selected by `lanes` reads as
    /// `value` (`true` → stuck-at-1, `false` → stuck-at-0) on every
    /// affected value.
    StuckAt {
        /// Bit mask of the stuck lanes (bit `i` set → lane `i` stuck).
        lanes: u32,
        /// The level the lanes are stuck at.
        value: bool,
    },
    /// The whole output is dead: every affected value reads zero — a
    /// broken multiplier array or output bus.
    DeadOutput,
}

impl FaultModel {
    /// `true` when the model provably changes nothing: a zero (or
    /// negative) BER, or an empty stuck-lane mask.
    pub fn is_identity(&self) -> bool {
        match self {
            FaultModel::BitFlip { ber } => *ber <= 0.0,
            FaultModel::StuckAt { lanes, .. } => *lanes == 0,
            FaultModel::DeadOutput => false,
        }
    }

    /// Applies the fault to one `width`-bit value (`width <= 32`).
    ///
    /// `seed` is the site seed ([`FaultPlan::site_seed`]) and `index`
    /// the element's stable position within the site (weight index,
    /// operand code, table entry, accumulator slot) — together they
    /// fully determine the realization.
    pub fn apply(&self, value: u32, width: u32, seed: u64, index: u64) -> u32 {
        debug_assert!(width <= 32);
        let mask = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        match self {
            FaultModel::BitFlip { ber } => {
                let mut v = value;
                for bit in 0..width {
                    if unit_f64(mix64(seed, index, u64::from(bit))) < *ber {
                        v ^= 1 << bit;
                    }
                }
                v & mask
            }
            FaultModel::StuckAt { lanes, value: hi } => {
                let lanes = lanes & mask;
                if *hi {
                    value | lanes
                } else {
                    value & !lanes
                }
            }
            FaultModel::DeadOutput => 0,
        }
    }

    /// Compact spec label, e.g. `bitflip(1e-2)`, `stuck1(0x08)`,
    /// `dead` — used in characterization keys and report rows.
    pub fn label(&self) -> String {
        match self {
            FaultModel::BitFlip { ber } => format!("bitflip({ber})"),
            FaultModel::StuckAt { lanes, value } => {
                format!("stuck{}({lanes:#04x})", u8::from(*value))
            }
            FaultModel::DeadOutput => "dead".to_string(),
        }
    }
}

/// Where within a site's MAC datapath a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The stored (stationary) weight codes, as read from weight
    /// memory. Zero-point correction row sums are recomputed from the
    /// faulted codes — the correction adders read the same memory.
    WeightCodes,
    /// The streamed operand register feeding the multiplier array. The
    /// fault is local to that latch: the exact correction adders still
    /// see the original codes.
    ActivationCodes,
    /// The multiplier array itself: every tabulated product of the
    /// site's component is faulted by table-entry index.
    Multiplier,
    /// The 32-bit output accumulator, faulted once per output element
    /// after the reduction completes.
    Accumulator,
}

impl FaultTarget {
    /// Stable slug for serialization and report rows.
    pub fn label(&self) -> &'static str {
        match self {
            FaultTarget::WeightCodes => "weight_codes",
            FaultTarget::ActivationCodes => "activation_codes",
            FaultTarget::Multiplier => "multiplier",
            FaultTarget::Accumulator => "accumulator",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "weight_codes" => FaultTarget::WeightCodes,
            "activation_codes" => FaultTarget::ActivationCodes,
            "multiplier" => FaultTarget::Multiplier,
            "accumulator" => FaultTarget::Accumulator,
            _ => return None,
        })
    }
}

/// One site's fault: a [`FaultTarget`] struck by a [`FaultModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct SiteFault {
    /// Where the fault strikes.
    pub target: FaultTarget,
    /// What goes wrong there.
    pub model: FaultModel,
}

impl SiteFault {
    /// A new site fault.
    pub fn new(target: FaultTarget, model: FaultModel) -> Self {
        SiteFault { target, model }
    }

    /// `true` when the fault provably changes nothing.
    pub fn is_identity(&self) -> bool {
        self.model.is_identity()
    }

    /// Compact `target:model` spec, e.g. `multiplier:stuck1(0x08)`.
    pub fn spec(&self) -> String {
        format!("{}:{}", self.target.label(), self.model.label())
    }
}

/// Stable serialization slug per [`OpKind`].
fn kind_slug(kind: OpKind) -> &'static str {
    match kind {
        OpKind::MacOutput => "mac_output",
        OpKind::Activation => "activation",
        OpKind::Softmax => "softmax",
        OpKind::LogitsUpdate => "logits_update",
        OpKind::MacInput => "mac_input",
    }
}

fn kind_from_slug(s: &str) -> Option<OpKind> {
    Some(match s {
        "mac_output" => OpKind::MacOutput,
        "activation" => OpKind::Activation,
        "softmax" => OpKind::Softmax,
        "logits_update" => OpKind::LogitsUpdate,
        "mac_input" => OpKind::MacInput,
        _ => return None,
    })
}

/// A deterministic, serializable fault-injection plan: a seed plus one
/// optional [`SiteFault`] per datapath site, keyed exactly like a
/// [`DatapathAssignment`](crate::datapath::DatapathAssignment).
///
/// An **identity plan** — no sites, or only sites whose fault
/// [`SiteFault::is_identity`] — must leave every consumer bit-identical
/// to the fault-free path; the qdp crate proptests this end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: BTreeMap<SiteKey, SiteFault>,
}

impl FaultPlan {
    /// An identity plan: deterministic seed, no faults.
    pub fn identity(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injects (or replaces) one site's fault.
    pub fn inject(
        &mut self,
        layer: impl Into<String>,
        kind: OpKind,
        in_routing: bool,
        fault: SiteFault,
    ) {
        self.sites.insert((layer.into(), kind, in_routing), fault);
    }

    /// Builder form of [`FaultPlan::inject`].
    pub fn with(
        mut self,
        layer: impl Into<String>,
        kind: OpKind,
        in_routing: bool,
        fault: SiteFault,
    ) -> Self {
        self.inject(layer, kind, in_routing, fault);
        self
    }

    /// The fault at one site **when it actually does something**;
    /// identity faults report as `None` so consumers keep the pristine
    /// fast path.
    pub fn active_fault_for(
        &self,
        layer: &str,
        kind: OpKind,
        in_routing: bool,
    ) -> Option<&SiteFault> {
        self.sites
            .get(&(layer.to_string(), kind, in_routing))
            .filter(|f| !f.is_identity())
    }

    /// `true` when no site carries an effective fault.
    pub fn is_identity(&self) -> bool {
        self.sites.values().all(SiteFault::is_identity)
    }

    /// All injected sites in deterministic (sorted-key) order,
    /// identity entries included.
    pub fn sites(&self) -> impl Iterator<Item = (&SiteKey, &SiteFault)> {
        self.sites.iter()
    }

    /// The per-site seed every realization at this site derives from:
    /// a hash of the plan seed and the site key. Stable across plans
    /// that share a seed, distinct across sites.
    pub fn site_seed(&self, layer: &str, kind: OpKind, in_routing: bool) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in layer.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let kind_code = match kind {
            OpKind::MacOutput => 0u64,
            OpKind::Activation => 1,
            OpKind::Softmax => 2,
            OpKind::LogitsUpdate => 3,
            OpKind::MacInput => 4,
        };
        mix64(self.seed, h, (kind_code << 1) | u64::from(in_routing))
    }

    /// Serializes the plan to a JSON value (seeds as strings — u64
    /// exceeds the f64-exact integer range).
    pub fn to_json(&self) -> Value {
        let sites = self
            .sites
            .iter()
            .map(|((layer, kind, in_routing), fault)| {
                let model = match fault.model {
                    FaultModel::BitFlip { ber } => Value::Obj(vec![
                        ("kind".into(), Value::Str("bit_flip".into())),
                        ("ber".into(), Value::Num(ber)),
                    ]),
                    FaultModel::StuckAt { lanes, value } => Value::Obj(vec![
                        ("kind".into(), Value::Str("stuck_at".into())),
                        ("lanes".into(), Value::Num(f64::from(lanes))),
                        ("value".into(), Value::Bool(value)),
                    ]),
                    FaultModel::DeadOutput => {
                        Value::Obj(vec![("kind".into(), Value::Str("dead_output".into()))])
                    }
                };
                Value::Obj(vec![
                    ("layer".into(), Value::Str(layer.clone())),
                    ("kind".into(), Value::Str(kind_slug(*kind).into())),
                    ("in_routing".into(), Value::Bool(*in_routing)),
                    ("target".into(), Value::Str(fault.target.label().into())),
                    ("model".into(), model),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("seed".into(), Value::Str(self.seed.to_string())),
            ("sites".into(), Value::Arr(sites)),
        ])
    }

    /// Parses a plan back from [`FaultPlan::to_json`] output.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let seed = v
            .get("seed")
            .and_then(Value::as_str)
            .ok_or("fault plan: missing 'seed'")?
            .parse::<u64>()
            .map_err(|e| format!("fault plan: bad seed: {e}"))?;
        let mut plan = FaultPlan::identity(seed);
        let sites = v
            .get("sites")
            .and_then(Value::as_arr)
            .ok_or("fault plan: missing 'sites'")?;
        for site in sites {
            let layer = site
                .get("layer")
                .and_then(Value::as_str)
                .ok_or("fault site: missing 'layer'")?;
            let kind = site
                .get("kind")
                .and_then(Value::as_str)
                .and_then(kind_from_slug)
                .ok_or("fault site: bad 'kind'")?;
            let in_routing = site
                .get("in_routing")
                .and_then(Value::as_bool)
                .ok_or("fault site: missing 'in_routing'")?;
            let target = site
                .get("target")
                .and_then(Value::as_str)
                .and_then(FaultTarget::from_label)
                .ok_or("fault site: bad 'target'")?;
            let model = site.get("model").ok_or("fault site: missing 'model'")?;
            let model = match model.get("kind").and_then(Value::as_str) {
                Some("bit_flip") => FaultModel::BitFlip {
                    ber: model
                        .get("ber")
                        .and_then(Value::as_f64)
                        .ok_or("bit_flip fault: missing 'ber'")?,
                },
                Some("stuck_at") => FaultModel::StuckAt {
                    lanes: model
                        .get("lanes")
                        .and_then(Value::as_f64)
                        .ok_or("stuck_at fault: missing 'lanes'")?
                        as u32,
                    value: model
                        .get("value")
                        .and_then(Value::as_bool)
                        .ok_or("stuck_at fault: missing 'value'")?,
                },
                Some("dead_output") => FaultModel::DeadOutput,
                _ => return Err("fault site: unknown model kind".to_string()),
            };
            plan.inject(layer, kind, in_routing, SiteFault::new(target, model));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_models_change_nothing_and_say_so() {
        for model in [
            FaultModel::BitFlip { ber: 0.0 },
            FaultModel::StuckAt {
                lanes: 0,
                value: true,
            },
        ] {
            assert!(model.is_identity(), "{model:?}");
            for v in [0u32, 1, 127, 255] {
                assert_eq!(model.apply(v, 8, 42, 7), v, "{model:?}");
            }
        }
        assert!(!FaultModel::DeadOutput.is_identity());
        assert!(!FaultModel::BitFlip { ber: 0.5 }.is_identity());
    }

    #[test]
    fn stuck_at_pins_exactly_the_masked_lanes() {
        let s1 = FaultModel::StuckAt {
            lanes: 0b1000_0001,
            value: true,
        };
        assert_eq!(s1.apply(0, 8, 0, 0), 0b1000_0001);
        assert_eq!(s1.apply(0xff, 8, 0, 0), 0xff);
        let s0 = FaultModel::StuckAt {
            lanes: 0b1000_0001,
            value: false,
        };
        assert_eq!(s0.apply(0xff, 8, 0, 0), 0b0111_1110);
        assert_eq!(s0.apply(0, 8, 0, 0), 0);
        // Lanes above the value width are ignored.
        let wide = FaultModel::StuckAt {
            lanes: 0xffff_0000,
            value: true,
        };
        assert_eq!(wide.apply(0x12, 8, 0, 0), 0x12);
    }

    #[test]
    fn dead_output_zeroes_everything() {
        for v in [0u32, 1, 65025, u32::MAX] {
            assert_eq!(FaultModel::DeadOutput.apply(v, 32, 9, 9), 0);
        }
    }

    #[test]
    fn bit_flips_are_seed_deterministic_and_ber_scaled() {
        let model = FaultModel::BitFlip { ber: 0.5 };
        let a: Vec<u32> = (0..256).map(|i| model.apply(0, 8, 11, i)).collect();
        let b: Vec<u32> = (0..256).map(|i| model.apply(0, 8, 11, i)).collect();
        assert_eq!(a, b, "same seed, same realization");
        let c: Vec<u32> = (0..256).map(|i| model.apply(0, 8, 12, i)).collect();
        assert_ne!(a, c, "different seed, different realization");
        let flipped: u32 = a.iter().map(|v| v.count_ones()).sum();
        // 256 values × 8 bits × ber 0.5 ≈ 1024 flips.
        assert!((700..1350).contains(&flipped), "{flipped} flips at BER 0.5");
        // A certain flip inverts every bit.
        let all = FaultModel::BitFlip { ber: 1.1 };
        assert_eq!(all.apply(0, 8, 3, 3), 0xff);
    }

    #[test]
    fn plan_identity_and_active_lookup() {
        let mut plan = FaultPlan::identity(7);
        assert!(plan.is_identity());
        plan.inject(
            "Conv1",
            OpKind::MacOutput,
            false,
            SiteFault::new(FaultTarget::Multiplier, FaultModel::BitFlip { ber: 0.0 }),
        );
        assert!(plan.is_identity(), "zero-BER entries stay identity");
        assert!(plan
            .active_fault_for("Conv1", OpKind::MacOutput, false)
            .is_none());
        plan.inject(
            "Conv1",
            OpKind::MacOutput,
            false,
            SiteFault::new(
                FaultTarget::Accumulator,
                FaultModel::StuckAt {
                    lanes: 4,
                    value: true,
                },
            ),
        );
        assert!(!plan.is_identity());
        let f = plan
            .active_fault_for("Conv1", OpKind::MacOutput, false)
            .unwrap();
        assert_eq!(f.target, FaultTarget::Accumulator);
        assert!(plan
            .active_fault_for("Conv1", OpKind::MacOutput, true)
            .is_none());
    }

    #[test]
    fn site_seeds_distinguish_sites_and_plans() {
        let plan = FaultPlan::identity(1);
        let a = plan.site_seed("Conv1", OpKind::MacOutput, false);
        assert_eq!(a, plan.site_seed("Conv1", OpKind::MacOutput, false));
        assert_ne!(a, plan.site_seed("Conv1", OpKind::MacOutput, true));
        assert_ne!(a, plan.site_seed("Conv2", OpKind::MacOutput, false));
        assert_ne!(a, plan.site_seed("Conv1", OpKind::LogitsUpdate, false));
        assert_ne!(
            a,
            FaultPlan::identity(2).site_seed("Conv1", OpKind::MacOutput, false)
        );
    }

    #[test]
    fn plan_json_round_trips_exactly() {
        let plan = FaultPlan::identity(u64::MAX - 3)
            .with(
                "Conv1",
                OpKind::MacOutput,
                false,
                SiteFault::new(FaultTarget::Multiplier, FaultModel::BitFlip { ber: 0.01 }),
            )
            .with(
                "ClassCaps",
                OpKind::LogitsUpdate,
                true,
                SiteFault::new(
                    FaultTarget::WeightCodes,
                    FaultModel::StuckAt {
                        lanes: 0x81,
                        value: false,
                    },
                ),
            )
            .with(
                "ClassCaps",
                OpKind::MacOutput,
                true,
                SiteFault::new(FaultTarget::Accumulator, FaultModel::DeadOutput),
            );
        let json = plan.to_json();
        let text = json.dump();
        let parsed = crate::report::json::parse(&text).unwrap();
        let back = FaultPlan::from_json(&parsed).unwrap();
        assert_eq!(back, plan);
        // Serialization itself is deterministic.
        assert_eq!(text, back.to_json().dump());
    }

    #[test]
    fn plan_json_rejects_malformed_input() {
        let missing_seed = Value::Obj(vec![("sites".into(), Value::Arr(vec![]))]);
        assert!(FaultPlan::from_json(&missing_seed)
            .unwrap_err()
            .contains("seed"));
        let bad_site = Value::Obj(vec![
            ("seed".into(), Value::Str("1".into())),
            (
                "sites".into(),
                Value::Arr(vec![Value::Obj(vec![(
                    "layer".into(),
                    Value::Str("X".into()),
                )])]),
            ),
        ]);
        assert!(FaultPlan::from_json(&bad_site)
            .unwrap_err()
            .contains("kind"));
    }

    #[test]
    fn spec_labels_are_compact_and_stable() {
        let f = SiteFault::new(
            FaultTarget::Multiplier,
            FaultModel::StuckAt {
                lanes: 8,
                value: true,
            },
        );
        assert_eq!(f.spec(), "multiplier:stuck1(0x08)");
        let b = SiteFault::new(
            FaultTarget::ActivationCodes,
            FaultModel::BitFlip { ber: 0.01 },
        );
        assert_eq!(b.spec(), "activation_codes:bitflip(0.01)");
        assert_eq!(
            SiteFault::new(FaultTarget::Accumulator, FaultModel::DeadOutput).spec(),
            "accumulator:dead"
        );
    }
}
