//! Structural power/area estimation for the behavioral multipliers.
//!
//! The EvoApprox8B library reports post-synthesis power/area at 45 nm. We
//! cannot synthesize netlists here, so parametric components are costed
//! with a **structural proxy**: count the active partial-product generators
//! (AND gates) and reduction cells (full-adder equivalents) the
//! microarchitecture retains, then scale so the exact 8×8 array multiplier
//! lands on the paper's Table IV baseline (`mul8u_1JFF`: 391 µW, 710 µm²).
//!
//! The proxy is intentionally simple — the methodology only needs the
//! *relative ordering* of component costs to pick cheaper components for
//! more resilient operations.

use serde::{Deserialize, Serialize};

/// Power/area figures for one component, in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Dynamic power in µW (45 nm, as in Table IV).
    pub power_uw: f64,
    /// Cell area in µm².
    pub area_um2: f64,
}

impl CostEstimate {
    /// Power reduction relative to the exact baseline, as a fraction in
    /// `[0, 1]` (e.g. `0.29` for the NGR-like component).
    pub fn power_saving(&self) -> f64 {
        1.0 - self.power_uw / EXACT_BASELINE.power_uw
    }

    /// Area reduction relative to the exact baseline, as a fraction.
    pub fn area_saving(&self) -> f64 {
        1.0 - self.area_um2 / EXACT_BASELINE.area_um2
    }
}

/// Table IV baseline: the accurate `mul8u_1JFF` at 45 nm.
pub const EXACT_BASELINE: CostEstimate = CostEstimate {
    power_uw: 391.0,
    area_um2: 710.0,
};

/// Structural complexity of a multiplier microarchitecture: retained
/// partial-product generators and reduction cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Structure {
    /// AND gates generating partial-product bits.
    pub pp_gates: u32,
    /// Full-adder-equivalent reduction/accumulation cells.
    pub adder_cells: u32,
}

/// The exact 8×8 array multiplier: 64 partial products, 56 reduction cells
/// (an 8×8 array uses `8*(8-1)` adder cells).
pub const EXACT_STRUCTURE: Structure = Structure {
    pp_gates: 64,
    adder_cells: 56,
};

/// Relative cost weight of a reduction cell vs a partial-product AND gate.
/// A mirror full adder is roughly 5× the gate count of an AND2.
const ADDER_CELL_WEIGHT: f64 = 5.0;

impl Structure {
    /// Weighted gate-count proxy used for scaling.
    pub fn complexity(&self) -> f64 {
        self.pp_gates as f64 + ADDER_CELL_WEIGHT * self.adder_cells as f64
    }

    /// Scales the exact baseline cost by this structure's complexity.
    pub fn cost(&self) -> CostEstimate {
        let ratio = self.complexity() / EXACT_STRUCTURE.complexity();
        CostEstimate {
            power_uw: EXACT_BASELINE.power_uw * ratio,
            area_um2: EXACT_BASELINE.area_um2 * ratio,
        }
    }
}

/// Counts the retained partial-product positions of an 8×8 array after
/// removing every position for which `dropped(row j, col i+j)` holds, and
/// derives the reduction-cell count proportionally.
pub fn structure_with_drops(mut dropped: impl FnMut(usize, usize) -> bool) -> Structure {
    let mut kept = 0u32;
    for j in 0..8 {
        for i in 0..8 {
            if !dropped(j, i + j) {
                kept += 1;
            }
        }
    }
    // Reduction cells scale with the partial products they must compress:
    // an n-bit column of the exact array needs n-1 cells; approximate that
    // globally as kept - 8 (one "free" bit per column on average).
    let adder_cells = kept.saturating_sub(8);
    Structure {
        pp_gates: kept,
        adder_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_structure_cost_is_baseline() {
        let c = EXACT_STRUCTURE.cost();
        assert!((c.power_uw - 391.0).abs() < 1e-9);
        assert!((c.area_um2 - 710.0).abs() < 1e-9);
        assert!(c.power_saving().abs() < 1e-12);
    }

    #[test]
    fn dropping_cells_reduces_cost_monotonically() {
        let full = structure_with_drops(|_, _| false);
        assert_eq!(full.pp_gates, 64);
        let trunc4 = structure_with_drops(|_, col| col < 4);
        let trunc8 = structure_with_drops(|_, col| col < 8);
        assert!(trunc4.complexity() < full.complexity());
        assert!(trunc8.complexity() < trunc4.complexity());
        assert!(trunc8.cost().power_uw < trunc4.cost().power_uw);
    }

    #[test]
    fn savings_fractions_are_sane() {
        let half = Structure {
            pp_gates: 32,
            adder_cells: 28,
        };
        let c = half.cost();
        assert!((c.power_saving() - 0.5).abs() < 1e-9);
        assert!((c.area_saving() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn perforation_drops_whole_rows() {
        let perf2 = structure_with_drops(|row, _| row < 2);
        assert_eq!(perf2.pp_gates, 48);
    }
}
