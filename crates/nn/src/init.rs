//! Weight initialization schemes.

use redcane_tensor::{Tensor, TensorRng};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to linear/sigmoid-ish
/// activations (and works well for the squash nonlinearity).
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut TensorRng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform(shape, -a, a)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`, suited to
/// ReLU activations.
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut TensorRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    rng.normal(shape, 0.0, std)
}

/// Fan-in/fan-out of a conv weight `[C_out, C_in, k, k]`.
pub fn conv_fans(c_out: usize, c_in: usize, kernel: usize) -> (usize, usize) {
    (c_in * kernel * kernel, c_out * kernel * kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds() {
        let mut rng = TensorRng::from_seed(1);
        let t = xavier_uniform(&[100, 100], 100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= a));
        // Not degenerate
        assert!(t.std() > a / 4.0);
    }

    #[test]
    fn he_scale_tracks_fan_in() {
        let mut rng = TensorRng::from_seed(2);
        let narrow = he_normal(&[10_000], 10, &mut rng);
        let wide = he_normal(&[10_000], 1000, &mut rng);
        assert!(narrow.std() > wide.std() * 5.0);
    }

    #[test]
    fn conv_fans_formula() {
        assert_eq!(conv_fans(32, 16, 3), (144, 288));
    }
}
