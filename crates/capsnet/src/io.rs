//! Compact binary (de)serialization of model weights.
//!
//! Trained models are cached between experiment runs so the expensive
//! training step happens once per (architecture, dataset, seed) triple.
//! The format is deliberately tiny: a magic header, then each parameter
//! tensor as `ndim, dims…, f32-LE data`, in the model's canonical
//! parameter order.

use std::io::{self, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use redcane_tensor::Tensor;

use crate::model::CapsModel;

const MAGIC: &[u8; 4] = b"RCW1";

/// Serializes the model's parameters into the weight format.
pub fn weights_to_bytes(model: &mut dyn CapsModel) -> Bytes {
    let params = model.params_mut();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        let t = &p.value;
        buf.put_u32_le(t.ndim() as u32);
        for &d in t.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restores parameters serialized by [`weights_to_bytes`] into `model`.
///
/// # Errors
///
/// Returns an error if the header is wrong, the parameter count or any
/// tensor shape disagrees with the model, or the buffer is truncated.
pub fn weights_from_bytes(model: &mut dyn CapsModel, data: &[u8]) -> io::Result<()> {
    let mut buf = data;
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 8 {
        return Err(fail("weight buffer truncated"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad weight file magic"));
    }
    let count = buf.get_u32_le() as usize;
    let params = model.params_mut();
    if count != params.len() {
        return Err(fail(&format!(
            "weight file holds {count} tensors, model has {}",
            params.len()
        )));
    }
    for p in params {
        if buf.remaining() < 4 {
            return Err(fail("weight buffer truncated"));
        }
        let ndim = buf.get_u32_le() as usize;
        if buf.remaining() < ndim * 4 {
            return Err(fail("weight buffer truncated"));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(buf.get_u32_le() as usize);
        }
        if shape != p.value.shape() {
            return Err(fail(&format!(
                "tensor shape mismatch: file {shape:?}, model {:?}",
                p.value.shape()
            )));
        }
        let n: usize = shape.iter().product();
        if buf.remaining() < n * 4 {
            return Err(fail("weight buffer truncated"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(buf.get_f32_le());
        }
        p.value = Tensor::from_vec(data, &shape)
            .map_err(|e| fail(&format!("weight tensor rejected by shape check: {e}")))?;
    }
    Ok(())
}

/// Saves model weights to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_weights(model: &mut dyn CapsModel, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let bytes = weights_to_bytes(model);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

/// Loads model weights from a file.
///
/// # Errors
///
/// Propagates filesystem errors and format mismatches.
pub fn load_weights(model: &mut dyn CapsModel, path: &Path) -> io::Result<()> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    weights_from_bytes(model, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CapsNetConfig;
    use crate::inject::NoInjection;
    use crate::model::{CapsModel, CapsNet};
    use redcane_tensor::TensorRng;

    #[test]
    fn round_trip_restores_behavior() {
        let cfg = CapsNetConfig::small(1, 16);
        let mut rng = TensorRng::from_seed(180);
        let mut a = CapsNet::new(&cfg, &mut rng);
        let mut b = CapsNet::new(&cfg, &mut TensorRng::from_seed(999));
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        let before = a.forward(&x, &mut NoInjection);
        assert_ne!(before, b.forward(&x, &mut NoInjection));
        let bytes = weights_to_bytes(&mut a);
        weights_from_bytes(&mut b, &bytes).unwrap();
        assert_eq!(before, b.forward(&x, &mut NoInjection));
    }

    #[test]
    fn rejects_corrupt_and_mismatched_buffers() {
        let cfg = CapsNetConfig::small(1, 16);
        let mut rng = TensorRng::from_seed(181);
        let mut model = CapsNet::new(&cfg, &mut rng);
        assert!(weights_from_bytes(&mut model, b"nope").is_err());
        let mut bytes = weights_to_bytes(&mut model).to_vec();
        bytes.truncate(bytes.len() / 2);
        assert!(weights_from_bytes(&mut model, &bytes).is_err());
        // Different architecture.
        let mut other = CapsNet::new(&CapsNetConfig::small(3, 16), &mut rng);
        let good = weights_to_bytes(&mut model);
        assert!(weights_from_bytes(&mut other, &good).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cfg = CapsNetConfig::small(1, 16);
        let mut rng = TensorRng::from_seed(182);
        let mut model = CapsNet::new(&cfg, &mut rng);
        let dir = std::env::temp_dir().join("redcane-io-test");
        let path = dir.join("weights.rcw");
        save_weights(&mut model, &path).unwrap();
        let mut loaded = CapsNet::new(&cfg, &mut TensorRng::from_seed(333));
        load_weights(&mut loaded, &path).unwrap();
        let x = rng.uniform(&[1, 16, 16], 0.0, 1.0);
        assert_eq!(
            model.forward(&x, &mut NoInjection),
            loaded.forward(&x, &mut NoInjection)
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
