use std::error::Error;
use std::fmt;

/// Errors produced by shape-sensitive tensor operations.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger: the offending shapes, axes, or lengths are embedded in the
/// error value and rendered by its `Display` implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands were expected to have identical shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The flat data length does not match the product of the shape dims.
    LengthMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements actually provided.
        len: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The tensor's rank (number of dimensions).
        ndim: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Original shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        got: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulMismatch {
        /// Shape of the left matrix.
        left: Vec<usize>,
        /// Shape of the right matrix.
        right: Vec<usize>,
    },
    /// Convolution geometry is impossible (kernel larger than padded input,
    /// zero stride, or empty output).
    InvalidConvGeometry {
        /// Human-readable description of the geometry problem.
        reason: String,
    },
    /// A slice range fell outside the tensor bounds.
    SliceOutOfRange {
        /// The axis being sliced.
        axis: usize,
        /// Requested start index.
        start: usize,
        /// Requested end index (exclusive).
        end: usize,
        /// Size of that axis.
        size: usize,
    },
    /// An argument had an invalid value (e.g. zero-sized dimension where
    /// not permitted, non-finite scalar where finite required).
    InvalidArgument {
        /// Human-readable description of the invalid argument.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in `{op}`: left operand {left:?} vs right operand {right:?}"
            ),
            TensorError::LengthMismatch { shape, len } => write!(
                f,
                "data length {len} does not match shape {shape:?} ({} elements expected)",
                shape.iter().product::<usize>()
            ),
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {axis} out of range for tensor of rank {ndim}")
            }
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape {from:?} ({} elements) into {to:?} ({} elements)",
                from.iter().product::<usize>(),
                to.iter().product::<usize>()
            ),
            TensorError::RankMismatch { expected, got, op } => {
                write!(f, "`{op}` expects rank {expected}, got rank {got}")
            }
            TensorError::MatmulMismatch { left, right } => {
                write!(f, "matmul inner dimensions disagree: {left:?} x {right:?}")
            }
            TensorError::InvalidConvGeometry { reason } => {
                write!(f, "invalid convolution geometry: {reason}")
            }
            TensorError::SliceOutOfRange {
                axis,
                start,
                end,
                size,
            } => write!(
                f,
                "slice {start}..{end} out of range for axis {axis} of size {size}"
            ),
            TensorError::InvalidArgument { reason } => {
                write!(f, "invalid argument: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn length_mismatch_reports_expected_count() {
        let err = TensorError::LengthMismatch {
            shape: vec![2, 5],
            len: 7,
        };
        assert!(err.to_string().contains("10 elements expected"));
    }
}
