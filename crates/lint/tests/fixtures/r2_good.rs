// Fixture: the same clock reads pass R2 when the module is on the
// [clocks] allowlist (linted as `serve::queue`).
use std::time::Instant;

pub fn deadline_ns(budget_ns: u64) -> u64 {
    let t0 = Instant::now();
    budget_ns.saturating_sub(t0.elapsed().as_nanos() as u64)
}
