//! Seeded end-to-end ReD-CaNe pipeline smoke benchmark.
//!
//! Runs dataset generation → tiny CapsNet training → group extraction →
//! noise sweep → component selection and prints exactly one JSON line
//! to stdout (human-readable progress goes to stderr). Usage:
//!
//! ```text
//! pipeline [--benchmark mnist|fashion|svhn|cifar] [--seed N]
//!          [--train N] [--test N] [--epochs N] [--threads N]
//!          [--artifacts DIR] [--no-cache] [--no-timings]
//!          [--profile PATH] [--profile-counters PATH]
//!          [--profile-folded PATH]
//! ```
//!
//! Trained weights and calibrated ranges go through the
//! trained-artifact store (default `.redcane-artifacts`, or
//! `REDCANE_ARTIFACTS`): warm runs restore instead of training.
//! `--no-cache` forces a cold run; `--no-timings` drops the wall-clock
//! `timings_s` field so cold and warm outputs can be byte-compared —
//! and, with `--profile`, the profile's `timings` section with it.
//! The `--profile*` flags record the run through `redcane-trace`:
//! deterministic work counters plus the hierarchical span tree.

use std::process::ExitCode;

use redcane::report::json::Value;
use redcane_artifacts::ArtifactStore;
use redcane_bench::cli::{next_parsed, next_value, require_nonzero};
use redcane_bench::profile::ProfileArgs;
use redcane_bench::{outcome_to_json, outcome_to_json_stable, run_pipeline, PipelineConfig};
use redcane_datasets::Benchmark;

fn parse_args(mut cfg: PipelineConfig) -> Result<(PipelineConfig, bool, ProfileArgs), String> {
    let mut artifacts_flag: Option<String> = None;
    let mut no_cache = false;
    let mut no_timings = false;
    let mut profile = ProfileArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--benchmark" => {
                cfg.benchmark = match next_value(&mut args, "--benchmark")?.as_str() {
                    "mnist" => Benchmark::MnistLike,
                    "fashion" => Benchmark::FashionLike,
                    "svhn" => Benchmark::SvhnLike,
                    "cifar" => Benchmark::Cifar10Like,
                    other => return Err(format!("unknown benchmark '{other}'")),
                };
            }
            "--seed" => cfg.seed = next_parsed(&mut args, "--seed")?,
            "--train" => cfg.train = next_parsed(&mut args, "--train")?,
            "--test" => cfg.test = next_parsed(&mut args, "--test")?,
            "--epochs" => cfg.epochs = next_parsed(&mut args, "--epochs")?,
            "--threads" => {
                cfg.threads = next_parsed(&mut args, "--threads")?;
                // Also applies to the kernel/trainer backend, not just
                // the sweep workers.
                redcane_tensor::par::set_threads(cfg.threads);
            }
            "--artifacts" => artifacts_flag = Some(next_value(&mut args, "--artifacts")?),
            "--no-cache" => no_cache = true,
            "--no-timings" => no_timings = true,
            "--help" | "-h" => {
                eprintln!(
                    "pipeline: seeded end-to-end ReD-CaNe smoke benchmark\n\
                     flags: --benchmark mnist|fashion|svhn|cifar, --seed N, \
                     --train N, --test N, --epochs N, --threads N, \
                     --artifacts DIR, --no-cache, --no-timings, \
                     --profile PATH, --profile-counters PATH, \
                     --profile-folded PATH"
                );
                std::process::exit(0);
            }
            other => match profile.match_flag(other, &mut args) {
                Some(res) => res?,
                None => return Err(format!("unknown flag '{other}'")),
            },
        }
    }
    // Fail with a clean CLI error rather than tripping run_pipeline's
    // asserts.
    require_nonzero(cfg.train, "--train")?;
    require_nonzero(cfg.test, "--test")?;
    cfg.artifacts = ArtifactStore::resolve_dir(artifacts_flag.as_deref(), no_cache);
    Ok((cfg, no_timings, profile))
}

fn main() -> ExitCode {
    let (cfg, no_timings, profile) = match parse_args(PipelineConfig::smoke()) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("pipeline: {msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[pipeline] benchmark={} seed={} train={} test={} epochs={}",
        cfg.benchmark, cfg.seed, cfg.train, cfg.test, cfg.epochs
    );
    profile.enable_if_requested();
    let outcome = run_pipeline(&cfg);
    eprintln!(
        "[pipeline] baseline {:.3}, design predicted {:.3} (drop {:.2} pp), \
         measured {:.3} (drop {:.2} pp) in {:.2}s (train {:.2}s, methodology {:.2}s)",
        outcome.report.group_sweep.baseline_accuracy,
        outcome.report.design.predicted_accuracy,
        outcome.report.design.predicted_drop_pp(),
        outcome.report.design.measured_accuracy.unwrap_or(f64::NAN),
        outcome.report.design.measured_drop_pp().unwrap_or(f64::NAN),
        outcome.timings.total_s(),
        outcome.timings.train_s,
        outcome.timings.methodology_s,
    );
    let json = if no_timings {
        outcome_to_json_stable(&outcome)
    } else {
        outcome_to_json(&outcome)
    };
    println!("{}", json.dump());
    let meta = vec![(
        "provenance".to_string(),
        Value::from(outcome.provenance.label()),
    )];
    if let Err(msg) = profile.write("pipeline", meta, !no_timings) {
        eprintln!("pipeline: {msg}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
