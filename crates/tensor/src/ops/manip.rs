//! Shape-manipulating operations: pad, slice, concat, transpose, permute.

use crate::error::TensorError;
use crate::shape::strides_for;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.ndim(),
                op: "transpose2d",
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = src[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Reorders axes according to `perm` (a permutation of `0..ndim`).
    ///
    /// # Errors
    ///
    /// Returns an error if `perm` is not a permutation of the axes.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// # fn main() -> Result<(), redcane_tensor::TensorError> {
    /// let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
    /// let p = t.permute(&[2, 0, 1])?;
    /// assert_eq!(p.shape(), &[4, 2, 3]);
    /// assert_eq!(p.get(&[1, 0, 2])?, t.get(&[0, 2, 1])?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let nd = self.ndim();
        if perm.len() != nd {
            return Err(TensorError::RankMismatch {
                expected: nd,
                got: perm.len(),
                op: "permute",
            });
        }
        let mut seen = vec![false; nd];
        for &p in perm {
            if p >= nd || seen[p] {
                return Err(TensorError::InvalidArgument {
                    reason: format!("permute: {perm:?} is not a permutation of 0..{nd}"),
                });
            }
            seen[p] = true;
        }
        let old_shape = self.shape();
        let new_shape: Vec<usize> = perm.iter().map(|&p| old_shape[p]).collect();
        let old_strides = strides_for(old_shape);
        let new_strides_in_old: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let src = self.data();
        let n = src.len();
        let mut out = vec![0.0f32; n];
        // Walk the output in row-major order, computing the source offset.
        let mut index = vec![0usize; nd];
        for slot in out.iter_mut() {
            let mut src_off = 0usize;
            for (i, &idx) in index.iter().enumerate() {
                src_off += idx * new_strides_in_old[i];
            }
            *slot = src[src_off];
            // Increment the multi-index (row-major odometer).
            for axis in (0..nd).rev() {
                index[axis] += 1;
                if index[axis] < new_shape[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        Tensor::from_vec(out, &new_shape)
    }

    /// Extracts `start..end` along `axis`, copying.
    ///
    /// # Errors
    ///
    /// Returns an error if `axis` is out of range or the slice bounds exceed
    /// the axis size (or `start > end`).
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Result<Tensor> {
        let nd = self.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let size = self.shape()[axis];
        if start > end || end > size {
            return Err(TensorError::SliceOutOfRange {
                axis,
                start,
                end,
                size,
            });
        }
        let outer: usize = self.shape()[..axis].iter().product();
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let span = end - start;
        let mut new_shape = self.shape().to_vec();
        new_shape[axis] = span;
        let src = self.data();
        let mut out = Vec::with_capacity(outer * span * inner);
        for o in 0..outer {
            let base = o * size * inner;
            out.extend_from_slice(&src[base + start * inner..base + end * inner]);
        }
        Tensor::from_vec(out, &new_shape)
    }

    /// Concatenates tensors along `axis`. All inputs must agree on every
    /// other axis.
    ///
    /// # Errors
    ///
    /// Returns an error when `parts` is empty, `axis` is out of range, or
    /// any non-`axis` dimension disagrees.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = parts.first().ok_or_else(|| TensorError::InvalidArgument {
            reason: "concat of zero tensors".to_string(),
        })?;
        let nd = first.ndim();
        if axis >= nd {
            return Err(TensorError::AxisOutOfRange { axis, ndim: nd });
        }
        let mut axis_total = 0usize;
        for p in parts {
            if p.ndim() != nd {
                return Err(TensorError::RankMismatch {
                    expected: nd,
                    got: p.ndim(),
                    op: "concat",
                });
            }
            for d in 0..nd {
                if d != axis && p.shape()[d] != first.shape()[d] {
                    return Err(TensorError::ShapeMismatch {
                        left: first.shape().to_vec(),
                        right: p.shape().to_vec(),
                        op: "concat",
                    });
                }
            }
            axis_total += p.shape()[axis];
        }
        let outer: usize = first.shape()[..axis].iter().product();
        let inner: usize = first.shape()[axis + 1..].iter().product();
        let mut new_shape = first.shape().to_vec();
        new_shape[axis] = axis_total;
        let mut out = Vec::with_capacity(outer * axis_total * inner);
        for o in 0..outer {
            for p in parts {
                let span = p.shape()[axis];
                let base = o * span * inner;
                out.extend_from_slice(&p.data()[base..base + span * inner]);
            }
        }
        Tensor::from_vec(out, &new_shape)
    }

    /// Zero-pads a `[C, H, W]` tensor spatially by `pad` on all four sides.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 3.
    pub fn pad_spatial(&self, pad: usize) -> Result<Tensor> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
                op: "pad_spatial",
            });
        }
        if pad == 0 {
            return Ok(self.clone());
        }
        let (c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (nh, nw) = (h + 2 * pad, w + 2 * pad);
        let mut out = Tensor::zeros(&[c, nh, nw]);
        let src = self.data();
        let dst = out.data_mut();
        for ci in 0..c {
            for y in 0..h {
                let src_row = ci * h * w + y * w;
                let dst_row = ci * nh * nw + (y + pad) * nw + pad;
                dst[dst_row..dst_row + w].copy_from_slice(&src[src_row..src_row + w]);
            }
        }
        Ok(out)
    }

    /// Removes `pad` border pixels from each side of a `[C, H, W]` tensor
    /// (the inverse of [`Tensor::pad_spatial`]).
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank 3 and large enough.
    pub fn unpad_spatial(&self, pad: usize) -> Result<Tensor> {
        if self.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                got: self.ndim(),
                op: "unpad_spatial",
            });
        }
        if pad == 0 {
            return Ok(self.clone());
        }
        let (h, w) = (self.shape()[1], self.shape()[2]);
        if h < 2 * pad || w < 2 * pad {
            return Err(TensorError::InvalidArgument {
                reason: format!("unpad_spatial: pad {pad} too large for {h}x{w}"),
            });
        }
        self.slice_axis(1, pad, h - pad)?
            .slice_axis(2, pad, w - pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn(&[3, 5], |i| i as f32);
        let tt = t.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]).unwrap(), 6.0);
        assert_eq!(tt.get(&[0, 1]).unwrap(), 4.0);
    }

    #[test]
    fn permute_matches_transpose_for_rank2() {
        let t = Tensor::from_fn(&[4, 6], |i| (i as f32).sin());
        assert_eq!(t.permute(&[1, 0]).unwrap(), t.transpose2d().unwrap());
    }

    #[test]
    fn permute_identity() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        assert_eq!(t.permute(&[0, 1, 2]).unwrap(), t);
    }

    #[test]
    fn permute_rejects_non_permutation() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
        assert!(t.permute(&[0]).is_err());
    }

    #[test]
    fn slice_axis_middle() {
        let t = Tensor::from_fn(&[2, 4, 3], |i| i as f32);
        let s = t.slice_axis(1, 1, 3).unwrap();
        assert_eq!(s.shape(), &[2, 2, 3]);
        assert_eq!(s.get(&[0, 0, 0]).unwrap(), t.get(&[0, 1, 0]).unwrap());
        assert_eq!(s.get(&[1, 1, 2]).unwrap(), t.get(&[1, 2, 2]).unwrap());
    }

    #[test]
    fn slice_axis_bounds_checked() {
        let t = Tensor::zeros(&[2, 4]);
        assert!(t.slice_axis(1, 3, 5).is_err());
        assert!(t.slice_axis(1, 3, 2).is_err());
        assert!(t.slice_axis(2, 0, 1).is_err());
    }

    #[test]
    fn concat_then_slice_recovers_parts() {
        let a = Tensor::from_fn(&[2, 2], |i| i as f32);
        let b = Tensor::from_fn(&[2, 3], |i| 100.0 + i as f32);
        let c = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.shape(), &[2, 5]);
        assert_eq!(c.slice_axis(1, 0, 2).unwrap(), a);
        assert_eq!(c.slice_axis(1, 2, 5).unwrap(), b);
    }

    #[test]
    fn concat_axis0() {
        let a = Tensor::from_fn(&[1, 3], |i| i as f32);
        let b = Tensor::from_fn(&[2, 3], |i| 10.0 + i as f32);
        let c = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.shape(), &[3, 3]);
        assert_eq!(c.get(&[0, 2]).unwrap(), 2.0);
        assert_eq!(c.get(&[1, 0]).unwrap(), 10.0);
    }

    #[test]
    fn concat_rejects_mismatched_dims() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[3, 3]);
        assert!(Tensor::concat(&[&a, &b], 0).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn pad_unpad_round_trip() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32 + 1.0);
        let padded = t.pad_spatial(2).unwrap();
        assert_eq!(padded.shape(), &[2, 7, 8]);
        assert_eq!(padded.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(padded.get(&[0, 2, 2]).unwrap(), 1.0);
        assert_eq!(padded.unpad_spatial(2).unwrap(), t);
    }

    #[test]
    fn pad_zero_is_identity() {
        let t = Tensor::from_fn(&[1, 2, 2], |i| i as f32);
        assert_eq!(t.pad_spatial(0).unwrap(), t);
    }
}
