// Fixture: panicking library code without justification must trip R3 —
// plus a marker with no written reason, which is itself a finding.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("numeric")
}

pub fn boom() {
    panic!("unconditional");
}

pub fn reasonless(v: Option<u32>) -> u32 {
    // lint: allow(panic)
    v.unwrap()
}
