//! Seeded measured-vs-predicted comparison over the multiplier library,
//! for both of the paper's architectures.
//!
//! Trains the small CapsNet and DeepCaps, calibrates and lowers each
//! through the architecture-generic quantized pipeline, then for every
//! selected approximate multiplier scores the same uniform assignment
//! on the measured backend (the real component model inside every MAC)
//! and the noise-predicted backend (the paper's Gaussian injection) —
//! and, in heterogeneous mode (default; `--heterogeneous` forces it
//! on), re-scores each architecture's Step-6 per-layer design on both
//! backends. One JSON line per `(architecture, component-or-design)`
//! to stdout (progress goes to stderr). Usage:
//!
//! ```text
//! qdp [--quick] [--benchmark mnist|fashion|svhn|cifar] [--seed N]
//!     [--arch capsnet|deepcaps|both] [--components name,name,...]
//!     [--heterogeneous | --no-heterogeneous] [--out PATH] [--threads N]
//!     [--artifacts DIR] [--no-cache] [--profile PATH]
//!     [--profile-counters PATH] [--profile-folded PATH]
//! ```
//!
//! Trained weights, calibrated ranges and the characterized `(NA, NM)`
//! table go through the trained-artifact store (default
//! `.redcane-artifacts`, or `REDCANE_ARTIFACTS`): warm runs restore
//! instead of training. `--no-cache` forces a cold run.

use std::process::ExitCode;

use redcane::report::json::Value;
use redcane_artifacts::ArtifactStore;
use redcane_bench::cli::{next_parsed, next_value};
use redcane_bench::profile::ProfileArgs;
use redcane_bench::qdp::{qdp_to_json_lines, run_qdp, QdpArch, QdpConfig};
use redcane_datasets::Benchmark;

fn main() -> ExitCode {
    let mut cfg = QdpConfig::smoke();
    let mut out_path: Option<String> = None;
    let mut artifacts_flag: Option<String> = None;
    let mut no_cache = false;
    let mut profile = ProfileArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let parsed: Result<(), String> = match flag.as_str() {
            "--quick" => {
                // Keep any --seed/--benchmark/--arch/--components/
                // --[no-]heterogeneous given before the flag; --quick
                // only rescales the run.
                cfg = QdpConfig {
                    benchmark: cfg.benchmark,
                    seed: cfg.seed,
                    archs: cfg.archs,
                    components: cfg.components.or(QdpConfig::quick().components),
                    heterogeneous: cfg.heterogeneous,
                    ..QdpConfig::quick()
                };
                Ok(())
            }
            "--heterogeneous" => {
                cfg.heterogeneous = true;
                Ok(())
            }
            "--no-heterogeneous" => {
                cfg.heterogeneous = false;
                Ok(())
            }
            "--benchmark" => next_value(&mut args, "--benchmark").and_then(|v| match v.as_str() {
                "mnist" => {
                    cfg.benchmark = Benchmark::MnistLike;
                    Ok(())
                }
                "fashion" => {
                    cfg.benchmark = Benchmark::FashionLike;
                    Ok(())
                }
                "svhn" => {
                    cfg.benchmark = Benchmark::SvhnLike;
                    Ok(())
                }
                "cifar" => {
                    cfg.benchmark = Benchmark::Cifar10Like;
                    Ok(())
                }
                other => Err(format!("unknown benchmark '{other}'")),
            }),
            "--arch" => next_value(&mut args, "--arch").and_then(|v| match v.as_str() {
                "capsnet" => {
                    cfg.archs = vec![QdpArch::CapsNet];
                    Ok(())
                }
                "deepcaps" => {
                    cfg.archs = vec![QdpArch::DeepCaps];
                    Ok(())
                }
                "both" => {
                    cfg.archs = vec![QdpArch::CapsNet, QdpArch::DeepCaps];
                    Ok(())
                }
                other => Err(format!("unknown arch '{other}'")),
            }),
            "--seed" => next_parsed(&mut args, "--seed").map(|v| cfg.seed = v),
            "--components" => next_value(&mut args, "--components").map(|v| {
                cfg.components = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }),
            "--out" => next_value(&mut args, "--out").map(|v| out_path = Some(v)),
            "--artifacts" => next_value(&mut args, "--artifacts").map(|v| artifacts_flag = Some(v)),
            "--no-cache" => {
                no_cache = true;
                Ok(())
            }
            "--threads" => next_parsed(&mut args, "--threads")
                .map(|v: usize| redcane_tensor::par::set_threads(v)),
            "--help" | "-h" => {
                eprintln!(
                    "qdp: measured vs noise-predicted accuracy drop per multiplier \
                     and for the heterogeneous Step-6 design\n\
                     flags: --quick, --benchmark mnist|fashion|svhn|cifar, --seed N, \
                     --arch capsnet|deepcaps|both, --components a,b,..., \
                     --heterogeneous, --no-heterogeneous, --out PATH, --threads N, \
                     --artifacts DIR, --no-cache, --profile PATH, \
                     --profile-counters PATH, --profile-folded PATH"
                );
                return ExitCode::SUCCESS;
            }
            other => profile
                .match_flag(other, &mut args)
                .unwrap_or_else(|| Err(format!("unknown flag '{other}'"))),
        };
        if let Err(msg) = parsed {
            eprintln!("qdp: {msg}");
            return ExitCode::FAILURE;
        }
    }

    cfg.artifacts = ArtifactStore::resolve_dir(artifacts_flag.as_deref(), no_cache);
    profile.enable_if_requested();
    let outcome = run_qdp(&cfg);
    let lines: Vec<String> = qdp_to_json_lines(&outcome)
        .iter()
        .map(|v| v.dump())
        .collect();
    for line in &lines {
        println!("{line}");
    }
    for arch in &outcome.archs {
        eprintln!(
            "[qdp] {}: {} ({} component(s), float baseline {:.3})",
            arch.arch.label(),
            arch.provenance.label(),
            arch.rows.len(),
            arch.float_accuracy
        );
    }
    eprintln!("[qdp] total {:.2}s", outcome.total_s);
    if let Some(path) = out_path {
        let body = lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("qdp: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let meta = vec![(
        "provenance".to_string(),
        Value::Obj(
            outcome
                .archs
                .iter()
                .map(|a| {
                    (
                        a.arch.label().to_string(),
                        Value::from(a.provenance.label()),
                    )
                })
                .collect(),
        ),
    )];
    if let Err(msg) = profile.write("qdp", meta, true) {
        eprintln!("qdp: {msg}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
