//! The `faults` bench mode: per-site criticality of discrete hardware
//! faults across the quantized datapath, for both of the paper's
//! architectures.
//!
//! Where the `qdp` bench validates the paper's *Gaussian* error model
//! against measured accuracy, this bench exercises the second error
//! model family (`redcane::faults`): transient bit flips, permanently
//! stuck bit lanes and dead multiplier arrays, injected one site at a
//! time into an otherwise **exact** quantized datapath. Every trial
//! builds a single-site [`FaultPlan`], layers a [`FaultMeasured`]
//! backend over the shared lowered program and measures what the
//! faulted hardware actually scores:
//!
//! - **weight-code stuck-at-1 per bit index** — the classic
//!   critical-bit analysis: which stored-weight bit, when stuck,
//!   costs the most accuracy (the MSB-adjacent bits should dominate);
//! - **multiplier bit flips** at a grid of bit error rates;
//! - **accumulator stuck lanes** at high bit indices (32-bit datapath);
//! - **activation-register bit flips**;
//! - **a dead multiplier array** — with `fail_soft`, the site
//!   downgrades to the exact multiplier and the row reports the
//!   downgrade; without it, the row records the refusal
//!   ([`BackendError::DeadSite`]) instead of an accuracy.
//!
//! Each fault model is additionally *characterized* — mean and RMS
//! product error over the run's empirical operand pools, normalized by
//! the full-scale product — mirroring the `(NA, NM)` characterization
//! of approximate components; the table is cached in the same
//! trained-artifact entry the `qdp` bench uses ([`TrainKnobs`]).
//!
//! Beyond the single-site trials, each architecture runs one
//! **correlated multi-site plan**: a single [`FaultPlan`] carrying a
//! deterministically-chosen fault at every swept site simultaneously
//! (`combined_plan` row) — the compound-failure scenario per-site
//! rows cannot show.
//!
//! One JSON line per trial plus one `site_criticality` summary line
//! per site (max/mean drop, critical weight bit) plus one
//! `combined_plan` line per architecture. Trials fan out over
//! [`par::map_with`] workers; every quantity derives only from the
//! seed, the architecture tag, the site index and the trial index, so
//! the output is byte-identical at every `REDCANE_THREADS` setting.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use redcane::datapath::{AccuracyBackend, DatapathAssignment, SiteKey};
use redcane::faults::{mix64, FaultModel, FaultPlan, FaultTarget, SiteFault};
use redcane::report::json::Value;
use redcane_artifacts::{load_or_train, ArtifactStore, FaultChar, Provenance};
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::{CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig, OpKind};
use redcane_datasets::{generate, Benchmark, DatasetPair, GenerateConfig};
use redcane_qdp::{FaultMeasured, QModel, QuantMeasured, QuantRanges};
use redcane_tensor::{par, TensorRng};

use crate::qdp::{QdpArch, TrainKnobs, WEIGHT_POOL_CODES};

/// The exact multiplier every non-faulted site runs: fault trials
/// measure the fault's own effect, not an approximate component's.
const EXACT_COMPONENT: &str = "mul8u_1JFF";

/// Full-scale 8×8-bit product, the characterization normalizer.
const FULL_SCALE: f64 = 65025.0;

/// Configuration of a `faults` resilience sweep; fully determined by
/// its fields, so equal configs give equal outcomes.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Which benchmark family to synthesize.
    pub benchmark: Benchmark,
    /// Master seed (dataset, init, training, fault realizations).
    pub seed: u64,
    /// Architectures to sweep, in output order.
    pub archs: Vec<QdpArch>,
    /// Training samples to generate.
    pub train: usize,
    /// Test samples to generate.
    pub test: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Clean training inputs swept through the float network to
    /// calibrate the quantization ranges.
    pub calib_samples: usize,
    /// Test-subset size every trial evaluates on.
    pub eval_samples: usize,
    /// Samples per fault-model characterization.
    pub characterization_samples: usize,
    /// Weight-code stuck-at-1 bit indices (the critical-bit grid);
    /// only sites backed by weight memory get these trials.
    pub stuck_bits: Vec<u32>,
    /// Multiplier bit-flip error rates.
    pub bers: Vec<f64>,
    /// Accumulator stuck-at-1 bit indices (32-bit datapath).
    pub acc_bits: Vec<u32>,
    /// Activation-register bit-flip error rates.
    pub act_bers: Vec<f64>,
    /// Include one dead-multiplier trial per site.
    pub dead: bool,
    /// Cap on sites swept per architecture (`None` = every site); the
    /// skipped count is logged and reported per architecture.
    pub max_sites: Option<usize>,
    /// Downgrade dead sites to the exact multiplier (and report the
    /// downgrade) instead of refusing to evaluate.
    pub fail_soft: bool,
    /// Trained-artifact store directory (shared with the `qdp` bench);
    /// `None` disables the store.
    pub artifacts: Option<PathBuf>,
}

impl FaultsConfig {
    /// The full seeded sweep: every datapath site of both
    /// architectures under the whole fault grid.
    pub fn smoke() -> Self {
        FaultsConfig {
            benchmark: Benchmark::MnistLike,
            seed: 1,
            archs: vec![QdpArch::CapsNet, QdpArch::DeepCaps],
            train: 600,
            test: 150,
            epochs: 6,
            batch_size: 16,
            lr: 2e-3,
            calib_samples: 64,
            eval_samples: 40,
            characterization_samples: 4000,
            stuck_bits: (0..8).collect(),
            bers: vec![1e-3, 1e-2, 5e-2],
            acc_bits: vec![8, 16, 24, 30],
            act_bers: vec![1e-2],
            dead: true,
            max_sites: None,
            fail_soft: false,
            artifacts: None,
        }
    }

    /// CI-sized: scaled-down training matching `QdpConfig::quick()` —
    /// so CI's qdp-trained artifacts warm this bench — a thinned fault
    /// grid, and the first few sites per architecture.
    pub fn quick() -> Self {
        FaultsConfig {
            train: 200,
            test: 60,
            epochs: 3,
            calib_samples: 32,
            eval_samples: 30,
            characterization_samples: 2000,
            stuck_bits: vec![0, 3, 7],
            bers: vec![1e-2],
            acc_bits: vec![24],
            act_bers: vec![1e-2],
            max_sites: Some(3),
            ..FaultsConfig::smoke()
        }
    }
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig::smoke()
    }
}

/// The canonical fault-model set the trained-artifact store caches a
/// characterization for: the smoke grid. Runs whose grids subset it
/// (like `quick()`) restore every row; anything else is characterized
/// live — same numbers, just not cached.
pub(crate) fn canonical_faults() -> Vec<SiteFault> {
    trial_faults(&FaultsConfig::smoke(), true)
}

/// The per-site trial list: one [`SiteFault`] per grid point.
/// `weight_memory` gates the weight-code trials — routing MACs stream
/// both operands, so there is no stored code for a stuck cell to
/// corrupt.
fn trial_faults(cfg: &FaultsConfig, weight_memory: bool) -> Vec<SiteFault> {
    let mut out = Vec::new();
    if weight_memory {
        for &bit in &cfg.stuck_bits {
            out.push(SiteFault::new(
                FaultTarget::WeightCodes,
                FaultModel::StuckAt {
                    lanes: 1 << bit,
                    value: true,
                },
            ));
        }
    }
    for &ber in &cfg.bers {
        out.push(SiteFault::new(
            FaultTarget::Multiplier,
            FaultModel::BitFlip { ber },
        ));
    }
    for &bit in &cfg.acc_bits {
        out.push(SiteFault::new(
            FaultTarget::Accumulator,
            FaultModel::StuckAt {
                lanes: 1 << bit,
                value: true,
            },
        ));
    }
    for &ber in &cfg.act_bers {
        out.push(SiteFault::new(
            FaultTarget::ActivationCodes,
            FaultModel::BitFlip { ber },
        ));
    }
    if cfg.dead {
        out.push(SiteFault::new(
            FaultTarget::Multiplier,
            FaultModel::DeadOutput,
        ));
    }
    out
}

/// Draws one operand code from a pool (uniform byte when empty).
fn draw(pool: &[u8], word: u64) -> u32 {
    if pool.is_empty() {
        (word & 0xff) as u32
    } else {
        u32::from(pool[(word % pool.len() as u64) as usize])
    }
}

/// Characterizes one fault model over the empirical operand pools:
/// mean and RMS error of the faulted single-MAC product against the
/// exact product, normalized by the full-scale product — the discrete
/// family's analogue of an approximate component's `(NA, NM)`.
///
/// The realization seed derives from the fault's spec string, never
/// from a site: the characterization is a property of the fault model,
/// cacheable under its spec alone.
pub fn characterize_fault(
    fault: &SiteFault,
    activations: &[u8],
    weights: &[u8],
    samples: usize,
    seed: u64,
) -> FaultChar {
    let spec = fault.spec();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in spec.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let rseed = mix64(seed, h, 0);
    let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
    for i in 0..samples {
        let i = i as u64;
        let a = draw(activations, mix64(seed, i, 1));
        let b = draw(weights, mix64(seed, i, 2));
        let exact = a * b;
        let faulted = match fault.target {
            FaultTarget::WeightCodes => a * fault.model.apply(b, 8, rseed, i),
            FaultTarget::ActivationCodes => fault.model.apply(a, 8, rseed, i) * b,
            FaultTarget::Multiplier => fault.model.apply(exact, 16, rseed, i),
            FaultTarget::Accumulator => fault.model.apply(exact, 32, rseed, i),
        };
        let err = (i64::from(faulted) - i64::from(exact)) as f64 / FULL_SCALE;
        sum += err;
        sum_sq += err * err;
    }
    let n = samples.max(1) as f64;
    FaultChar {
        spec,
        samples: samples as u64,
        mean_err: sum / n,
        rms_err: (sum_sq / n).sqrt(),
    }
}

/// Characterizes the whole canonical fault set — the table
/// [`TrainKnobs::produce`] stores next to the `(NA, NM)` noise table.
pub(crate) fn characterize_canonical(
    activations: &[u8],
    weights: &[u8],
    samples: usize,
    seed: u64,
) -> Vec<FaultChar> {
    canonical_faults()
        .iter()
        .map(|f| characterize_fault(f, activations, weights, samples, seed))
        .collect()
}

/// One fault trial: a single-site plan, its characterization, and what
/// the faulted datapath scored.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrial {
    /// The injected site.
    pub site: SiteKey,
    /// The injected fault.
    pub fault: SiteFault,
    /// The trial's plan seed (fault realizations derive from it).
    pub plan_seed: u64,
    /// The fault model's operand-pool characterization.
    pub characterization: FaultChar,
    /// Accuracy of the faulted datapath on the eval subset; `None`
    /// when the backend refused (strict mode, dead site).
    pub accuracy: Option<f64>,
    /// Sites downgraded to the exact multiplier (fail-soft only).
    pub downgraded: Vec<SiteKey>,
    /// The refusal, verbatim, when `accuracy` is `None`.
    pub error: Option<String>,
}

/// The correlated multi-site trial: one [`FaultPlan`] carrying a
/// fault at **every** swept site simultaneously — the "many things
/// break at once" scenario single-site trials cannot show — evaluated
/// in a single pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedPlanTrial {
    /// The injected `(site, fault)` pairs, in site (program) order.
    pub faults: Vec<(SiteKey, SiteFault)>,
    /// The plan seed shared by every site's fault realization.
    pub plan_seed: u64,
    /// Accuracy of the multi-faulted datapath; `None` when the
    /// backend refused (strict mode, dead site in the plan).
    pub accuracy: Option<f64>,
    /// Sites downgraded to the exact multiplier (fail-soft only).
    pub downgraded: Vec<SiteKey>,
    /// The refusal, verbatim, when `accuracy` is `None`.
    pub error: Option<String>,
}

/// One site's criticality summary over its trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteCriticality {
    /// The summarized site.
    pub site: SiteKey,
    /// Trials run at this site.
    pub trials: usize,
    /// The weight bit whose stuck-at-1 fault cost the most accuracy
    /// (`None` for sites without weight memory).
    pub critical_bit: Option<u32>,
    /// That bit's accuracy drop in percentage points.
    pub critical_bit_drop_pp: Option<f64>,
    /// Worst accuracy drop over all scored trials, in pp.
    pub max_drop_pp: f64,
    /// Mean accuracy drop over all scored trials, in pp.
    pub mean_drop_pp: f64,
}

/// One architecture's full resilience sweep.
#[derive(Debug, Clone)]
pub struct FaultsArchOutcome {
    /// The architecture swept.
    pub arch: QdpArch,
    /// Model display name.
    pub model_name: String,
    /// Fault-free accuracy of the exact quantized datapath on the eval
    /// subset — the baseline every drop is measured against.
    pub baseline_accuracy: f64,
    /// All trials: sites in program order, grid order within a site.
    pub trials: Vec<FaultTrial>,
    /// Per-site summaries, in program order.
    pub sites: Vec<SiteCriticality>,
    /// The correlated multi-site plan's trial (one per architecture).
    pub combined: CombinedPlanTrial,
    /// Sites beyond `max_sites` that were NOT swept.
    pub skipped_sites: usize,
    /// Trained this run or restored from the artifact store. Not part
    /// of the JSON schema: cold and warm runs must emit byte-identical
    /// artifacts.
    pub provenance: Provenance,
}

/// The result of one full `faults` run.
#[derive(Debug, Clone)]
pub struct FaultsOutcome {
    /// The configuration that produced it.
    pub config: FaultsConfig,
    /// One sweep per configured architecture, in `config.archs` order.
    pub archs: Vec<FaultsArchOutcome>,
    /// Total wall-clock seconds.
    pub total_s: f64,
}

/// Runs dataset generation → training (or restore) → the per-site
/// fault-injection sweep for every configured architecture,
/// deterministically from `cfg.seed` (and independent of the
/// worker-thread count).
///
/// # Panics
///
/// Panics on empty train/test/eval/arch settings or an empty fault
/// grid.
pub fn run_faults(cfg: &FaultsConfig) -> FaultsOutcome {
    assert!(cfg.train > 0, "faults needs training samples");
    assert!(
        cfg.test > 0 && cfg.eval_samples > 0,
        "faults needs test samples"
    );
    assert!(
        !trial_faults(cfg, true).is_empty(),
        "faults needs a non-empty fault grid"
    );
    assert!(
        !cfg.archs.is_empty(),
        "faults needs at least one architecture"
    );
    let t0 = Instant::now();

    let pair = generate(
        cfg.benchmark,
        &GenerateConfig {
            train: cfg.train,
            test: cfg.test,
            seed: cfg.seed,
        },
    );
    let library = MultiplierLibrary::evo_approx_like();
    let luts = LutCache::tabulate_all(&library);
    let (channels, height, _) = cfg.benchmark.geometry();
    let store = cfg.artifacts.as_ref().map(ArtifactStore::new);

    let archs = cfg
        .archs
        .iter()
        .map(|&arch| {
            // Same per-arch init seed as the qdp bench: the shared
            // artifact key must describe the same trained model.
            let mut rng = TensorRng::from_seed(
                cfg.seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(7 + arch.seed_tag()),
            );
            match arch {
                QdpArch::CapsNet => {
                    let model = CapsNet::new(&CapsNetConfig::small(channels, height), &mut rng);
                    sweep_arch(cfg, arch, model, &pair, &library, &luts, store.as_ref())
                }
                QdpArch::DeepCaps => {
                    let model = DeepCaps::new(&DeepCapsConfig::small(channels, height), &mut rng);
                    sweep_arch(cfg, arch, model, &pair, &library, &luts, store.as_ref())
                }
            }
        })
        .collect();

    FaultsOutcome {
        config: cfg.clone(),
        archs,
        total_s: t0.elapsed().as_secs_f64(),
    }
}

/// Trains (or restores), lowers once, and runs one architecture's
/// fault sweep.
fn sweep_arch<M: CapsModel + Clone + Send + Sync + 'static>(
    cfg: &FaultsConfig,
    arch: QdpArch,
    mut model: M,
    pair: &DatasetPair,
    library: &MultiplierLibrary,
    luts: &LutCache,
    store: Option<&ArtifactStore>,
) -> FaultsArchOutcome {
    let knobs = TrainKnobs {
        benchmark: cfg.benchmark,
        seed: cfg.seed,
        train: cfg.train,
        test: cfg.test,
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        calib_samples: cfg.calib_samples,
        characterization_samples: cfg.characterization_samples,
        library,
    };
    let key = knobs.key(arch);
    let (payload, provenance) = load_or_train(store, &key, &mut model, |m| knobs.produce(m, pair));

    let eval = pair.test.take(cfg.eval_samples);
    let ranges = QuantRanges::from_entries(&payload.ranges);
    let qmodel = QModel::lower(&model, &ranges).expect("every site calibrated");
    let all_sites = qmodel.multiply_sites();
    let (sites, skipped_sites) = match cfg.max_sites {
        Some(n) if all_sites.len() > n => (all_sites[..n].to_vec(), all_sites.len() - n),
        _ => (all_sites, 0),
    };
    let weights_pool = qmodel.weight_code_sample(WEIGHT_POOL_CODES);
    let measured = QuantMeasured::new(qmodel, luts.clone());
    let assignment = DatapathAssignment::uniform(EXACT_COMPONENT);
    let baseline_accuracy = measured
        .evaluate(&model, &eval, &assignment)
        .expect("uniform exact assignment covers every site");
    eprintln!(
        "[faults] {} {} — exact-datapath baseline {:.3} on {} samples, {} site(s){}",
        provenance.label(),
        model.name(),
        baseline_accuracy,
        eval.len(),
        sites.len(),
        if skipped_sites > 0 {
            format!(" ({skipped_sites} skipped by --max-sites)")
        } else {
            String::new()
        }
    );

    // Weight-code faults only make sense where a stored code backs the
    // MAC: the non-routing MacOutput sites.
    let trial_lists: Vec<Vec<SiteFault>> = sites
        .iter()
        .map(|(_, kind, in_routing)| trial_faults(cfg, *kind == OpKind::MacOutput && !in_routing))
        .collect();

    // Characterize each distinct fault spec once, preferring the
    // cached table (stored at the same characterization sample count).
    let mut chars: BTreeMap<String, FaultChar> = BTreeMap::new();
    for fault in trial_lists.iter().flatten() {
        let spec = fault.spec();
        if let std::collections::btree_map::Entry::Vacant(slot) = chars.entry(spec) {
            let cached = payload
                .fault_table
                .iter()
                .find(|c| c.spec == *slot.key() && c.samples == cfg.characterization_samples as u64)
                .cloned();
            slot.insert(cached.unwrap_or_else(|| {
                characterize_fault(
                    fault,
                    &payload.activation_codes,
                    &weights_pool,
                    cfg.characterization_samples,
                    cfg.seed ^ 0xfa17,
                )
            }));
        }
    }

    // Flatten (site, trial) and fan out. Every per-trial quantity
    // derives only from (seed, arch identity, site index, trial
    // index) — never from the worker that computed it.
    let flat: Vec<(usize, usize)> = trial_lists
        .iter()
        .enumerate()
        .flat_map(|(si, list)| (0..list.len()).map(move |ti| (si, ti)))
        .collect();
    let trials: Vec<FaultTrial> = par::map_with(
        flat.len(),
        || (),
        |(), k| {
            let (si, ti) = flat[k];
            let (layer, kind, in_routing) = &sites[si];
            let fault = &trial_lists[si][ti];
            let plan_seed = mix64(
                cfg.seed ^ 0xfa17_5eed,
                (arch.seed_tag() << 32) | si as u64,
                ti as u64,
            );
            let plan = FaultPlan::identity(plan_seed).with(
                layer.clone(),
                *kind,
                *in_routing,
                fault.clone(),
            );
            let backend = FaultMeasured::over(&measured, plan, cfg.fail_soft);
            let (accuracy, downgraded, error) = match backend.evaluate(&model, &eval, &assignment) {
                Ok(acc) => {
                    let downgraded = backend
                        .downgraded_sites(&assignment)
                        .expect("evaluation already resolved this assignment");
                    (Some(acc), downgraded, None)
                }
                Err(e) => (None, Vec::new(), Some(e.to_string())),
            };
            FaultTrial {
                site: sites[si].clone(),
                fault: fault.clone(),
                plan_seed,
                characterization: chars[&fault.spec()].clone(),
                accuracy,
                downgraded,
                error,
            }
        },
    );

    // The correlated scenario: one fault per swept site, all in ONE
    // plan, chosen deterministically from each site's own trial list.
    // Dead-output faults only join the plan under fail-soft — in
    // strict mode a single dead site would turn the whole combined
    // row into a refusal.
    let combined = {
        let plan_seed = mix64(cfg.seed ^ 0xfa17_5eed, arch.seed_tag(), 0xc0b1);
        let mut plan = FaultPlan::identity(plan_seed);
        let mut faults = Vec::with_capacity(sites.len());
        for (si, list) in trial_lists.iter().enumerate() {
            let candidates: Vec<&SiteFault> = list
                .iter()
                .filter(|f| cfg.fail_soft || f.model != FaultModel::DeadOutput)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = mix64(
                cfg.seed ^ 0xc0b1_4ed5,
                (arch.seed_tag() << 32) | si as u64,
                0,
            ) % candidates.len() as u64;
            let fault = candidates[pick as usize].clone();
            let (layer, kind, in_routing) = &sites[si];
            plan = plan.with(layer.clone(), *kind, *in_routing, fault.clone());
            faults.push((sites[si].clone(), fault));
        }
        let backend = FaultMeasured::over(&measured, plan, cfg.fail_soft);
        let (accuracy, downgraded, error) = match backend.evaluate(&model, &eval, &assignment) {
            Ok(acc) => {
                let downgraded = backend
                    .downgraded_sites(&assignment)
                    .expect("evaluation already resolved this assignment");
                (Some(acc), downgraded, None)
            }
            Err(e) => (None, Vec::new(), Some(e.to_string())),
        };
        CombinedPlanTrial {
            faults,
            plan_seed,
            accuracy,
            downgraded,
            error,
        }
    };
    eprintln!(
        "[faults] {} combined plan over {} site(s): {}",
        arch.label(),
        combined.faults.len(),
        match (combined.accuracy, &combined.error) {
            (Some(acc), _) => format!(
                "accuracy {:.3} (drop {:+.1} pp)",
                acc,
                (baseline_accuracy - acc) * 100.0
            ),
            (None, Some(e)) => format!("refused: {e}"),
            (None, None) => "no faults injected".to_string(),
        }
    );

    let sites = summarize_sites(&sites, &trial_lists, &trials, baseline_accuracy);
    for s in &sites {
        eprintln!(
            "[faults] {} {:<12} {:>12}{}  max drop {:+.1} pp  mean {:+.1} pp{}",
            arch.label(),
            s.site.0,
            op_slug(s.site.1),
            if s.site.2 { "@routing" } else { "" },
            s.max_drop_pp,
            s.mean_drop_pp,
            match s.critical_bit {
                Some(bit) => format!("  critical weight bit {bit}"),
                None => String::new(),
            }
        );
    }

    FaultsArchOutcome {
        arch,
        model_name: model.name(),
        baseline_accuracy,
        trials,
        sites,
        combined,
        skipped_sites,
        provenance,
    }
}

/// Folds an architecture's trials into per-site criticality summaries.
fn summarize_sites(
    sites: &[SiteKey],
    trial_lists: &[Vec<SiteFault>],
    trials: &[FaultTrial],
    baseline: f64,
) -> Vec<SiteCriticality> {
    let mut out = Vec::with_capacity(sites.len());
    let mut cursor = 0;
    for (si, site) in sites.iter().enumerate() {
        let n = trial_lists[si].len();
        let slice = &trials[cursor..cursor + n];
        cursor += n;
        let drops: Vec<f64> = slice
            .iter()
            .filter_map(|t| t.accuracy.map(|a| (baseline - a) * 100.0))
            .collect();
        let (mut critical_bit, mut critical_drop) = (None, f64::NEG_INFINITY);
        for t in slice {
            if let (FaultTarget::WeightCodes, FaultModel::StuckAt { lanes, .. }, Some(acc)) =
                (t.fault.target, t.fault.model, t.accuracy)
            {
                let drop = (baseline - acc) * 100.0;
                if drop > critical_drop {
                    critical_drop = drop;
                    critical_bit = Some(lanes.trailing_zeros());
                }
            }
        }
        out.push(SiteCriticality {
            site: site.clone(),
            trials: n,
            critical_bit,
            critical_bit_drop_pp: critical_bit.map(|_| critical_drop),
            max_drop_pp: drops.iter().copied().fold(0.0, f64::max),
            mean_drop_pp: if drops.is_empty() {
                0.0
            } else {
                drops.iter().sum::<f64>() / drops.len() as f64
            },
        });
    }
    out
}

/// Stable slug per [`OpKind`], matching the core fault-plan schema.
fn op_slug(kind: OpKind) -> &'static str {
    match kind {
        OpKind::MacOutput => "mac_output",
        OpKind::Activation => "activation",
        OpKind::Softmax => "softmax",
        OpKind::LogitsUpdate => "logits_update",
        OpKind::MacInput => "mac_input",
    }
}

/// A site key as a self-contained JSON object.
fn site_to_json(site: &SiteKey) -> Value {
    Value::Obj(vec![
        ("layer".into(), Value::from(site.0.clone())),
        ("op".into(), Value::from(op_slug(site.1))),
        ("in_routing".into(), Value::Bool(site.2)),
    ])
}

/// The fields every `faults` JSON line leads with.
fn row_head(cfg: &FaultsConfig, arch: &FaultsArchOutcome, row: &str) -> Vec<(String, Value)> {
    vec![
        ("bench".into(), Value::from("faults")),
        // v2: one `combined_plan` row per architecture (a correlated
        // multi-site plan) after the per-site rows.
        ("schema_version".into(), Value::from(2usize)),
        ("row".into(), Value::from(row)),
        ("benchmark".into(), Value::from(cfg.benchmark.name())),
        // String: u64 seeds above 2^53 would round through a JSON number.
        ("seed".into(), Value::from(cfg.seed.to_string())),
        ("arch".into(), Value::from(arch.arch.label())),
        ("model".into(), Value::from(arch.model_name.clone())),
        ("fail_soft".into(), Value::Bool(cfg.fail_soft)),
        ("eval_samples".into(), Value::from(cfg.eval_samples)),
        (
            "baseline_accuracy".into(),
            Value::from(arch.baseline_accuracy),
        ),
    ]
}

/// Serializes one trial as a self-contained JSON line.
pub fn fault_trial_to_json(cfg: &FaultsConfig, arch: &FaultsArchOutcome, t: &FaultTrial) -> Value {
    let mut fields = row_head(cfg, arch, "trial");
    fields.extend([
        ("layer".into(), Value::from(t.site.0.clone())),
        ("op".into(), Value::from(op_slug(t.site.1))),
        ("in_routing".into(), Value::Bool(t.site.2)),
        ("target".into(), Value::from(t.fault.target.label())),
        ("fault".into(), Value::from(t.fault.model.label())),
        ("spec".into(), Value::from(t.fault.spec())),
        ("plan_seed".into(), Value::from(t.plan_seed.to_string())),
        (
            "char_samples".into(),
            Value::from(t.characterization.samples as usize),
        ),
        (
            "char_mean_err".into(),
            Value::from(t.characterization.mean_err),
        ),
        (
            "char_rms_err".into(),
            Value::from(t.characterization.rms_err),
        ),
        (
            "accuracy".into(),
            match t.accuracy {
                Some(a) => Value::from(a),
                None => Value::Null,
            },
        ),
        (
            "drop_pp".into(),
            match t.accuracy {
                Some(a) => Value::from((arch.baseline_accuracy - a) * 100.0),
                None => Value::Null,
            },
        ),
        (
            "downgraded".into(),
            Value::Arr(t.downgraded.iter().map(site_to_json).collect()),
        ),
        (
            "error".into(),
            match &t.error {
                Some(e) => Value::from(e.clone()),
                None => Value::Null,
            },
        ),
    ]);
    Value::Obj(fields)
}

/// Serializes one site's criticality summary as a JSON line.
pub fn site_criticality_to_json(
    cfg: &FaultsConfig,
    arch: &FaultsArchOutcome,
    s: &SiteCriticality,
) -> Value {
    let mut fields = row_head(cfg, arch, "site_criticality");
    fields.extend([
        ("layer".into(), Value::from(s.site.0.clone())),
        ("op".into(), Value::from(op_slug(s.site.1))),
        ("in_routing".into(), Value::Bool(s.site.2)),
        ("trials".into(), Value::from(s.trials)),
        (
            "critical_bit".into(),
            match s.critical_bit {
                Some(b) => Value::from(b as usize),
                None => Value::Null,
            },
        ),
        (
            "critical_bit_drop_pp".into(),
            match s.critical_bit_drop_pp {
                Some(d) => Value::from(d),
                None => Value::Null,
            },
        ),
        ("max_drop_pp".into(), Value::from(s.max_drop_pp)),
        ("mean_drop_pp".into(), Value::from(s.mean_drop_pp)),
        ("skipped_sites".into(), Value::from(arch.skipped_sites)),
    ]);
    Value::Obj(fields)
}

/// Serializes the correlated multi-site plan's trial as a JSON line.
pub fn combined_plan_to_json(
    cfg: &FaultsConfig,
    arch: &FaultsArchOutcome,
    t: &CombinedPlanTrial,
) -> Value {
    let faults: Vec<Value> = t
        .faults
        .iter()
        .map(|(site, fault)| {
            Value::Obj(vec![
                ("layer".into(), Value::from(site.0.clone())),
                ("op".into(), Value::from(op_slug(site.1))),
                ("in_routing".into(), Value::Bool(site.2)),
                ("target".into(), Value::from(fault.target.label())),
                ("fault".into(), Value::from(fault.model.label())),
                ("spec".into(), Value::from(fault.spec())),
            ])
        })
        .collect();
    let mut fields = row_head(cfg, arch, "combined_plan");
    fields.extend([
        ("faulted_sites".into(), Value::from(t.faults.len())),
        ("faults".into(), Value::Arr(faults)),
        ("plan_seed".into(), Value::from(t.plan_seed.to_string())),
        (
            "accuracy".into(),
            match t.accuracy {
                Some(a) => Value::from(a),
                None => Value::Null,
            },
        ),
        (
            "drop_pp".into(),
            match t.accuracy {
                Some(a) => Value::from((arch.baseline_accuracy - a) * 100.0),
                None => Value::Null,
            },
        ),
        (
            "downgraded".into(),
            Value::Arr(t.downgraded.iter().map(site_to_json).collect()),
        ),
        (
            "error".into(),
            match &t.error {
                Some(e) => Value::from(e.clone()),
                None => Value::Null,
            },
        ),
    ]);
    Value::Obj(fields)
}

/// All rows of an outcome as JSON lines: architectures in config
/// order; within each, every site's trial rows (grid order) followed
/// by its `site_criticality` summary row, then the architecture's
/// `combined_plan` row.
pub fn faults_to_json_lines(outcome: &FaultsOutcome) -> Vec<Value> {
    let mut lines = Vec::new();
    for arch in &outcome.archs {
        let mut cursor = 0;
        for s in &arch.sites {
            for t in &arch.trials[cursor..cursor + s.trials] {
                lines.push(fault_trial_to_json(&outcome.config, arch, t));
            }
            cursor += s.trials;
            lines.push(site_criticality_to_json(&outcome.config, arch, s));
        }
        lines.push(combined_plan_to_json(&outcome.config, arch, &arch.combined));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane::report::json;

    /// Serializes tests that mutate the process-wide thread override.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tiny(archs: Vec<QdpArch>) -> FaultsConfig {
        FaultsConfig {
            archs,
            train: 60,
            test: 24,
            epochs: 1,
            calib_samples: 8,
            eval_samples: 12,
            characterization_samples: 500,
            stuck_bits: vec![3, 7],
            bers: vec![5e-2],
            acc_bits: vec![30],
            act_bers: vec![],
            dead: true,
            max_sites: Some(2),
            fail_soft: true,
            ..FaultsConfig::smoke()
        }
    }

    #[test]
    fn characterization_orders_fault_severity_sensibly() {
        let acts: Vec<u8> = (0..=255).collect();
        let weights: Vec<u8> = (0..=255).rev().collect();
        let char_of = |fault: &SiteFault| characterize_fault(fault, &acts, &weights, 2000, 9);
        let identity = char_of(&SiteFault::new(
            FaultTarget::Multiplier,
            FaultModel::BitFlip { ber: 0.0 },
        ));
        assert_eq!((identity.mean_err, identity.rms_err), (0.0, 0.0));
        let dead = char_of(&SiteFault::new(
            FaultTarget::Multiplier,
            FaultModel::DeadOutput,
        ));
        assert!(dead.mean_err < 0.0, "dead outputs only lose magnitude");
        let low_bit = char_of(&SiteFault::new(
            FaultTarget::WeightCodes,
            FaultModel::StuckAt {
                lanes: 1 << 0,
                value: true,
            },
        ));
        let high_bit = char_of(&SiteFault::new(
            FaultTarget::WeightCodes,
            FaultModel::StuckAt {
                lanes: 1 << 7,
                value: true,
            },
        ));
        assert!(
            high_bit.rms_err > low_bit.rms_err,
            "MSB stuck-at must out-err LSB: {} vs {}",
            high_bit.rms_err,
            low_bit.rms_err
        );
        // Determinism: same inputs, same numbers.
        assert_eq!(
            char_of(&SiteFault::new(
                FaultTarget::Multiplier,
                FaultModel::BitFlip { ber: 0.01 }
            )),
            char_of(&SiteFault::new(
                FaultTarget::Multiplier,
                FaultModel::BitFlip { ber: 0.01 }
            )),
        );
    }

    #[test]
    fn canonical_set_covers_the_quick_grid() {
        let canonical: Vec<String> = canonical_faults().iter().map(SiteFault::spec).collect();
        let quick = FaultsConfig::quick();
        for fault in trial_faults(&quick, true) {
            assert!(
                canonical.contains(&fault.spec()),
                "quick trial {} not cached by the canonical table",
                fault.spec()
            );
        }
    }

    #[test]
    fn faults_emits_trial_and_site_rows_with_failsoft_downgrades() {
        let outcome = run_faults(&tiny(vec![QdpArch::CapsNet]));
        let arch = &outcome.archs[0];
        assert_eq!(arch.sites.len(), 2, "max_sites caps the sweep");
        assert!(arch.skipped_sites > 0, "CapsNet has more than two sites");
        // Both swept sites are weight-memory MAC sites: full grid.
        assert_eq!(arch.trials.len(), 2 * 5, "2 sites x (2+1+1+1) trials");

        let lines = faults_to_json_lines(&outcome);
        assert_eq!(
            lines.len(),
            10 + 2 + 1,
            "trial rows + site summary rows + the combined-plan row"
        );
        for line in &lines {
            let dumped = line.dump();
            assert!(!dumped.contains('\n'), "one line per row");
            let parsed = json::parse(&dumped).unwrap();
            for key in [
                "bench",
                "schema_version",
                "row",
                "arch",
                "fail_soft",
                "baseline_accuracy",
            ] {
                assert!(parsed.get(key).is_some(), "missing key {key}");
            }
            assert_eq!(parsed.get("bench").unwrap().as_str().unwrap(), "faults");
            assert_eq!(parsed.get("schema_version").unwrap().as_f64().unwrap(), 2.0);
            let row = parsed.get("row").unwrap().as_str().unwrap().to_string();
            if row == "combined_plan" {
                for key in ["faulted_sites", "faults", "plan_seed", "accuracy"] {
                    assert!(parsed.get(key).is_some(), "missing key {key}");
                }
            } else {
                for key in ["layer", "op", "in_routing"] {
                    assert!(parsed.get(key).is_some(), "missing key {key}");
                }
            }
        }

        // The combined plan faulted both swept sites in one pass and
        // (fail-soft) still produced an accuracy.
        assert_eq!(arch.combined.faults.len(), 2);
        assert!(arch.combined.accuracy.is_some());
        assert!(arch.combined.error.is_none());

        // The dead-multiplier trial downgraded (fail-soft) to the exact
        // component — which IS the assignment, so the accuracy must be
        // bit-identical to the baseline.
        let dead: Vec<&FaultTrial> = arch
            .trials
            .iter()
            .filter(|t| t.fault.model == FaultModel::DeadOutput)
            .collect();
        assert_eq!(dead.len(), 2, "one dead trial per site");
        for t in dead {
            assert_eq!(t.accuracy, Some(arch.baseline_accuracy));
            assert_eq!(t.downgraded, vec![t.site.clone()]);
            assert!(t.error.is_none());
        }

        // Site summaries carry the critical-bit analysis, and the
        // high bit dominates the low bit.
        for s in &arch.sites {
            assert!(s.critical_bit.is_some(), "weight-memory site");
            assert!(s.trials == 5);
        }
    }

    #[test]
    fn strict_mode_reports_dead_sites_as_errors() {
        let cfg = FaultsConfig {
            fail_soft: false,
            ..tiny(vec![QdpArch::CapsNet])
        };
        let outcome = run_faults(&cfg);
        let arch = &outcome.archs[0];
        for t in &arch.trials {
            if t.fault.model == FaultModel::DeadOutput {
                assert_eq!(t.accuracy, None);
                let err = t.error.as_deref().expect("strict refusal recorded");
                assert!(err.contains("dead"), "{err}");
            } else {
                assert!(t.accuracy.is_some(), "{:?}", t.fault);
                assert!(t.error.is_none());
            }
        }
        // The refusal lands in the JSON row, not a crash.
        let lines = faults_to_json_lines(&outcome);
        let dead_line = lines
            .iter()
            .map(|l| json::parse(&l.dump()).unwrap())
            .find(|p| {
                p.get("fault")
                    .and_then(Value::as_str)
                    .is_some_and(|f| f == "dead")
            })
            .expect("dead trial serialized");
        assert!(dead_line.get("accuracy").unwrap().as_f64().is_none());
        assert!(dead_line.get("error").unwrap().as_str().is_some());

        // Strict mode keeps dead faults out of the combined plan, so
        // the correlated row still scores instead of refusing.
        let combined = &arch.combined;
        assert!(combined.accuracy.is_some());
        assert!(combined
            .faults
            .iter()
            .all(|(_, f)| f.model != FaultModel::DeadOutput));
    }

    /// Per-arch seeds key on the architecture's identity, so a
    /// deepcaps-only run reproduces exactly the deepcaps rows of a
    /// both-arch run at the same seed.
    #[test]
    fn single_arch_run_reproduces_the_both_arch_rows() {
        let both = run_faults(&tiny(vec![QdpArch::CapsNet, QdpArch::DeepCaps]));
        let solo = run_faults(&tiny(vec![QdpArch::DeepCaps]));
        assert_eq!(
            solo.archs[0].baseline_accuracy,
            both.archs[1].baseline_accuracy
        );
        assert_eq!(solo.archs[0].trials, both.archs[1].trials);
        assert_eq!(solo.archs[0].sites, both.archs[1].sites);
        assert_eq!(solo.archs[0].combined, both.archs[1].combined);
    }

    /// The artifact-store acceptance bar: a cold (train) run and a warm
    /// (restore) run emit byte-identical JSON lines, and both match a
    /// storeless run — fault-characterization caching included.
    #[test]
    fn cold_and_warm_runs_give_identical_json() {
        let dir =
            std::env::temp_dir().join(format!("redcane-bench-faults-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FaultsConfig {
            artifacts: Some(dir.clone()),
            ..tiny(vec![QdpArch::CapsNet])
        };
        let dump = |cfg: &FaultsConfig| {
            let outcome = run_faults(cfg);
            let lines: Vec<String> = faults_to_json_lines(&outcome)
                .iter()
                .map(|v| v.dump())
                .collect();
            (outcome.archs[0].provenance, lines.join("\n"))
        };
        let (cold_prov, cold) = dump(&cfg);
        assert_eq!(cold_prov, Provenance::Trained);
        let (warm_prov, warm) = dump(&cfg);
        assert_eq!(warm_prov, Provenance::Restored);
        let (uncached_prov, uncached) = dump(&FaultsConfig {
            artifacts: None,
            ..cfg.clone()
        });
        assert_eq!(uncached_prov, Provenance::Trained);
        assert_eq!(cold, warm, "restore changed the output");
        assert_eq!(cold, uncached, "the store changed the output");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The parallel trial sweep must not change a single byte of the
    /// output: equal seeds give equal JSON at every thread count.
    #[test]
    fn json_is_byte_identical_across_thread_counts() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let cfg = tiny(vec![QdpArch::CapsNet]);
        let dump = |threads: usize| {
            par::set_threads(threads);
            let lines: Vec<String> = faults_to_json_lines(&run_faults(&cfg))
                .iter()
                .map(|v| v.dump())
                .collect();
            par::set_threads(0);
            lines.join("\n")
        };
        let serial = dump(1);
        let parallel = dump(3);
        assert_eq!(serial, parallel, "thread count leaked into the rows");
    }
}
