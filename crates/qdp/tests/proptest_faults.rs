//! Property tests for the fault-injection layer:
//!
//! 1. The **identity** fault plan — zero BER, no stuck lanes, no dead
//!    sites — leaves `QModel` outputs bit-identical to the un-faulted
//!    path, on both architectures, whatever the seed. Fault support
//!    must cost the fault-free datapath nothing, not even a ULP.
//! 2. An **active** plan changes the measurement deterministically:
//!    same plan + same seed reproduce the same lengths bit-for-bit.

use proptest::prelude::*;
use redcane::datapath::DatapathAssignment;
use redcane::faults::{FaultModel, FaultPlan, FaultTarget, SiteFault};
use redcane_axmul::{LutCache, MultiplierLibrary};
use redcane_capsnet::inject::OpKind;
use redcane_capsnet::{CapsModel, CapsNet, CapsNetConfig, DeepCaps, DeepCapsConfig};
use redcane_datasets::{generate, Benchmark, Dataset, GenerateConfig};
use redcane_qdp::{calibrate_ranges, AccuracyBackend, FaultMeasured, QModel, QuantMeasured};
use redcane_tensor::{Tensor, TensorRng};

fn shared_luts() -> &'static LutCache {
    static LUTS: std::sync::OnceLock<LutCache> = std::sync::OnceLock::new();
    LUTS.get_or_init(|| {
        LutCache::for_components(&MultiplierLibrary::evo_approx_like(), ["mul8u_1JFF"])
            .expect("library components")
    })
}

fn lowered(model: &mut dyn CapsModel, images: &[Tensor]) -> QModel {
    let ranges = calibrate_ranges(model, images.iter()).expect("finite activations");
    QModel::lower(model, &ranges).expect("every site calibrated")
}

fn images(rng: &mut TensorRng, count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|_| rng.uniform(&[1, 16, 16], 0.0, 1.0))
        .collect()
}

fn tiny_test_set(seed: u64) -> Dataset {
    generate(
        Benchmark::MnistLike,
        &GenerateConfig {
            train: 1,
            test: 6,
            seed,
        },
    )
    .test
}

/// An identity plan that nonetheless *names* sites — zero-BER flips
/// and zero-lane stuck faults must be filtered as inactive, not
/// realized as no-op table rebuilds that could drift.
fn noisy_identity_plan(seed: u64) -> FaultPlan {
    FaultPlan::identity(seed)
        .with(
            "Conv1",
            OpKind::MacOutput,
            false,
            SiteFault::new(FaultTarget::Multiplier, FaultModel::BitFlip { ber: 0.0 }),
        )
        .with(
            "ClassCaps",
            OpKind::LogitsUpdate,
            true,
            SiteFault::new(
                FaultTarget::Accumulator,
                FaultModel::StuckAt {
                    lanes: 0,
                    value: true,
                },
            ),
        )
}

proptest! {
    /// Identity plans are bit-identical to the fault-free path on both
    /// architectures.
    #[test]
    fn identity_plan_is_bit_identical_on_both_archs(seed in 0u64..200) {
        let mut rng = TensorRng::from_seed(seed.wrapping_mul(0xf00d) + 11);
        let assignment = DatapathAssignment::uniform("mul8u_1JFF");

        let mut capsnet = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let mut deepcaps = DeepCaps::new(&DeepCapsConfig::small(1, 16), &mut rng);
        let imgs = images(&mut rng, 2);
        let models: [&mut dyn CapsModel; 2] = [&mut capsnet, &mut deepcaps];
        for model in models {
            let q = lowered(model, &imgs);
            let backend = QuantMeasured::new(q, shared_luts().clone());
            for plan in [FaultPlan::identity(seed), noisy_identity_plan(seed)] {
                prop_assert!(plan.is_identity());
                let faulty = FaultMeasured::over(&backend, plan, false);
                for image in &imgs {
                    let clean = backend
                        .qmodel()
                        .forward(image, &assignment, backend.luts())
                        .unwrap();
                    let faulted = faulty.forward(image, &assignment).unwrap();
                    prop_assert_eq!(
                        clean.data(),
                        faulted.data(),
                        "{}: identity plan perturbed the datapath",
                        model.name()
                    );
                }
            }
        }
    }

    /// An active plan evaluates deterministically: bitwise-equal
    /// accuracy on repeated runs, and the accuracy path matches the
    /// identity path when the plan is identity.
    #[test]
    fn fault_measurement_is_seed_deterministic(seed in 0u64..100) {
        let mut rng = TensorRng::from_seed(seed.wrapping_mul(0xbeef) + 5);
        let mut model = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
        let imgs = images(&mut rng, 2);
        let q = lowered(&mut model, &imgs);
        let backend = QuantMeasured::new(q, shared_luts().clone());
        let assignment = DatapathAssignment::uniform("mul8u_1JFF");
        let data = tiny_test_set(seed + 1);

        let plan = FaultPlan::identity(seed).with(
            "Conv1",
            OpKind::MacOutput,
            false,
            SiteFault::new(FaultTarget::WeightCodes, FaultModel::BitFlip { ber: 0.02 }),
        );
        let a = FaultMeasured::over(&backend, plan.clone(), false)
            .evaluate(&model, &data, &assignment)
            .unwrap();
        let b = FaultMeasured::over(&backend, plan, false)
            .evaluate(&model, &data, &assignment)
            .unwrap();
        prop_assert_eq!(a, b, "same plan, same measurement");

        let clean = backend.evaluate(&model, &data, &assignment).unwrap();
        let identity = FaultMeasured::over(&backend, FaultPlan::identity(seed), false)
            .evaluate(&model, &data, &assignment)
            .unwrap();
        prop_assert_eq!(identity, clean, "identity plan accuracy drifted");
    }
}
