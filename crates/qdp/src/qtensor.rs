//! `QTensor`: tensors as 8-bit codes plus their affine reconstruction
//! parameters — the value representation of the quantized datapath.

use redcane_fxp::QuantParams;
use redcane_tensor::Tensor;

/// A tensor quantized to 8-bit codes under an affine [`QuantParams`]
/// mapping (Eq. 1 of the paper), as stored in the accelerator's
/// on-chip buffers.
///
/// Out-of-range values saturate at the range edges, exactly as the
/// fixed-point hardware would. The parameters are fixed at calibration
/// time (from the real input distribution), **not** per-sample.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    codes: Vec<u8>,
    shape: Vec<usize>,
    params: QuantParams,
}

impl QTensor {
    /// Quantizes a float tensor under `params`.
    ///
    /// # Panics
    ///
    /// Panics unless `params` is 8-bit (this crate models an 8-bit
    /// datapath; wider words need `redcane_fxp::Quantizer`).
    pub fn quantize(tensor: &Tensor, params: QuantParams) -> Self {
        QTensor {
            codes: quantize_codes(tensor.data(), params),
            shape: tensor.shape().to_vec(),
            params,
        }
    }

    /// Quantizes a raw slice with an explicit shape.
    ///
    /// # Panics
    ///
    /// Panics if `params` is not 8-bit or the shape doesn't match the
    /// slice length.
    pub fn quantize_slice(data: &[f32], shape: &[usize], params: QuantParams) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape must match data length"
        );
        QTensor {
            codes: quantize_codes(data, params),
            shape: shape.to_vec(),
            params,
        }
    }

    /// The flat row-major codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The affine mapping the codes were produced under.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reconstructs the float tensor (with quantization error).
    pub fn dequantize(&self) -> Tensor {
        let data: Vec<f32> = self
            .codes
            .iter()
            .map(|&c| self.params.dequantize(c as u16))
            .collect();
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(data, &self.shape).expect("codes sized to shape")
    }
}

/// Quantizes a float slice to 8-bit codes under `params`, saturating
/// at the range edges.
///
/// # Panics
///
/// Panics unless `params` is 8-bit.
pub fn quantize_codes(data: &[f32], params: QuantParams) -> Vec<u8> {
    assert_eq!(params.bits(), 8, "the qdp datapath is 8-bit");
    data.iter().map(|&v| params.quantize(v) as u8).collect()
}

/// Applies a deterministic [`FaultModel`](redcane::faults::FaultModel)
/// to a buffer of 8-bit codes in place: element `i` is faulted at index
/// `base_index + i`, so one buffer can continue another's index space
/// (a multi-tensor site faults its concatenated storage consistently).
/// Returns the next free index.
pub fn fault_codes(
    codes: &mut [u8],
    model: &redcane::faults::FaultModel,
    seed: u64,
    base_index: u64,
) -> u64 {
    for (i, code) in codes.iter_mut().enumerate() {
        *code = model.apply(u32::from(*code), 8, seed, base_index + i as u64) as u8;
    }
    base_index + codes.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(min: f32, max: f32) -> QuantParams {
        QuantParams::from_range(min, max, 8).unwrap()
    }

    #[test]
    fn round_trip_within_half_lsb() {
        let params = p(-1.0, 1.0);
        let t = Tensor::from_slice(&[-1.0, -0.3, 0.0, 0.7, 1.0]);
        let q = QTensor::quantize(&t, params);
        assert_eq!(q.shape(), &[5]);
        assert_eq!(q.len(), 5);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= params.lsb() / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let q = QTensor::quantize(&Tensor::from_slice(&[-9.0, 9.0]), p(0.0, 1.0));
        assert_eq!(q.codes(), &[0, 255]);
    }

    #[test]
    fn slice_form_keeps_shape() {
        let q = QTensor::quantize_slice(&[0.0; 6], &[2, 3], p(-1.0, 1.0));
        assert_eq!(q.shape(), &[2, 3]);
        assert_eq!(q.dequantize().shape(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "8-bit")]
    fn rejects_wide_params() {
        let wide = QuantParams::from_range(0.0, 1.0, 12).unwrap();
        let _ = QTensor::quantize(&Tensor::zeros(&[2]), wide);
    }

    #[test]
    fn fault_codes_chains_index_spaces_and_is_deterministic() {
        use redcane::faults::FaultModel;
        let model = FaultModel::BitFlip { ber: 0.4 };
        // One 8-element buffer vs two 4-element halves sharing the
        // index space: identical realizations.
        let mut whole = [0u8; 8];
        let next = fault_codes(&mut whole, &model, 5, 0);
        assert_eq!(next, 8);
        let mut lo = [0u8; 4];
        let mut hi = [0u8; 4];
        let mid = fault_codes(&mut lo, &model, 5, 0);
        fault_codes(&mut hi, &model, 5, mid);
        assert_eq!(&whole[..4], &lo);
        assert_eq!(&whole[4..], &hi);
        // Identity model leaves codes untouched.
        let mut codes = [7u8, 130, 255];
        fault_codes(&mut codes, &FaultModel::BitFlip { ber: 0.0 }, 5, 0);
        assert_eq!(codes, [7, 130, 255]);
    }
}
