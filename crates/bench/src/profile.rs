//! `--profile` support shared by the bench binaries: turns the
//! `redcane-trace` planes into a schema-versioned `BENCH_profile.json`
//! (plus an optional stable-counter file and a folded-stack file).
//!
//! The profile document has five sections:
//!
//! - `bench` / `schema_version` — which binary wrote it, and v1;
//! - `meta` — run metadata that is *expected* to vary between
//!   otherwise-identical runs: worker-thread count, artifact-store
//!   provenance. Self-describing CI artifacts, never byte-compared;
//! - `counters` — the **stable** [`Region::Run`] work counters
//!   ([`Counter::stable`]): bit-identical at every `REDCANE_THREADS`
//!   setting and between cold and warm artifact stores;
//! - `store` — artifact-store traffic (hits/misses/heals) and the
//!   structured events captured from it; cache-state-dependent by
//!   nature;
//! - `train_counters` — work done inside artifact `produce` closures
//!   (only non-zero on cold runs);
//! - `timings` — the hierarchical wall-clock span table. Never
//!   deterministic; stripped through the same [`Value::without_keys`]
//!   redaction the pipeline's `--no-timings` uses.
//!
//! The `--profile-counters` file is exactly the profile with the
//! volatile sections redacted, so CI can `cmp` it across thread counts
//! and store states.
//!
//! [`Region::Run`]: trace::Region::Run
//! [`Counter::stable`]: trace::Counter::stable

use std::path::PathBuf;

use redcane::report::json::Value;
use redcane_trace as trace;

use crate::cli::next_value;

/// Profile schema version.
pub const PROFILE_SCHEMA_VERSION: usize = 1;

/// The top-level profile sections that may legitimately differ between
/// runs of identical work — redacted to obtain the byte-comparable
/// counter document.
pub const VOLATILE_SECTIONS: [&str; 4] = ["meta", "store", "train_counters", "timings"];

/// Where a bench run's profile outputs go; all optional.
#[derive(Debug, Clone, Default)]
pub struct ProfileArgs {
    /// Full profile JSON (`--profile PATH`).
    pub profile: Option<PathBuf>,
    /// Stable counter section only (`--profile-counters PATH`).
    pub counters: Option<PathBuf>,
    /// Folded-stack span lines for flamegraph tooling
    /// (`--profile-folded PATH`).
    pub folded: Option<PathBuf>,
}

impl ProfileArgs {
    /// Consumes `flag` (and its value) if it is one of the profile
    /// flags. `None` means "not a profile flag"; the caller falls
    /// through to its own error handling.
    pub fn match_flag(
        &mut self,
        flag: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Option<Result<(), String>> {
        match flag {
            "--profile" => {
                Some(next_value(args, "--profile").map(|v| self.profile = Some(PathBuf::from(v))))
            }
            "--profile-counters" => Some(
                next_value(args, "--profile-counters")
                    .map(|v| self.counters = Some(PathBuf::from(v))),
            ),
            "--profile-folded" => Some(
                next_value(args, "--profile-folded").map(|v| self.folded = Some(PathBuf::from(v))),
            ),
            _ => None,
        }
    }

    /// Whether any profile output was requested.
    pub fn requested(&self) -> bool {
        self.profile.is_some() || self.counters.is_some() || self.folded.is_some()
    }

    /// Arms the trace layer for this run when any output was requested
    /// (a fresh [`trace::reset`] so the profile covers exactly this
    /// run). Leaves tracing disabled — the zero-overhead default —
    /// otherwise.
    pub fn enable_if_requested(&self) {
        if self.requested() {
            trace::reset();
            trace::set_enabled(true);
        }
    }

    /// Snapshots the trace state and writes every requested output.
    /// `meta` carries bench-specific metadata (artifact provenance,
    /// …) into the profile's `meta` section next to `num_threads`;
    /// `include_timings=false` strips the wall-clock `timings` section
    /// (the pipeline threads its `--no-timings` flag through here).
    ///
    /// # Errors
    ///
    /// A user-facing message naming the file that could not be written.
    pub fn write(
        &self,
        bench: &str,
        meta: Vec<(String, Value)>,
        include_timings: bool,
    ) -> Result<(), String> {
        if !self.requested() {
            return Ok(());
        }
        let full = profile_to_json(bench, meta, trace::snapshot());
        let write = |path: &PathBuf, body: String| {
            std::fs::write(path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
        };
        if let Some(path) = &self.profile {
            let doc = if include_timings {
                full.clone()
            } else {
                full.without_keys(&["timings"])
            };
            write(path, format!("{}\n", doc.dump()))?;
        }
        if let Some(path) = &self.counters {
            write(path, format!("{}\n", stable_counters(&full).dump()))?;
        }
        if let Some(path) = &self.folded {
            write(path, trace::folded())?;
        }
        Ok(())
    }
}

/// The byte-comparable subset of a profile document: everything except
/// the [`VOLATILE_SECTIONS`]. Shares the pipeline's `--no-timings`
/// redaction primitive, so there is exactly one stripping mechanism.
pub fn stable_counters(profile: &Value) -> Value {
    profile.without_keys(&VOLATILE_SECTIONS)
}

/// Assembles the full profile document from a trace snapshot plus the
/// current span and event tables.
pub fn profile_to_json(bench: &str, meta: Vec<(String, Value)>, snap: trace::Snapshot) -> Value {
    let mut meta_fields = vec![(
        "num_threads".into(),
        Value::from(redcane_tensor::par::num_threads()),
    )];
    meta_fields.extend(meta);

    let counters: Vec<(String, Value)> = trace::Counter::ALL
        .iter()
        .filter(|c| c.stable())
        .map(|&c| (c.name().into(), Value::from(snap.run(c) as f64)))
        .collect();
    let train_counters: Vec<(String, Value)> = trace::Counter::ALL
        .iter()
        .filter(|&&c| snap.train(c) != 0)
        .map(|&c| (c.name().into(), Value::from(snap.train(c) as f64)))
        .collect();

    let events: Vec<Value> = trace::events()
        .into_iter()
        .map(|e| {
            Value::Obj(vec![
                ("kind".into(), Value::from(e.kind)),
                ("detail".into(), Value::from(e.detail)),
            ])
        })
        .collect();
    let store = Value::Obj(vec![
        (
            "artifact_hits".into(),
            Value::from(snap.run(trace::Counter::ArtifactHits) as f64),
        ),
        (
            "artifact_misses".into(),
            Value::from(snap.run(trace::Counter::ArtifactMisses) as f64),
        ),
        (
            "artifact_heals".into(),
            Value::from(snap.run(trace::Counter::ArtifactHeals) as f64),
        ),
        ("events".into(), Value::Arr(events)),
    ]);

    let timings: Vec<Value> = trace::span_stats()
        .into_iter()
        .map(|(path, stat)| {
            Value::Obj(vec![
                ("path".into(), Value::from(path)),
                ("ns".into(), Value::from(stat.ns as f64)),
                ("count".into(), Value::from(stat.count as f64)),
            ])
        })
        .collect();

    Value::Obj(vec![
        ("bench".into(), Value::from(bench)),
        ("schema_version".into(), Value::from(PROFILE_SCHEMA_VERSION)),
        ("meta".into(), Value::Obj(meta_fields)),
        ("counters".into(), Value::Obj(counters)),
        ("store".into(), store),
        ("train_counters".into(), Value::Obj(train_counters)),
        ("timings".into(), Value::Arr(timings)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> impl Iterator<Item = String> {
        items
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn match_flag_consumes_profile_flags_only() {
        let mut p = ProfileArgs::default();
        assert!(!p.requested());
        let mut it = args(&["a.json", "b.json", "c.txt"]);
        assert_eq!(p.match_flag("--profile", &mut it), Some(Ok(())));
        assert_eq!(p.match_flag("--profile-counters", &mut it), Some(Ok(())));
        assert_eq!(p.match_flag("--profile-folded", &mut it), Some(Ok(())));
        assert!(p.match_flag("--seed", &mut it).is_none());
        assert!(p.requested());
        assert_eq!(p.profile.as_deref(), Some(std::path::Path::new("a.json")));
        // Exhausted stream: the flag reports its own missing value.
        assert!(p.match_flag("--profile", &mut it).unwrap().is_err());
    }

    #[test]
    fn profile_document_sections_and_stable_redaction() {
        let snap = trace::snapshot();
        let doc = profile_to_json(
            "pipeline",
            vec![("provenance".into(), Value::from("trained"))],
            snap,
        );
        for key in [
            "bench",
            "schema_version",
            "meta",
            "counters",
            "store",
            "train_counters",
            "timings",
        ] {
            assert!(doc.get(key).is_some(), "missing section {key}");
        }
        assert!(doc.get("meta").unwrap().get("num_threads").is_some());
        assert!(doc.get("meta").unwrap().get("provenance").is_some());
        // Stable counters exclude the store traffic…
        let counters = doc.get("counters").unwrap();
        assert!(counters.get("qgemm_macs").is_some());
        assert!(counters.get("artifact_hits").is_none());
        // …which lives in the store section instead.
        assert!(doc.get("store").unwrap().get("artifact_hits").is_some());
        // The byte-comparable form drops every volatile section.
        let stable = stable_counters(&doc);
        for key in VOLATILE_SECTIONS {
            assert!(stable.get(key).is_none(), "{key} must be redacted");
        }
        assert!(stable.get("counters").is_some());
        assert!(!stable.dump().contains('\n'));
    }
}
