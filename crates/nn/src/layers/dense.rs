//! Fully-connected layer.

use redcane_tensor::ops::gemm;
use redcane_tensor::{Tensor, TensorRng};

use crate::init::xavier_uniform;
use crate::layer::Layer;
use crate::param::Param;

/// A fully-connected layer mapping `[in]` vectors to `[out]` vectors
/// (`y = W·x + b`, weight layout `[out, in]`).
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
    cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        let weight = xavier_uniform(&[out_dim, in_dim], in_dim, out_dim, rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            in_dim,
            out_dim,
            cache: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Immutable view of the weights.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Replaces the weights (e.g. when loading a trained model).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn set_weights(&mut self, weight: Tensor, bias: Tensor) {
        assert_eq!(weight.shape(), self.weight.value.shape(), "weight shape");
        assert_eq!(bias.shape(), self.bias.value.shape(), "bias shape");
        self.weight.value = weight;
        self.bias.value = bias;
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let x_flat = if x.ndim() == 1 {
            x.clone()
        } else {
            x.flattened()
        };
        assert_eq!(x_flat.len(), self.in_dim, "Dense input size");
        // y = W·x + b through the blocked kernel (n = 1 column).
        let mut y = vec![0.0f32; self.out_dim];
        gemm::gemm_nn(
            self.weight.value.data(),
            x_flat.data(),
            &mut y,
            self.out_dim,
            self.in_dim,
            1,
        );
        for (o, &b) in y.iter_mut().zip(self.bias.value.data()) {
            *o += b;
        }
        self.cache = Some(x_flat);
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(y, &[self.out_dim]).expect("dense output")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // lint: allow(panic) — API contract: backward() consumes the cache that forward() stores
        let x = self.cache.take().expect("Dense::backward before forward");
        assert_eq!(grad_out.len(), self.out_dim, "Dense grad size");
        // dW = dy · xᵀ (rank-1 update).
        let mut dw = vec![0.0f32; self.out_dim * self.in_dim];
        gemm::gemm_nn(
            grad_out.data(),
            x.data(),
            &mut dw,
            self.out_dim,
            1,
            self.in_dim,
        );
        self.weight
            // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
            .accumulate(&Tensor::from_vec(dw, self.weight.value.shape()).expect("dW shape"));
        self.bias.accumulate(grad_out);
        // dx = Wᵀ · dy, with the transpose folded into the kernel.
        let mut dx = vec![0.0f32; self.in_dim];
        gemm::gemm_tn(
            self.weight.value.data(),
            grad_out.data(),
            &mut dx,
            self.in_dim,
            self.out_dim,
            1,
        );
        // lint: allow(panic) — shape invariant: the buffer and dims are constructed to match right here
        Tensor::from_vec(dx, &[self.in_dim]).expect("dx shape")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = TensorRng::from_seed(60);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.set_weights(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            Tensor::from_slice(&[10.0, 20.0]),
        );
        let y = layer.forward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::from_seed(61);
        let mut layer = Dense::new(5, 3, &mut rng);
        let x = rng.uniform(&[5], -1.0, 1.0);
        let coeffs = rng.uniform(&[3], -1.0, 1.0);
        let loss = |l: &mut Dense, x: &Tensor| -> f32 { l.forward(x).mul(&coeffs).unwrap().sum() };

        layer.zero_grad();
        let _ = layer.forward(&x);
        let dx = layer.backward(&coeffs);
        let wgrad = layer.params_mut()[0].grad.clone();
        let bgrad = layer.params_mut()[1].grad.clone();

        let eps = 1e-2f32;
        for idx in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            assert!((num - dx.data()[idx]).abs() < 1e-2, "dx[{idx}]");
        }
        for idx in [0usize, 6, 14] {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.weight.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - wgrad.data()[idx]).abs() < 1e-2, "dW[{idx}]");
        }
        for idx in 0..3 {
            let orig = layer.bias.value.data()[idx];
            layer.bias.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut layer, &x);
            layer.bias.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut layer, &x);
            layer.bias.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - bgrad.data()[idx]).abs() < 1e-2, "db[{idx}]");
        }
    }

    #[test]
    fn flattens_multi_dim_input() {
        let mut rng = TensorRng::from_seed(62);
        let mut layer = Dense::new(12, 4, &mut rng);
        let y = layer.forward(&Tensor::ones(&[3, 2, 2]));
        assert_eq!(y.shape(), &[4]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = TensorRng::from_seed(63);
        let mut layer = Dense::new(2, 2, &mut rng);
        let _ = layer.backward(&Tensor::zeros(&[2]));
    }
}
