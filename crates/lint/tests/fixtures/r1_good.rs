// Fixture: ordered containers (and a justified marked site) pass R1
// in a stable-output module.
use std::collections::{BTreeMap, BTreeSet};

pub struct Observer {
    trackers: BTreeMap<String, f32>,
}

pub fn distinct(names: &[String]) -> usize {
    let set: BTreeSet<&String> = names.iter().collect();
    set.len()
}

pub fn marked() -> usize {
    // lint: allow(determinism) — keys are sorted before any iteration below
    let map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    map.len()
}
