//! Descriptive statistics over tensors.
//!
//! The ReD-CaNe noise model scales its Gaussian noise by the **range**
//! `R(X) = max(X) - min(X)` of the tensor under attack (Eq. 3 of the
//! paper), so range/min/max/std live here as first-class operations, along
//! with the histogram used to reproduce the paper's distribution figures
//! (Figs. 6 and 11).

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Summary statistics of a tensor's values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest element.
    pub min: f32,
    /// Largest element.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
}

impl Summary {
    /// The value range `max - min` — the paper's `R(X)`.
    pub fn range(&self) -> f32 {
        self.max - self.min
    }
}

/// A fixed-bin histogram over a closed interval.
///
/// # Example
///
/// ```
/// use redcane_tensor::{stats::Histogram, Tensor};
///
/// let t = Tensor::from_slice(&[0.1, 0.2, 0.8]);
/// let h = Histogram::of(&t, 2, 0.0, 1.0);
/// assert_eq!(h.counts(), &[2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram of `tensor`'s values over `[lo, hi]` with `bins`
    /// equal-width bins. Values outside the interval are clamped to the
    /// first/last bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn of(tensor: &Tensor, bins: usize, lo: f32, hi: f32) -> Self {
        Self::of_values(tensor.data(), bins, lo, hi)
    }

    /// Builds a histogram directly over a slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn of_values(values: &[f32], bins: usize, lo: f32, hi: f32) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram needs hi > lo");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f32;
        for &v in values {
            let idx = (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total: values.len() as u64,
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples accumulated.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin frequencies as fractions of the total (empty histogram -> zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        let denom = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / denom).collect()
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f32 {
        assert!(i < self.counts.len());
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }

    /// Lower edge of the histogram domain.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper edge of the histogram domain.
    pub fn hi(&self) -> f32 {
        self.hi
    }
}

impl Tensor {
    /// Smallest element; `+inf` for an empty tensor.
    pub fn min_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest element; `-inf` for an empty tensor.
    pub fn max_value(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// The paper's `R(X) = max(X) - min(X)`; `0.0` for an empty tensor or a
    /// constant tensor.
    ///
    /// # Example
    ///
    /// ```
    /// use redcane_tensor::Tensor;
    /// let t = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
    /// assert_eq!(t.range(), 3.0);
    /// ```
    pub fn range(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        self.max_value() - self.min_value()
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / self.len() as f32;
        var.sqrt()
    }

    /// Computes min/max/mean/std in one pass.
    pub fn summary(&self) -> Summary {
        Summary {
            min: self.min_value(),
            max: self.max_value(),
            mean: self.mean(),
            std: self.std(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TensorRng;

    #[test]
    fn min_max_range() {
        let t = Tensor::from_slice(&[3.0, -2.0, 7.0, 0.0]);
        assert_eq!(t.min_value(), -2.0);
        assert_eq!(t.max_value(), 7.0);
        assert_eq!(t.range(), 9.0);
    }

    #[test]
    fn constant_tensor_has_zero_range() {
        assert_eq!(Tensor::full(&[10], 4.2).range(), 0.0);
    }

    #[test]
    fn empty_tensor_stats_are_safe() {
        let t = Tensor::default();
        assert_eq!(t.range(), 0.0);
        assert_eq!(t.std(), 0.0);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn std_of_known_sequence() {
        let t = Tensor::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((t.std() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn summary_consistency() {
        let mut rng = TensorRng::from_seed(40);
        let t = rng.normal(&[5000], 1.0, 3.0);
        let s = t.summary();
        assert!((s.mean - 1.0).abs() < 0.2);
        assert!((s.std - 3.0).abs() < 0.2);
        assert!(s.range() > 0.0);
        assert!(s.min < s.max);
    }

    #[test]
    fn histogram_counts_and_frequencies() {
        let t = Tensor::from_slice(&[0.05, 0.15, 0.15, 0.95]);
        let h = Histogram::of(&t, 10, 0.0, 1.0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        let f = h.frequencies();
        assert!((f[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let t = Tensor::from_slice(&[-100.0, 100.0]);
        let h = Histogram::of(&t, 4, 0.0, 1.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn histogram_bin_centers() {
        let t = Tensor::from_slice(&[0.0]);
        let h = Histogram::of(&t, 4, 0.0, 1.0);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-6);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-6);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 1.0);
    }

    #[test]
    fn gaussian_histogram_is_bell_shaped() {
        let mut rng = TensorRng::from_seed(41);
        let t = rng.normal(&[20000], 0.0, 1.0);
        let h = Histogram::of(&t, 9, -4.5, 4.5);
        let c = h.counts();
        // Center bin dominates, tails are small.
        let mid = c[4];
        assert!(mid > c[0] * 10);
        assert!(mid > c[8] * 10);
        // Symmetry within tolerance.
        let asym = (c[3] as f64 - c[5] as f64).abs() / mid as f64;
        assert!(asym < 0.15, "asymmetry {asym}");
    }
}
