//! Training/evaluation throughput probe for the two reference models.
//!
//! Trains (or restores from the trained-artifact store) the small
//! CapsNet on the MNIST-like benchmark and the small DeepCaps on the
//! CIFAR-like benchmark and reports wall-clock times. Scale the run
//! down for quick checks:
//!
//! ```text
//! probe [--train N] [--test N] [--epochs N] [--quick]
//!       [--artifacts DIR] [--no-cache]
//! ```
//!
//! `--quick` is shorthand for `--train 100 --test 30 --epochs 1`.
//! The store (default `.redcane-artifacts`, or `REDCANE_ARTIFACTS`)
//! lets warm runs skip training entirely; `--no-cache` forces a cold
//! run.

use std::process::ExitCode;
use std::time::Instant;

use redcane_artifacts::{fingerprint, load_or_train, ArtifactKey, ArtifactPayload, ArtifactStore};
use redcane_bench::cli::{next_parsed, next_value, require_nonzero};
use redcane_capsnet::{
    evaluate, inject::NoInjection, train, CapsModel, CapsNet, CapsNetConfig, DeepCaps,
    DeepCapsConfig, TrainConfig,
};
use redcane_datasets::{generate, Benchmark, Dataset, GenerateConfig};
use redcane_tensor::TensorRng;

struct ProbeConfig {
    train: usize,
    test: usize,
    epochs: usize,
    artifacts: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<ProbeConfig, String> {
    let mut cfg = ProbeConfig {
        train: 1500,
        test: 300,
        epochs: 6,
        artifacts: None,
    };
    let mut artifacts_flag: Option<String> = None;
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--train" => cfg.train = next_parsed(&mut args, "--train")?,
            "--test" => cfg.test = next_parsed(&mut args, "--test")?,
            "--epochs" => cfg.epochs = next_parsed(&mut args, "--epochs")?,
            "--quick" => {
                cfg.train = 100;
                cfg.test = 30;
                cfg.epochs = 1;
            }
            "--artifacts" => artifacts_flag = Some(next_value(&mut args, "--artifacts")?),
            "--no-cache" => no_cache = true,
            "--help" | "-h" => {
                eprintln!("probe: train/evaluate throughput microbenchmark");
                eprintln!(
                    "flags: --train N, --test N, --epochs N, --quick, \
                     --artifacts DIR, --no-cache"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    // Scaled-down runs must not panic: training needs at least one
    // sample, and zero test samples simply evaluates to accuracy 0.
    require_nonzero(cfg.train, "--train")?;
    cfg.artifacts = ArtifactStore::resolve_dir(artifacts_flag.as_deref(), no_cache);
    Ok(cfg)
}

/// Trains (or restores) one model through the store, evaluates, and
/// prints its throughput line.
#[allow(clippy::too_many_arguments)]
fn probe_model<M: CapsModel + Clone + Send + Sync>(
    label: &str,
    model: &mut M,
    arch: &str,
    dataset: &Dataset,
    test: &Dataset,
    probe: &ProbeConfig,
    tcfg: &TrainConfig,
    store: Option<&ArtifactStore>,
) {
    let key = ArtifactKey::new(
        arch,
        label.split(' ').nth(1).unwrap_or(label),
        1,
        probe.epochs,
        fingerprint(&format!(
            "probe-v1;train={};test={}",
            probe.train, probe.test
        )),
    );
    let t0 = Instant::now();
    let (payload, prov) = load_or_train(store, &key, model, |m| {
        let report = train(m, dataset, tcfg);
        ArtifactPayload {
            epoch_losses: report.epoch_losses,
            train_accuracy: report.train_accuracy,
            ..ArtifactPayload::default()
        }
    });
    let acc = evaluate(model, test, &mut NoInjection);
    println!(
        "{label}: {} train_acc={:.3} test_acc={:.3} in {:?}",
        prov.label(),
        payload.train_accuracy,
        acc,
        t0.elapsed()
    );
}

fn main() -> ExitCode {
    let probe = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("probe: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = GenerateConfig {
        train: probe.train,
        test: probe.test,
        seed: 1,
    };
    let tcfg = TrainConfig {
        epochs: probe.epochs,
        batch_size: 16,
        lr: 2e-3,
        seed: 3,
        verbose: true,
    };
    let store = probe.artifacts.as_ref().map(ArtifactStore::new);

    let pair = generate(Benchmark::MnistLike, &cfg);
    let mut rng = TensorRng::from_seed(42);
    let mut m = CapsNet::new(&CapsNetConfig::small(1, 16), &mut rng);
    probe_model(
        "CapsNet mnist-like",
        &mut m,
        "capsnet",
        &pair.train,
        &pair.test,
        &probe,
        &tcfg,
        store.as_ref(),
    );

    let pair = generate(Benchmark::Cifar10Like, &cfg);
    let mut m = DeepCaps::new(&DeepCapsConfig::small(3, 20), &mut rng);
    probe_model(
        "DeepCaps cifar-like",
        &mut m,
        "deepcaps",
        &pair.train,
        &pair.test,
        &probe,
        &tcfg,
        store.as_ref(),
    );
    ExitCode::SUCCESS
}
