//! Blocked integer GEMM kernels over a pluggable 8-bit multiply.
//!
//! [`qgemm_nn`] picks between two loop orders by reduction depth.
//! Deep reductions (`k ≥ TALL_K`) compute the output in `MR×NR`
//! **register tiles**: `u32` accumulators for the whole tile live in a
//! local array across the entire `k` loop, so `C` is read and written
//! exactly once per tile instead of once per `k` step — the memory
//! traffic that capped the tall-`k` DeepCaps shapes at ~1.1× over
//! naive. Short reductions **stream** each `B` row across all `MR`
//! output rows at full width, amortizing loop overhead over `n`. Both
//! paths hoist the left operand's 256-entry LUT row, leaving the
//! 64 KiB [`MulLut`] the only irregular access, and both reduce in
//! ascending-`k` order so the dispatch never changes an output bit.
//! The accumulator is `u32` (8×8 products are ≤ 65 025, so `k` can
//! reach ~66 000 before overflow — far beyond any layer in the
//! workspace; debug builds assert the bound).
//!
//! The naive triple loop survives as [`reference`], the correctness
//! oracle both paths are property-tested against (bit-identical
//! output — trivially order-independent for integer adds, but the test
//! keeps the tiling honest across the `TALL_K` split).
//!
//! [`affine_dequant`] folds an integer accumulator matrix back to
//! float: with `value(q) = min + lsb·q` on both operands,
//!
//! ```text
//! Σₖ a·b = lₐ·l_b·Σ qₐq_b + lₐ·min_b·Σ qₐ + l_b·minₐ·Σ q_b + k·minₐ·min_b
//! ```
//!
//! so only the code-product sum `Σ qₐq_b` runs through the (possibly
//! approximate) multiplier — the row/column code sums are plain integer
//! additions, exactly as in an accelerator's zero-point correction.

use redcane_fxp::QuantParams;

use redcane_axmul::MulLut;
use redcane_trace as trace;

/// Rows per register tile, matching the float GEMM.
pub const MR: usize = 4;
/// Columns per register tile: `MR × NR` u32 accumulators live in
/// registers across the whole `k` reduction.
pub const NR: usize = 8;
/// Reductions at least this deep take the register-tile path: beyond
/// it the row-streaming kernel's per-`k`-step reload of the `C` rows
/// costs more than the tile's narrower `B` segments.
const TALL_K: usize = 192;

/// Largest `k` the `u32` accumulator provably cannot overflow at.
pub const MAX_ACC_K: usize = (u32::MAX / (255 * 255)) as usize;

/// `C += A·B` over code matrices: row-major `A (m×k)`, `B (k×n)` of
/// `u8` codes, `C (m×n)` of `u32` sums of `lut` products.
///
/// # Panics
///
/// Debug-asserts slice lengths and the `k ≤ MAX_ACC_K` overflow bound.
pub fn qgemm_nn(a: &[u8], b: &[u8], c: &mut [u32], m: usize, k: usize, n: usize, lut: &MulLut) {
    if trace::enabled() {
        trace::add(trace::Counter::QgemmCalls, 1);
        trace::add(trace::Counter::QgemmMacs, (m * k * n) as u64);
        // Analytic twin of each path's `lut.row()` call count: the
        // tall-k tile path hoists one row per (tile, k-step, tile-row),
        // the streaming path one per (output-row, k-step). Kept in
        // lock-step with the dispatch below by the trace count tests.
        let fetches = if m > 0 && n > 0 && k > 0 {
            if k >= TALL_K {
                (n.div_ceil(NR) * m * k) as u64
            } else {
                (m * k) as u64
            }
        } else {
            0
        };
        trace::add(trace::Counter::LutRowFetches, fetches);
    }
    qgemm_nn_raw(a, b, c, m, k, n, lut);
}

/// [`qgemm_nn`] without the instrumentation prologue: the body the
/// wrapper dispatches to, exposed so the perf suite can measure the
/// hook overhead against a truly bare kernel.
///
/// # Panics
///
/// Debug-asserts slice lengths and the `k ≤ MAX_ACC_K` overflow bound.
pub fn qgemm_nn_raw(a: &[u8], b: &[u8], c: &mut [u32], m: usize, k: usize, n: usize, lut: &MulLut) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(k <= MAX_ACC_K, "k = {k} can overflow the u32 accumulator");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Both paths reduce each output element in ascending-k order with
    // u32 adds, so the choice never changes a single output bit — only
    // which memory traffic is paid.
    if k >= TALL_K {
        qgemm_tall_k(a, b, c, m, k, n, lut);
    } else {
        qgemm_stream(a, b, c, m, k, n, lut);
    }
}

/// Register-tile path for deep reductions: `MR × NR` u32 accumulators
/// live in a local array across the **whole** `k` loop, so `C` is read
/// and written exactly once per tile instead of once per `k` step (the
/// traffic that capped the tall-`k` DeepCaps shapes at ~1.1× over
/// naive).
#[inline(never)]
fn qgemm_tall_k(a: &[u8], b: &[u8], c: &mut [u32], m: usize, k: usize, n: usize, lut: &MulLut) {
    for i0 in (0..m).step_by(MR) {
        let mr = MR.min(m - i0);
        for j0 in (0..n).step_by(NR) {
            let nr = NR.min(n - j0);
            let mut acc = [[0u32; NR]; MR];
            for p in 0..k {
                let brow = &b[p * n + j0..p * n + j0 + nr];
                for r in 0..mr {
                    // Hoist the left operand's 256-entry LUT row: the
                    // inner loop then indexes by the streamed right
                    // code alone (`u8` into `[u16; 256]` — checkless).
                    let row = lut.row(a[(i0 + r) * k + p]);
                    for (o, &bv) in acc[r][..nr].iter_mut().zip(brow) {
                        *o += row[bv as usize] as u32;
                    }
                }
            }
            for (r, arow) in acc.iter().enumerate().take(mr) {
                let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
                for (o, &v) in crow.iter_mut().zip(&arow[..nr]) {
                    *o += v;
                }
            }
        }
    }
}

/// Row-streaming path for short reductions: each `B` row is streamed
/// across all `MR` output rows at full width, amortizing loop overhead
/// over `n` instead of `NR`; re-reading the `C` rows per `k` step is
/// cheap when `k` is small.
#[inline(never)]
fn qgemm_stream(a: &[u8], b: &[u8], c: &mut [u32], m: usize, k: usize, n: usize, lut: &MulLut) {
    for i0 in (0..m).step_by(MR) {
        let mr = MR.min(m - i0);
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            for r in 0..mr {
                let row = lut.row(a[(i0 + r) * k + p]);
                let crow = &mut c[(i0 + r) * n..(i0 + r) * n + n];
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += row[bv as usize] as u32;
                }
            }
        }
    }
}

/// Row sums `Σₖ A[i][k]` of a code matrix (the `Σ qₐ` correction term).
pub fn row_sums(a: &[u8], m: usize, k: usize) -> Vec<u32> {
    debug_assert_eq!(a.len(), m * k);
    a.chunks_exact(k.max(1))
        .take(m)
        .map(|row| row.iter().map(|&v| v as u32).sum())
        .collect()
}

/// Column sums `Σₖ B[k][j]` of a code matrix (the `Σ q_b` correction
/// term).
pub fn col_sums(b: &[u8], k: usize, n: usize) -> Vec<u32> {
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0u32; n];
    for brow in b.chunks_exact(n.max(1)).take(k) {
        for (o, &v) in out.iter_mut().zip(brow) {
            *o += v as u32;
        }
    }
    out
}

/// Reconstructs the float GEMM output from the integer accumulator and
/// the affine correction terms (see the module docs for the identity).
///
/// `acc` is `m×n`, `rs_a` the `m` row sums of the left codes, `cs_b`
/// the `n` column sums of the right codes, and `k` the reduction
/// length shared by both.
pub fn affine_dequant(
    acc: &[u32],
    rs_a: &[u32],
    cs_b: &[u32],
    k: usize,
    pa: QuantParams,
    pb: QuantParams,
    out: &mut [f32],
) {
    debug_assert_eq!(acc.len(), rs_a.len() * cs_b.len());
    debug_assert_eq!(out.len(), acc.len());
    let (la, lb) = (pa.lsb(), pb.lsb());
    let (min_a, min_b) = (pa.min(), pb.min());
    let scale = la * lb;
    let const_term = k as f32 * min_a * min_b;
    let n = cs_b.len();
    for (i, &ra) in rs_a.iter().enumerate() {
        let row_term = la * min_b * ra as f32 + const_term;
        let orow = &mut out[i * n..(i + 1) * n];
        let arow = &acc[i * n..(i + 1) * n];
        for ((o, &sum), &cb) in orow.iter_mut().zip(arow).zip(cs_b) {
            *o = scale * sum as f32 + row_term + lb * min_a * cb as f32;
        }
    }
}

/// Naive triple-loop twin of [`qgemm_nn`]: the correctness oracle the
/// blocked kernel is property-tested against. Never used on a hot path.
pub mod reference {
    use redcane_axmul::MulLut;

    /// Textbook `C += A·B` over code matrices in `i-k-j` order.
    pub fn qgemm_nn(a: &[u8], b: &[u8], c: &mut [u32], m: usize, k: usize, n: usize, lut: &MulLut) {
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += lut.mul(av, b[p * n + j]) as u32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcane_axmul::mult::TruncatedMultiplier;
    use redcane_axmul::Multiplier8;

    fn codes(seed: u64, len: usize) -> Vec<u8> {
        // Small deterministic LCG; avoids pulling rand into unit tests.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn blocked_matches_reference_across_shapes_and_multipliers() {
        let luts = [
            MulLut::exact(),
            MulLut::tabulate(&TruncatedMultiplier::new(4)),
        ];
        for lut in &luts {
            for &(m, k, n) in &[(1, 1, 1), (4, 4, 4), (5, 7, 3), (3, 300, 9), (13, 513, 17)] {
                let a = codes(m as u64 * 31 + k as u64, m * k);
                let b = codes(n as u64 * 17 + 5, k * n);
                let mut fast = vec![0u32; m * n];
                let mut naive = vec![0u32; m * n];
                qgemm_nn(&a, &b, &mut fast, m, k, n, lut);
                reference::qgemm_nn(&a, &b, &mut naive, m, k, n, lut);
                assert_eq!(fast, naive, "{m}x{k}x{n} [{}]", lut.description());
            }
        }
    }

    #[test]
    fn accumulates_into_existing_contents() {
        let lut = MulLut::exact();
        let mut c = vec![7u32; 4];
        qgemm_nn(&[1, 2, 3, 4], &[1, 0, 0, 1], &mut c, 2, 2, 2, &lut);
        assert_eq!(c, vec![8, 9, 10, 11]);
    }

    #[test]
    fn empty_dims_are_noops() {
        let lut = MulLut::exact();
        let mut c: Vec<u32> = Vec::new();
        qgemm_nn(&[], &[], &mut c, 0, 3, 0, &lut);
        let mut c = vec![0u32; 6];
        qgemm_nn(&[], &[], &mut c, 2, 0, 3, &lut);
        assert!(c.iter().all(|&v| v == 0));
    }

    #[test]
    fn sums_and_affine_identity_reconstruct_float_product() {
        // With the exact multiplier, quantize → qgemm → affine_dequant
        // must equal the float product of the *dequantized* operands to
        // f32 round-off.
        let pa = QuantParams::from_range(-1.0, 1.0, 8).unwrap();
        let pb = QuantParams::from_range(-0.5, 2.0, 8).unwrap();
        let (m, k, n) = (3, 11, 4);
        let qa = codes(9, m * k);
        let qb = codes(10, k * n);
        let lut = MulLut::exact();
        let mut acc = vec![0u32; m * n];
        qgemm_nn(&qa, &qb, &mut acc, m, k, n, &lut);
        let mut out = vec![0.0f32; m * n];
        affine_dequant(
            &acc,
            &row_sums(&qa, m, k),
            &col_sums(&qb, k, n),
            k,
            pa,
            pb,
            &mut out,
        );
        // Float oracle over dequantized values.
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f64;
                for p in 0..k {
                    let av = pa.dequantize(qa[i * k + p] as u16) as f64;
                    let bv = pb.dequantize(qb[p * n + j] as u16) as f64;
                    want += av * bv;
                }
                let got = out[i * n + j] as f64;
                assert!((got - want).abs() < 1e-3, "[{i},{j}] {got} vs {want}");
            }
        }
    }

    #[test]
    fn approximate_multiplier_changes_only_the_product_sum() {
        // The under-estimating truncated multiplier must pull the
        // accumulator (and thus the dequantized output) down, never up.
        let trunc = TruncatedMultiplier::new(6);
        let lut_ax = MulLut::tabulate(&trunc);
        let lut_ex = MulLut::exact();
        let (m, k, n) = (2, 20, 3);
        let qa = codes(1, m * k);
        let qb = codes(2, k * n);
        let mut acc_ex = vec![0u32; m * n];
        let mut acc_ax = vec![0u32; m * n];
        qgemm_nn(&qa, &qb, &mut acc_ex, m, k, n, &lut_ex);
        qgemm_nn(&qa, &qb, &mut acc_ax, m, k, n, &lut_ax);
        assert!(acc_ax.iter().zip(&acc_ex).all(|(a, e)| a <= e));
        assert!(acc_ax.iter().zip(&acc_ex).any(|(a, e)| a < e));
        // Spot-check the LUT against the model it tabulates.
        assert_eq!(lut_ax.mul(200, 3), trunc.multiply(200, 3));
    }
}
